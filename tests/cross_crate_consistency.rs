//! Cross-crate consistency checks: the dataset codec, the output-space
//! codecs, and the simulator agree wherever two crates touch.

use airchitect_repro::data::{codec, split, Dataset};
use airchitect_repro::dse::case2::{Case2Problem, Case2Query};
use airchitect_repro::dse::case3::Case3Problem;
use airchitect_repro::dse::{case1, case2, case3};
use airchitect_repro::sim::memory::{self, BufferConfig};
use airchitect_repro::sim::multi::Schedule;
use airchitect_repro::workload::GemmWorkload;

#[test]
fn generated_datasets_survive_disk_roundtrip() {
    let problem = case1::Case1Problem::new(1 << 10);
    let ds = case1::generate_dataset(
        &problem,
        &case1::Case1DatasetSpec {
            samples: 100,
            budget_log2_range: (5, 10),
            seed: 1,
        },
    );
    let dir = std::env::temp_dir().join("airchitect-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cs1.aids");
    codec::save(&ds, &path).unwrap();
    let back = codec::load(&path).unwrap();
    assert_eq!(ds, back);
    std::fs::remove_file(&path).ok();
}

#[test]
fn case2_labels_reproduce_searched_stalls() {
    // Decoding a dataset label and re-simulating must reproduce the optimal
    // stall count the search found.
    let problem = Case2Problem::new();
    let ds = case2::generate_dataset(
        &problem,
        &case2::Case2DatasetSpec {
            samples: 20,
            seed: 2,
            ..Default::default()
        },
    );
    for i in 0..ds.len() {
        let query = Case2Query::from_features(ds.row(i));
        let label = ds.label(i);
        let (ikb, fkb, okb) = problem.space().decode(label).unwrap();
        let bufs = BufferConfig::from_kb(ikb, fkb, okb).unwrap();
        let stalls = memory::stall_cycles(
            &query.workload,
            query.array,
            query.dataflow,
            bufs,
            query.bandwidth,
        )
        .unwrap();
        let research = problem.search(&query);
        assert_eq!(research.label, label, "search must be deterministic");
        assert_eq!(research.cost, stalls, "label must reproduce the cost");
    }
}

#[test]
fn case3_labels_decode_to_valid_permutation_schedules() {
    let problem = Case3Problem::new();
    let ds = case3::generate_dataset(
        &problem,
        &case3::Case3DatasetSpec {
            samples: 5,
            seed: 3,
        },
    );
    for i in 0..ds.len() {
        let (perm, dfs) = problem.space().decode(ds.label(i)).unwrap();
        let schedule = Schedule::new(&perm, &dfs);
        assert!(schedule.is_permutation(), "optimal labels are permutations");
        let workloads = case3::Case3Problem::from_features(ds.row(i));
        let cost = problem.system().evaluate(&workloads, &schedule).unwrap();
        assert!(cost.makespan > 0);
    }
}

#[test]
fn splits_preserve_feature_label_pairing() {
    // Label must stay glued to its feature row through a shuffle+split.
    let problem = case1::Case1Problem::new(1 << 9);
    let mut ds = Dataset::new(4, problem.space().len() as u32).unwrap();
    // Deterministic rows whose label is recomputable from the features.
    for i in 1..=60u64 {
        let wl = GemmWorkload::new(i * 7, i * 3, i * 5).unwrap();
        let r = problem.search(&wl, 1 << 9);
        ds.push(&case1::Case1Problem::features(&wl, 1 << 9), r.label)
            .unwrap();
    }
    let s = split::paper_split(&ds, 99).unwrap();
    for part in [&s.train, &s.validation, &s.test] {
        for i in 0..part.len() {
            let (wl, budget) = case1::Case1Problem::from_features(part.row(i));
            let expect = problem.search(&wl, budget).label;
            assert_eq!(part.label(i), expect, "row/label pairing broke in split");
        }
    }
}
