//! Integration: one shared `Recommender` per case study, hammered from many
//! threads at once, must answer exactly like the single-threaded run.
//!
//! This pins the `Send + Sync` contract the serving layer depends on:
//! inference is `&self`, has no interior mutability, and therefore needs no
//! locking around the hot path. A regression that adds hidden state (a
//! cache, a scratch buffer, an RNG) would show up here as cross-thread
//! nondeterminism.

use airchitect_repro::core::pipeline::{run_case1, run_case2, run_case3, PipelineConfig};
use airchitect_repro::core::Recommender;
use airchitect_repro::dse::case1::Case1Problem;
use airchitect_repro::dse::case2::{Case2Problem, Case2Query};
use airchitect_repro::dse::case3::Case3Problem;
use airchitect_repro::sim::multi::Schedule;
use airchitect_repro::sim::{ArrayConfig, Dataflow};
use airchitect_repro::workload::GemmWorkload;

const THREADS: usize = 8;
/// Passes per thread, so every thread answers every query several times.
const ROUNDS: usize = 3;

fn quick() -> PipelineConfig {
    PipelineConfig {
        samples: 400,
        epochs: 4,
        batch_size: 64,
        seed: 17,
        stratify: false,
        threads: 1,
    }
}

fn cs1_queries() -> Vec<(GemmWorkload, u64)> {
    let mut queries = Vec::new();
    for (m, n, k) in [(128, 64, 256), (1024, 1024, 64), (32, 512, 512), (64, 64, 64)] {
        for budget_log2 in [7u32, 8, 9] {
            queries.push((GemmWorkload::new(m, n, k).unwrap(), 1u64 << budget_log2));
        }
    }
    queries
}

fn cs2_queries() -> Vec<Case2Query> {
    [(3136, 512, 1152, 2000), (256, 256, 256, 1500), (2048, 64, 512, 900)]
        .into_iter()
        .map(|(m, n, k, limit_kb)| Case2Query {
            workload: GemmWorkload::new(m, n, k).unwrap(),
            array: ArrayConfig::new(32, 32).unwrap(),
            dataflow: Dataflow::Os,
            bandwidth: 8,
            limit_kb,
        })
        .collect()
}

fn cs3_queries() -> Vec<Vec<GemmWorkload>> {
    [
        [(2048, 512, 1024), (64, 64, 64), (1024, 32, 512), (196, 512, 256)],
        [(128, 128, 128), (512, 512, 64), (96, 96, 96), (1024, 64, 1024)],
    ]
    .into_iter()
    .map(|quad| {
        quad.into_iter()
            .map(|(m, n, k)| GemmWorkload::new(m, n, k).unwrap())
            .collect()
    })
    .collect()
}

/// Everything a single-threaded pass computes, for exact comparison.
#[derive(Debug, PartialEq)]
struct Answers {
    cs1: Vec<Result<(ArrayConfig, Dataflow), String>>,
    cs1_topk: Vec<Vec<(ArrayConfig, Dataflow, f32)>>,
    cs2: Vec<Result<(u64, u64, u64), String>>,
    cs2_topk: Vec<Vec<(u64, u64, u64, f32)>>,
    cs3: Vec<Schedule>,
    cs3_topk: Vec<Vec<(Schedule, f32)>>,
}

#[allow(clippy::too_many_arguments)]
fn answer_everything(
    rec1: &Recommender,
    rec2: &Recommender,
    rec3: &Recommender,
    p1: &Case1Problem,
    p2: &Case2Problem,
    p3: &Case3Problem,
) -> Answers {
    Answers {
        cs1: cs1_queries()
            .iter()
            .map(|(wl, budget)| {
                rec1.recommend_array(p1, wl, *budget)
                    .map_err(|e| e.to_string())
            })
            .collect(),
        cs1_topk: cs1_queries()
            .iter()
            .map(|(wl, budget)| rec1.recommend_array_topk(p1, wl, *budget, 5).unwrap())
            .collect(),
        cs2: cs2_queries()
            .iter()
            .map(|q| rec2.recommend_buffers(p2, q).map_err(|e| e.to_string()))
            .collect(),
        cs2_topk: cs2_queries()
            .iter()
            .map(|q| rec2.recommend_buffers_topk(p2, q, 5).unwrap())
            .collect(),
        cs3: cs3_queries()
            .iter()
            .map(|wls| rec3.recommend_schedule(p3, wls).unwrap())
            .collect(),
        cs3_topk: cs3_queries()
            .iter()
            .map(|wls| rec3.recommend_schedule_topk(p3, wls, 5).unwrap())
            .collect(),
    }
}

#[test]
fn eight_threads_sharing_recommenders_match_single_threaded_answers() {
    let rec1 = Recommender::new(run_case1(&quick(), (5, 9)).model).unwrap();
    let rec2 = Recommender::new(run_case2(&quick()).model).unwrap();
    let rec3 = Recommender::new(
        run_case3(&PipelineConfig {
            samples: 300,
            ..quick()
        })
        .model,
    )
    .unwrap();
    let p1 = Case1Problem::new(1 << 9);
    let p2 = Case2Problem::new();
    let p3 = Case3Problem::new();

    let reference = answer_everything(&rec1, &rec2, &rec3, &p1, &p2, &p3);

    // `thread::scope` with borrowed recommenders: this line is also the
    // compile-time proof that `Recommender` is `Sync`.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    (0..ROUNDS)
                        .map(|_| answer_everything(&rec1, &rec2, &rec3, &p1, &p2, &p3))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for answers in handle.join().expect("inference thread panicked") {
                assert_eq!(
                    answers, reference,
                    "concurrent inference diverged from the single-threaded answers"
                );
            }
        }
    });
}
