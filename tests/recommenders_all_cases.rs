//! Integration: the typed recommenders for case studies 2 and 3, end to end
//! (CS1 is covered in `end_to_end.rs`).

use airchitect_repro::core::pipeline::{run_case2, run_case3, PipelineConfig};
use airchitect_repro::core::Recommender;
use airchitect_repro::dse::case2::{Case2Problem, Case2Query};
use airchitect_repro::dse::case3::Case3Problem;
use airchitect_repro::sim::{ArrayConfig, Dataflow};
use airchitect_repro::workload::GemmWorkload;

fn quick() -> PipelineConfig {
    PipelineConfig {
        samples: 800,
        epochs: 6,
        batch_size: 64,
        seed: 13,
        stratify: false,
        threads: 1,
    }
}

#[test]
fn buffer_recommender_returns_valid_splits_that_beat_the_minimum() {
    let run = run_case2(&quick());
    let problem = Case2Problem::new();
    let rec = Recommender::new(run.model).unwrap();

    // A memory-hungry query: big workload, narrow interface.
    let query = Case2Query {
        workload: GemmWorkload::new(3136, 512, 1152).unwrap(),
        array: ArrayConfig::new(32, 32).unwrap(),
        dataflow: Dataflow::Os,
        bandwidth: 4,
        limit_kb: 2000,
    };
    let (i, f, o) = rec.recommend_buffers(&problem, &query).unwrap();
    // On the quantization grid and within sane bounds.
    for v in [i, f, o] {
        assert!((100..=1000).contains(&v) && v % 100 == 0);
    }
    // The recommendation should not be worse than the all-minimum config
    // for a query where buffers clearly matter.
    let rec_label = problem.space().encode(i, f, o).unwrap();
    let rec_perf = problem.normalized_performance(&query, rec_label);
    let min_perf = problem.normalized_performance(&query, 0);
    assert!(
        rec_perf >= min_perf,
        "recommended split ({rec_perf:.3}) should beat the 100/100/100 floor ({min_perf:.3})"
    );
}

#[test]
fn schedule_recommender_returns_permutations_and_beats_worst_case() {
    let run = run_case3(&PipelineConfig {
        samples: 400,
        ..quick()
    });
    let problem = Case3Problem::new();
    let rec = Recommender::new(run.model).unwrap();

    let workloads = vec![
        GemmWorkload::new(2048, 512, 1024).unwrap(),
        GemmWorkload::new(64, 64, 64).unwrap(),
        GemmWorkload::new(1024, 32, 512).unwrap(),
        GemmWorkload::new(196, 512, 256).unwrap(),
    ];
    let schedule = rec.recommend_schedule(&problem, &workloads).unwrap();
    assert!(schedule.is_permutation());
    let cost = problem.system().evaluate(&workloads, &schedule).unwrap();

    // Worst schedule in the space for comparison.
    let mut worst = 0u64;
    for label in (0..problem.space().len() as u32).step_by(13) {
        let c = problem.cost_of(&workloads, label).unwrap();
        worst = worst.max(c.makespan);
    }
    assert!(
        cost.makespan <= worst,
        "recommended schedule should not be the pathological one"
    );
}

#[test]
fn stratified_pipeline_runs_and_keeps_rare_labels_in_test() {
    let run = run_case2(&PipelineConfig {
        stratify: true,
        ..quick()
    });
    // Stratification keeps the dominant config represented in test, so the
    // distributions stay comparable.
    let (actual, _) = &run.label_distributions;
    assert!(actual.iter().sum::<usize>() > 0);
    assert!(run.test_accuracy >= 0.0);
}
