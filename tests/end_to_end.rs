//! Workspace integration tests: the full paper flow across crates —
//! simulator → search → dataset → training → constant-time recommendation.

use airchitect_repro::core::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect_repro::core::pipeline::{run_case1, PipelineConfig};
use airchitect_repro::core::Recommender;
use airchitect_repro::data::split;
use airchitect_repro::dse::case1::{self, Case1DatasetSpec, Case1Problem};
use airchitect_repro::nn::train::TrainConfig;
use airchitect_repro::workload::distribution::CnnWorkloadSampler;
use airchitect_repro::workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn learned_model_beats_uninformed_baselines_on_cs1() {
    // A modest training run must recommend configurations much closer to
    // optimal than both a fixed config and an untrained network.
    let run = run_case1(
        &PipelineConfig {
            samples: 3_000,
            epochs: 10,
            batch_size: 128,
            seed: 21,
            stratify: false,
            threads: 1,
        },
        (5, 12),
    );
    let problem = Case1Problem::new(1 << 12);
    let sampler = CnnWorkloadSampler::new();
    let mut rng = StdRng::seed_from_u64(777);
    let workloads = sampler.sample_many(50, &mut rng);

    let mut learned = 0f64;
    let mut fixed = 0f64;
    for wl in &workloads {
        let budget = 1 << 10;
        let predicted = run.model.predict_row(&Case1Problem::features(wl, budget));
        learned += problem.normalized_performance(wl, budget, predicted);
        // Fixed baseline: label 0 (the smallest array, always feasible).
        fixed += problem.normalized_performance(wl, budget, 0);
    }
    learned /= workloads.len() as f64;
    fixed /= workloads.len() as f64;
    assert!(
        learned > fixed + 0.2,
        "learned {learned:.3} should clearly beat the fixed config {fixed:.3}"
    );
    assert!(
        learned > 0.7,
        "learned recommendations average {learned:.3} of optimal"
    );
}

#[test]
fn training_improves_over_untrained_predictions() {
    let problem = Case1Problem::new(1 << 10);
    let dataset = case1::generate_dataset(
        &problem,
        &Case1DatasetSpec {
            samples: 2_000,
            budget_log2_range: (5, 10),
            seed: 3,
        },
    );
    let split = split::paper_split(&dataset, 3).unwrap();
    let config = AirchitectConfig {
        num_classes: problem.space().len() as u32,
        train: TrainConfig {
            epochs: 10,
            batch_size: 128,
            ..Default::default()
        },
        ..Default::default()
    };
    let untrained = AirchitectModel::new(CaseStudy::ArrayDataflow, &config);
    let untrained_acc = untrained.accuracy(&split.test);
    let mut trained = AirchitectModel::new(CaseStudy::ArrayDataflow, &config);
    trained.train(&split.train).unwrap();
    let trained_acc = trained.accuracy(&split.test);
    assert!(
        trained_acc > untrained_acc + 0.1,
        "training must help: {untrained_acc:.3} -> {trained_acc:.3}"
    );
}

#[test]
fn recommender_round_trips_through_model_serialization() {
    // Train, serialize the network, rebuild, and check predictions agree.
    let run = run_case1(
        &PipelineConfig {
            samples: 800,
            epochs: 5,
            batch_size: 64,
            seed: 5,
            stratify: false,
            threads: 1,
        },
        (5, 9),
    );
    let bytes = airchitect_repro::nn::serialize::to_bytes(run.model.network());
    let restored = airchitect_repro::nn::serialize::from_bytes(&bytes).unwrap();

    let wl = GemmWorkload::new(256, 128, 512).unwrap();
    let feats = Case1Problem::features(&wl, 1 << 9);
    let binned = run.model.quantizer().transform_row(&feats);
    assert_eq!(
        run.model.predict_row(&feats),
        restored.predict_one(&binned),
        "serialized network must predict identically"
    );
}

#[test]
fn recommendation_is_consistent_with_search_labels_format() {
    // The label the recommender decodes must be exactly what the search
    // produces for the same (array, dataflow) — codec consistency across
    // the dse and core crates.
    let run = run_case1(
        &PipelineConfig {
            samples: 500,
            epochs: 4,
            batch_size: 64,
            seed: 8,
            stratify: false,
            threads: 1,
        },
        (5, 9),
    );
    let problem = Case1Problem::new(1 << 9);
    let rec = Recommender::new(run.model).unwrap();
    let wl = GemmWorkload::new(100, 300, 50).unwrap();
    let (array, df) = rec.recommend_array(&problem, &wl, 1 << 9).unwrap();
    let label = problem.space().encode(array, df).unwrap();
    let (array2, df2) = problem.space().decode(label).unwrap();
    assert_eq!((array, df), (array2, df2));
}
