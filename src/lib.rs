//! Umbrella crate for the AIrchitect reproduction workspace.
//!
//! Re-exports every member crate under one roof so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can reach the full API:
//!
//! * [`workload`] — GEMM workloads, CNN layer tables, samplers,
//! * [`sim`] — the analytical systolic-array simulator,
//! * [`data`] — dataset containers, splits, quantizers,
//! * [`dse`] — output spaces, exhaustive searchers, dataset generators,
//! * [`tensor`] / [`nn`] — the from-scratch ML substrate,
//! * [`classifiers`] — the Fig. 9 baseline model zoo,
//! * [`core`] — the AIrchitect model, pipelines, and recommendation API,
//! * [`serve`] — the batched, hot-reloadable HTTP inference server.
//!
//! See the workspace README for the quickstart and DESIGN.md for the system
//! inventory.

#![warn(missing_docs)]

pub use airchitect as core;
pub use airchitect_classifiers as classifiers;
pub use airchitect_data as data;
pub use airchitect_dse as dse;
pub use airchitect_nn as nn;
pub use airchitect_serve as serve;
pub use airchitect_sim as sim;
pub use airchitect_tensor as tensor;
pub use airchitect_workload as workload;
