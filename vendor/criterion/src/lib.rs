//! Hermetic, dependency-free stand-in for the `criterion` crate.
//!
//! Runs each benchmark closure for a short warm-up plus a small measured
//! batch and prints mean wall-clock time per iteration. No statistics,
//! plots, or baselines — just enough to (a) keep `[[bench]]` targets
//! compiling and running offline and (b) give a rough relative number.
//!
//! `cargo test` executes `harness = false` bench binaries too; the default
//! iteration counts are kept small so that stays fast.

#![warn(missing_docs)]

use std::time::Instant;

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last [`Bencher::iter`] call.
    last_ns: f64,
}

impl Bencher {
    /// Times `f`, storing mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..self.iters.min(2) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        last_ns: 0.0,
    };
    f(&mut b);
    if b.last_ns >= 1e6 {
        println!("bench {label:<40} {:>12.3} ms/iter", b.last_ns / 1e6);
    } else {
        println!("bench {label:<40} {:>12.1} ns/iter", b.last_ns);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 5 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.iters, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.as_ref().to_string(),
            iters: 5,
        }
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iteration count (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 50);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.as_ref());
        run_one(&label, self.iters, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
