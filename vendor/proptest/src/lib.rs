//! Hermetic, dependency-free stand-in for the `proptest` crate.
//!
//! Implements deterministic random-sampling property tests: the
//! [`Strategy`] trait with range / `Just` / tuple / `vec` / `any`
//! strategies, the `prop_map` / `prop_flat_map` adapters, `prop_oneof!`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! values but is not minimized) and a fixed per-test deterministic seed
//! derived from the test name, so failures always reproduce.

#![warn(missing_docs)]

/// Number of accepted cases each property runs.
pub const CASES: u32 = 48;

/// Cap on total sampling attempts (accepted + rejected) per property.
pub const MAX_ATTEMPTS: u32 = CASES * 25;

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't fail the test.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

/// Outcome of running the property body on one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32 * 2e9 - 1e9
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e18 - 1e18
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Output of [`StrategyExt::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`StrategyExt::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Adapter methods available on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Applies `f` to every sampled value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from every sampled value.
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Uniform choice between boxed alternatives (see `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Boxes a strategy for use inside [`Union`].
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vectors of `elem` values with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, StrategyExt, TestCaseError,
    };
}

/// Runner configuration, settable per block via `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(CASES)
    }
}

/// Declares property tests. Each `fn` samples its arguments from the given
/// strategies and runs the body [`CASES`] times, or `cases` times when the
/// block starts with `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the first token tree is the
/// [`ProptestConfig`] expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let max_attempts = config.cases.saturating_mul(25);
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "property {} rejected too many sampled cases (prop_assume too strict)",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property body; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Discards the current sampled case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=9), f in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_any(bytes in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(bytes.len() < 16);
        }

        #[test]
        fn map_flat_map_oneof(v in prop_oneof![Just(1u32), Just(2), (10u32..12)]
            .prop_map(|x| x * 2)
            .prop_flat_map(|x| Just(x + 1))
        ) {
            prop_assert!([3, 5, 21, 23].contains(&v), "unexpected {v}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = (0u64..1000, crate::collection::vec(any::<u8>(), 3));
        let mut r1 = crate::TestRng::from_name("fixed");
        let mut r2 = crate::TestRng::from_name("fixed");
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
