//! Hermetic, dependency-free stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few config enums but
//! never routes them through a serde data format — every on-disk artifact
//! uses the hand-rolled binary codecs. These derives therefore expand to
//! nothing; they exist so the `#[derive(...)]` and `#[serde(...)]`
//! annotations in the source keep compiling offline.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
