//! Hermetic, dependency-free stand-in for the `bytes` crate.
//!
//! Implements the subset used by the workspace's binary codecs: an
//! append-only [`BytesMut`] builder, an immutable [`Bytes`] view, and the
//! [`Buf`]/[`BufMut`] traits with the little-endian accessors the codecs
//! call. Backed by plain `Vec<u8>` — no sharing or refcounting, which the
//! codecs never relied on.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

/// A growable byte buffer under construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write access to a byte sink, little-endian variants only.
pub trait BufMut {
    /// Appends a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

/// Read access to a byte source, little-endian variants only.
///
/// Reads advance the cursor; callers check [`Buf::remaining`] first, and an
/// under-length read panics (matching the upstream crate's contract).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_f32_le(-1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), -1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
