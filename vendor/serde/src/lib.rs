//! Hermetic, dependency-free stand-in for `serde`.
//!
//! The workspace never serializes through serde (all artifacts use the
//! hand-rolled binary codecs); it only *derives* the traits on config types.
//! This stub provides marker traits and re-exports the no-op derives so the
//! annotations compile offline. If a future change actually needs a serde
//! data format, replace this with the real crate (or extend the stub).

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
