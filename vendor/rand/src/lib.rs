//! Hermetic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository is fully offline, so external
//! registry crates cannot be fetched. This vendored crate implements the
//! subset of the `rand` API the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng`], [`Rng`], [`RngExt`], and [`seq::SliceRandom`] — on top
//! of a SplitMix64 generator. Everything is deterministic per seed, which
//! is exactly what the reproduction's seeded pipelines require.
//!
//! It is NOT a cryptographic or statistically rigorous generator; it exists
//! so seeded simulations, dataset generation, and tests run hermetically.

#![warn(missing_docs)]

/// A source of pseudo-random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value of type `Self` from the generator stream.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the (non-empty) range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly sampled value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value sampled uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Small state, passes through every 64-bit seed without correlations
    /// between nearby seeds, and is fully deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates consecutive integer seeds.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Slice helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngExt};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let v = rng.random_range(-8i32..=8);
            assert!((-8..=8).contains(&v));
            let f = rng.random_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
