//! Property-style equivalence of the blocked/threaded compute engine
//! against the naive reference kernels, over deliberately ragged shapes.

use airchitect_tensor::gemm;
use airchitect_tensor::Matrix;

/// Deterministic LCG so the suite needs no RNG dependency.
fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Shapes chosen to hit every edge of the tiling: unit, primes (never a
/// multiple of the 4×16 micro-tile or the 64-row partition), tall/skinny,
/// short/wide, and exact multiples of the block sizes.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (2, 3, 4),
    (7, 13, 5),
    (17, 31, 29),
    (200, 3, 2),   // tall and skinny
    (3, 5, 300),   // short and wide
    (64, 16, 64),  // exact tile multiples
    (65, 17, 129), // one past the tile boundaries
    (256, 64, 459),
];

fn relative_close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

#[test]
fn blocked_nn_matches_reference_on_ragged_shapes() {
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = rand_matrix(m, k, si as u64 * 2 + 1);
        let b = rand_matrix(k, n, si as u64 * 2 + 2);
        let mut want = vec![0.0; m * n];
        gemm::gemm_nn_reference(m, k, n, a.as_slice(), b.as_slice(), &mut want, false);
        for threads in [1, 2, 4] {
            let mut got = Matrix::zeros(1, 1);
            a.matmul_into(&b, &mut got, threads);
            assert!(
                relative_close(&want, got.as_slice(), 1e-5),
                "nn mismatch at {m}x{k}x{n}, threads={threads}"
            );
        }
    }
}

#[test]
fn blocked_nt_matches_reference_on_ragged_shapes() {
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = rand_matrix(m, k, si as u64 * 3 + 1);
        let bt = rand_matrix(n, k, si as u64 * 3 + 2);
        let mut want = vec![0.0; m * n];
        gemm::gemm_nt_reference(m, k, n, a.as_slice(), bt.as_slice(), &mut want, false);
        for threads in [1, 2, 4] {
            let mut got = Matrix::zeros(1, 1);
            a.matmul_nt_into(&bt, &mut got, threads);
            assert!(
                relative_close(&want, got.as_slice(), 1e-5),
                "nt mismatch at {m}x{k}x{n}, threads={threads}"
            );
        }
    }
}

#[test]
fn blocked_tn_matches_reference_on_ragged_shapes() {
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let at = rand_matrix(k, m, si as u64 * 5 + 1);
        let b = rand_matrix(k, n, si as u64 * 5 + 2);
        let mut want = vec![0.0; m * n];
        gemm::gemm_tn_reference(m, k, n, at.as_slice(), b.as_slice(), &mut want, false);
        for threads in [1, 2, 4] {
            let mut got = Matrix::zeros(1, 1);
            at.matmul_tn_into(&b, &mut got, threads);
            assert!(
                relative_close(&want, got.as_slice(), 1e-5),
                "tn mismatch at {m}x{k}x{n}, threads={threads}"
            );
        }
    }
}

#[test]
fn all_products_bit_identical_across_thread_counts() {
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = rand_matrix(m, k, si as u64 * 7 + 1);
        let b = rand_matrix(k, n, si as u64 * 7 + 2);
        let bt = b.transpose();
        let at = a.transpose();
        let mut nn1 = Matrix::zeros(1, 1);
        let mut nt1 = Matrix::zeros(1, 1);
        let mut tn1 = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut nn1, 1);
        a.matmul_nt_into(&bt, &mut nt1, 1);
        at.matmul_tn_into(&b, &mut tn1, 1);
        for threads in [2, 3, 4, 8] {
            let mut nn = Matrix::zeros(1, 1);
            let mut nt = Matrix::zeros(1, 1);
            let mut tn = Matrix::zeros(1, 1);
            a.matmul_into(&b, &mut nn, threads);
            a.matmul_nt_into(&bt, &mut nt, threads);
            at.matmul_tn_into(&b, &mut tn, threads);
            assert_eq!(nn1, nn, "nn not bit-identical at {m}x{k}x{n} t={threads}");
            assert_eq!(nt1, nt, "nt not bit-identical at {m}x{k}x{n} t={threads}");
            assert_eq!(tn1, tn, "tn not bit-identical at {m}x{k}x{n} t={threads}");
        }
    }
}

#[test]
fn accumulating_gemm_adds_in_place() {
    let (m, k, n) = (33, 21, 47);
    let a = rand_matrix(m, k, 91);
    let b = rand_matrix(k, n, 92);
    let seed = rand_matrix(m, n, 93);
    let mut product = vec![0.0; m * n];
    gemm::gemm_nn(m, k, n, a.as_slice(), b.as_slice(), &mut product, false, 1);
    let mut acc: Vec<f32> = seed.as_slice().to_vec();
    gemm::gemm_nn(m, k, n, a.as_slice(), b.as_slice(), &mut acc, true, 4);
    for i in 0..m * n {
        let want = seed.as_slice()[i] + product[i];
        assert!((acc[i] - want).abs() < 1e-5);
    }
}
