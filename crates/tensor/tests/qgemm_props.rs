//! Property-based tests for the int8 gemv kernels: whatever path the
//! runtime dispatch picks (AVX2 or scalar), the result must be exactly
//! the plain widening-i32 dot product, for arbitrary shapes and values —
//! not just the hand-picked shapes in the unit tests.

use airchitect_tensor::qgemm;
use proptest::prelude::*;

fn reference_i16(a: &[i16], w: &[i8], out_dim: usize) -> Vec<i32> {
    let in_dim = a.len();
    (0..out_dim)
        .map(|o| {
            a.iter()
                .zip(&w[o * in_dim..][..in_dim])
                .map(|(&x, &y)| i32::from(x) * i32::from(y))
                .sum()
        })
        .collect()
}

fn reference_u8(a: &[u8], w: &[i8], out_dim: usize) -> Vec<i32> {
    let in_dim = a.len();
    (0..out_dim)
        .map(|o| {
            a.iter()
                .zip(&w[o * in_dim..][..in_dim])
                .map(|(&x, &y)| i32::from(x) * i32::from(y))
                .sum()
        })
        .collect()
}

proptest! {
    /// The signed kernel (int8-valued activations pre-widened to i16)
    /// matches the exact integer dot product on every dispatch path.
    #[test]
    fn signed_kernel_is_exact(
        (a, w, out_dim) in (1usize..96, 1usize..48).prop_flat_map(|(in_dim, out_dim)| (
            proptest::collection::vec(-128i16..=127, in_dim),
            proptest::collection::vec(any::<i8>(), in_dim * out_dim),
            Just(out_dim),
        ))
    ) {
        let mut got = vec![0i32; out_dim];
        qgemm::gemv_i8(&a, &w, &mut got);
        prop_assert_eq!(got, reference_i16(&a, &w, out_dim));
    }

    /// The unsigned kernel (post-ReLU activations, contract `a <= 127`)
    /// matches the exact integer dot product on every dispatch path —
    /// in particular the `vpmaddubsw` path must never saturate.
    #[test]
    fn unsigned_kernel_is_exact(
        (a, w, out_dim) in (1usize..96, 1usize..48).prop_flat_map(|(in_dim, out_dim)| (
            proptest::collection::vec(0u8..=127, in_dim),
            proptest::collection::vec(any::<i8>(), in_dim * out_dim),
            Just(out_dim),
        ))
    ) {
        let mut got = vec![0i32; out_dim];
        qgemm::gemv_u8_i8(&a, &w, &mut got);
        prop_assert_eq!(got, reference_u8(&a, &w, out_dim));
    }

    /// Both kernels agree with each other where their domains overlap
    /// (non-negative int8 activations).
    #[test]
    fn kernels_agree_on_the_shared_domain(
        (a, w, out_dim) in (1usize..80, 1usize..32).prop_flat_map(|(in_dim, out_dim)| (
            proptest::collection::vec(0u8..=127, in_dim),
            proptest::collection::vec(any::<i8>(), in_dim * out_dim),
            Just(out_dim),
        ))
    ) {
        let widened: Vec<i16> = a.iter().map(|&v| i16::from(v)).collect();
        let mut via_signed = vec![0i32; out_dim];
        let mut via_unsigned = vec![0i32; out_dim];
        qgemm::gemv_i8(&widened, &w, &mut via_signed);
        qgemm::gemv_u8_i8(&a, &w, &mut via_unsigned);
        prop_assert_eq!(via_signed, via_unsigned);
    }
}
