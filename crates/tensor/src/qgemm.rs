//! Int8 GEMV kernels for the quantized single-query inference path.
//!
//! The quantized network stores each dense layer's weights **transposed**
//! (`out_dim × in_dim`, row-major), so a 1-row inference is `out_dim`
//! contiguous dot products over the activation vector — no packing, no
//! blocking, no strided loads.
//!
//! Activations are int8-*valued* but handed over pre-widened to `i16`:
//! they are reused across every output row, so widening them once outside
//! the kernel halves the sign-extension work in the inner loop (only the
//! weight bytes still need `vpmovsxbw`, the port-5-bound shuffle that
//! otherwise caps throughput). Accumulation is exact `i32` integer math:
//! with `|a| ≤ 127` and `|w| ≤ 127` an `i32` accumulator holds well over
//! `100 000` terms before it could overflow, far beyond any layer width
//! in this codebase.
//!
//! Dispatch mirrors [`crate::gemm`]: the AVX2 kernel is selected by
//! runtime feature detection and the portable scalar kernel — the
//! correctness oracle the property tests compare against — always stays
//! available. Because the math is integer, the two kernels agree **bit
//! exactly**, not just approximately.

use airchitect_telemetry::metrics;

/// `out[o] = Σ_k a[k] · w[o·in_dim + k]`, with `in_dim = a.len()`.
///
/// `a` holds int8-range activation values pre-widened to `i16` (see the
/// module docs); `w` holds `out.len()` transposed weight rows of
/// `a.len()` elements each. Dispatches to the AVX2 kernel when the CPU
/// supports it, the scalar oracle otherwise; both produce identical
/// results.
///
/// # Panics
///
/// Panics if `w.len() != a.len() * out.len()`.
pub fn gemv_i8(a: &[i16], w: &[i8], out: &mut [i32]) {
    assert_eq!(
        w.len(),
        a.len() * out.len(),
        "gemv_i8: weight buffer must be out_dim x in_dim"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            metrics::QGEMV_DISPATCH_AVX2.inc();
            // SAFETY: AVX2 presence was just verified at runtime; the
            // kernel has no other safety requirements (slice bounds are
            // checked by the asserted length relation above).
            unsafe { return gemv_i8_avx2(a, w, out) };
        }
    }
    metrics::QGEMV_DISPATCH_SCALAR.inc();
    gemv_i8_scalar(a, w, out);
}

/// `out[o] = Σ_k a[k] · w[o·in_dim + k]` for **non-negative** activations.
///
/// The unsigned-activation sibling of [`gemv_i8`], for layers whose input
/// went through a ReLU: with `a[k] ≤ 127` the AVX2 kernel can use
/// `vpmaddubsw` (u8 × i8), which consumes 32 weight bytes per
/// instruction — twice the width of the sign-extending path — without
/// ever saturating (worst pair sum `2 · 127 · 127 < 32767`).
///
/// # Panics
///
/// Panics if `w.len() != a.len() * out.len()`. Debug builds also assert
/// `a[k] ≤ 127`; in release, values above 127 would saturate the SIMD
/// path and are a contract violation.
pub fn gemv_u8_i8(a: &[u8], w: &[i8], out: &mut [i32]) {
    assert_eq!(
        w.len(),
        a.len() * out.len(),
        "gemv_u8_i8: weight buffer must be out_dim x in_dim"
    );
    debug_assert!(
        a.iter().all(|&x| x <= 127),
        "gemv_u8_i8: activations must stay in 0..=127"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            metrics::QGEMV_DISPATCH_AVX2.inc();
            // SAFETY: AVX2 presence was just verified at runtime; slice
            // bounds are checked by the asserted length relation above.
            unsafe { return gemv_u8_i8_avx2(a, w, out) };
        }
    }
    metrics::QGEMV_DISPATCH_SCALAR.inc();
    gemv_u8_i8_scalar(a, w, out);
}

/// Portable scalar oracle for [`gemv_u8_i8`]; same contract.
///
/// # Panics
///
/// Panics if `w.len() != a.len() * out.len()`.
pub fn gemv_u8_i8_scalar(a: &[u8], w: &[i8], out: &mut [i32]) {
    assert_eq!(
        w.len(),
        a.len() * out.len(),
        "gemv_u8_i8_scalar: weight buffer must be out_dim x in_dim"
    );
    let k = a.len();
    for (o, slot) in out.iter_mut().enumerate() {
        let row = &w[o * k..(o + 1) * k];
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(row) {
            acc += i32::from(x) * i32::from(y);
        }
        *slot = acc;
    }
}

/// Whether [`gemv_i8`] will dispatch to the AVX2 kernel on this CPU.
///
/// Benchmarks use this to decide if the sub-10µs latency gate applies:
/// the scalar fallback is correct but not held to the same budget.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Portable scalar reference kernel — the correctness oracle.
///
/// Same contract as [`gemv_i8`]; exported so tests (and non-x86 builds)
/// can pin the AVX2 kernel against it.
///
/// # Panics
///
/// Panics if `w.len() != a.len() * out.len()`.
pub fn gemv_i8_scalar(a: &[i16], w: &[i8], out: &mut [i32]) {
    assert_eq!(
        w.len(),
        a.len() * out.len(),
        "gemv_i8_scalar: weight buffer must be out_dim x in_dim"
    );
    let k = a.len();
    for (o, slot) in out.iter_mut().enumerate() {
        let row = &w[o * k..(o + 1) * k];
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(row) {
            acc += i32::from(x) * i32::from(y);
        }
        *slot = acc;
    }
}

/// AVX2 kernel: activations load as ready-made `i16` lanes, 16 weight
/// bytes at a time are sign-extended (`_mm256_cvtepi8_epi16`) and
/// multiply-accumulated pairwise into `i32` (`_mm256_madd_epi16` — the
/// signed-safe sibling of `_mm256_maddubs_epi16`, which would saturate on
/// signed×signed input). Output rows are processed two at a time so each
/// activation load feeds two accumulator chains, and the chains also hide
/// the madd latency.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemv_i8_avx2(a: &[i16], w: &[i8], out: &mut [i32]) {
    use std::arch::x86_64::*;
    let k = a.len();
    let mut o = 0usize;
    while o + 2 <= out.len() {
        let row0 = w.as_ptr().add(o * k);
        let row1 = w.as_ptr().add((o + 1) * k);
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= k {
            let av = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let w0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(row0.add(i).cast()));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av, w0));
            let w1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(row1.add(i).cast()));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(av, w1));
            i += 16;
        }
        let (mut s0, mut s1) = (hsum_epi32(acc0), hsum_epi32(acc1));
        while i < k {
            let x = i32::from(*a.get_unchecked(i));
            s0 += x * i32::from(*row0.add(i));
            s1 += x * i32::from(*row1.add(i));
            i += 1;
        }
        *out.get_unchecked_mut(o) = s0;
        *out.get_unchecked_mut(o + 1) = s1;
        o += 2;
    }
    if o < out.len() {
        let row = &w[o * k..(o + 1) * k];
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= k {
            let av = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(row.as_ptr().add(i).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, wv));
            i += 16;
        }
        let mut sum = hsum_epi32(acc);
        for (&x, &y) in a[i..].iter().zip(&row[i..]) {
            sum += i32::from(x) * i32::from(y);
        }
        out[o] = sum;
    }
}

/// AVX2 kernel for the unsigned-activation path: 32 bytes of activations
/// and weights per step through `vpmaddubsw` (u8 × i8 → saturating i16
/// pairs — safe because activations stay ≤ 127), widened to `i32` with a
/// `vpmaddwd` against ones. Two output rows share each activation load.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemv_u8_i8_avx2(a: &[u8], w: &[i8], out: &mut [i32]) {
    use std::arch::x86_64::*;
    let k = a.len();
    let ones = _mm256_set1_epi16(1);
    let mut o = 0usize;
    while o + 2 <= out.len() {
        let row0 = w.as_ptr().add(o * k);
        let row1 = w.as_ptr().add((o + 1) * k);
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= k {
            let av = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let w0 = _mm256_loadu_si256(row0.add(i).cast());
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w0), ones));
            let w1 = _mm256_loadu_si256(row1.add(i).cast());
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w1), ones));
            i += 32;
        }
        let (mut s0, mut s1) = (hsum_epi32(acc0), hsum_epi32(acc1));
        while i < k {
            let x = i32::from(*a.get_unchecked(i));
            s0 += x * i32::from(*row0.add(i));
            s1 += x * i32::from(*row1.add(i));
            i += 1;
        }
        *out.get_unchecked_mut(o) = s0;
        *out.get_unchecked_mut(o + 1) = s1;
        o += 2;
    }
    if o < out.len() {
        let row = &w[o * k..(o + 1) * k];
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= k {
            let av = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let wv = _mm256_loadu_si256(row.as_ptr().add(i).cast());
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(_mm256_maddubs_epi16(av, wv), ones));
            i += 32;
        }
        let mut sum = hsum_epi32(acc);
        for (&x, &y) in a[i..].iter().zip(&row[i..]) {
            sum += i32::from(x) * i32::from(y);
        }
        out[o] = sum;
    }
}

/// Horizontal sum of the eight `i32` lanes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(acc: std::arch::x86_64::__m256i) -> i32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic i8 stream without pulling `rand` into unit tests.
    fn rand_i8(n: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(11);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as i8
            })
            .collect()
    }

    fn widen(v: &[i8]) -> Vec<i16> {
        v.iter().map(|&x| i16::from(x)).collect()
    }

    #[test]
    fn dispatch_matches_scalar_across_shapes() {
        // Cover the sub-lane tail (k < 16), exact single/double lanes,
        // the 16-lane remainder of the unrolled loop, and long rows.
        for (in_dim, out_dim, seed) in [
            (1usize, 1usize, 1u64),
            (7, 3, 2),
            (16, 5, 3),
            (17, 4, 4),
            (32, 9, 5),
            (48, 11, 6),
            (64, 459, 7),
            (96, 31, 8),
            (192, 13, 9),
            (256, 1944, 10),
        ] {
            let a = widen(&rand_i8(in_dim, seed));
            let w = rand_i8(in_dim * out_dim, seed ^ 0xABCD);
            let mut got = vec![0i32; out_dim];
            let mut expect = vec![0i32; out_dim];
            gemv_i8(&a, &w, &mut got);
            gemv_i8_scalar(&a, &w, &mut expect);
            assert_eq!(got, expect, "shape {in_dim}x{out_dim}");
        }
    }

    #[test]
    fn unsigned_dispatch_matches_scalar_across_shapes() {
        for (in_dim, out_dim, seed) in [
            (1usize, 1usize, 1u64),
            (7, 3, 2),
            (31, 4, 3),
            (32, 5, 4),
            (33, 9, 5),
            (64, 459, 6),
            (100, 7, 7),
            (256, 1944, 8),
        ] {
            // Activations must stay in the saturation-safe 0..=127 band.
            let a: Vec<u8> = rand_i8(in_dim, seed).iter().map(|&x| (x as u8) & 0x7F).collect();
            let w = rand_i8(in_dim * out_dim, seed ^ 0xF00D);
            let mut got = vec![0i32; out_dim];
            let mut expect = vec![0i32; out_dim];
            gemv_u8_i8(&a, &w, &mut got);
            gemv_u8_i8_scalar(&a, &w, &mut expect);
            assert_eq!(got, expect, "shape {in_dim}x{out_dim}");
        }
    }

    #[test]
    fn unsigned_extremes_do_not_saturate() {
        // 127 * -128 pairs are the saturation worst case: |sum of two
        // pairs| = 2 * 127 * 128 = 32512 < 32767, so vpmaddubsw is exact.
        let a = vec![127u8; 300];
        let w = vec![-128i8; 300 * 4];
        let mut got = vec![0i32; 4];
        gemv_u8_i8(&a, &w, &mut got);
        assert_eq!(got, vec![127 * -128 * 300; 4]);
    }

    #[test]
    #[should_panic(expected = "out_dim x in_dim")]
    fn unsigned_mismatched_buffers_panic() {
        let mut out = vec![0i32; 2];
        gemv_u8_i8(&[1, 2, 3], &[1, 2, 3, 4], &mut out);
    }

    #[test]
    fn extreme_values_do_not_overflow_lanes() {
        // -128 * -128 * long rows stresses the i16 widening: madd pairs
        // peak at 2 * 128^2 = 32768 which still fits i32 per pair.
        let a = vec![-128i16; 300];
        let w = vec![-128i8; 300 * 4];
        let mut got = vec![0i32; 4];
        gemv_i8(&a, &w, &mut got);
        assert_eq!(got, vec![128 * 128 * 300; 4]);
    }

    #[test]
    #[should_panic(expected = "out_dim x in_dim")]
    fn mismatched_buffers_panic() {
        let mut out = vec![0i32; 2];
        gemv_i8(&[1, 2, 3], &[1, 2, 3, 4], &mut out);
    }
}
