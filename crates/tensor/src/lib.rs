//! Minimal dense `f32` linear algebra for the AIrchitect ML stack.
//!
//! The paper trains its models with TensorFlow/Keras; this crate is the
//! from-scratch substrate that replaces it: a row-major [`Matrix`] with the
//! handful of operations a small MLP stack needs — blocked matrix products
//! (including transposed variants for backprop), broadcast row ops, and
//! seeded initializers.
//!
//! # Example
//!
//! ```
//! use airchitect_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
//! let c = a.matmul(&b);
//! assert_eq!(c.get(0, 0), 19.0);
//! assert_eq!(c.get(1, 1), 50.0);
//! ```

#![warn(missing_docs)]

mod matrix;

pub mod gemm;
pub mod init;
pub mod ops;
pub mod qgemm;

pub use matrix::Matrix;
