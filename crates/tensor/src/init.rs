//! Seeded weight initializers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Matrix;

/// Xavier/Glorot uniform initialization: `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// # Example
///
/// ```
/// use airchitect_tensor::init::xavier_uniform;
///
/// let w = xavier_uniform(64, 256, 42);
/// assert_eq!((w.rows(), w.cols()), (64, 256));
/// let limit = (6.0f32 / (64.0 + 256.0)).sqrt();
/// assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -limit, limit, seed)
}

/// Uniform initialization `U(lo, hi)` of a `rows x cols` matrix.
///
/// # Panics
///
/// Panics if `hi < lo`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    assert!(hi >= lo, "empty range");
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| lo + (hi - lo) * rng.random::<f32>())
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(xavier_uniform(8, 8, 1), xavier_uniform(8, 8, 1));
        assert_ne!(xavier_uniform(8, 8, 1), xavier_uniform(8, 8, 2));
    }

    #[test]
    fn xavier_respects_limit() {
        let w = xavier_uniform(100, 50, 3);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        // And is not degenerate.
        let spread = w
            .as_slice()
            .iter()
            .cloned()
            .fold(0.0f32, |a, v| a.max(v.abs()));
        assert!(spread > limit * 0.5);
    }

    #[test]
    fn uniform_bounds() {
        let w = uniform(10, 10, 2.0, 3.0, 9);
        assert!(w.as_slice().iter().all(|&v| (2.0..=3.0).contains(&v)));
    }
}
