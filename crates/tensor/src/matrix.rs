use serde::{Deserialize, Serialize};

use crate::gemm;

/// A dense row-major `f32` matrix.
///
/// The workhorse of the NN stack. Products run on the blocked,
/// register-tiled engine in [`crate::gemm`]; the `_into` variants write
/// into caller-owned buffers so hot loops can run allocation-free, and
/// `threads` fans the output rows out over scoped threads with a fixed
/// partition, so results are bit-identical for every thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// The `r`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The `r`-th row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes the matrix to `rows × cols`, reusing the existing
    /// allocation when the element count matches. **Contents are
    /// unspecified afterwards** — this is a buffer-recycling primitive
    /// for the `_into` operations, not a view change.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        let len = rows * cols;
        if self.data.len() != len {
            self.data.resize(len, 0.0);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Makes `self` a copy of `other`, reusing the existing allocation
    /// when possible.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// `self · other`.
    ///
    /// Allocates the output; see [`Matrix::matmul_into`] for the
    /// buffer-reusing variant. Uses [`gemm::num_threads`] threads.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out, gemm::num_threads());
        out
    }

    /// `out = self · other`, writing into a caller-owned buffer that is
    /// reshaped (allocation-free when already the right size).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.resize(self.rows, other.cols);
        gemm::gemm_nn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
            false,
            threads,
        );
    }

    /// `self · otherᵀ` (used for backprop input gradients).
    ///
    /// Allocates the output; see [`Matrix::matmul_nt_into`] for the
    /// buffer-reusing variant. Uses [`gemm::num_threads`] threads.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out, gemm::num_threads());
        out
    }

    /// `out = self · otherᵀ`, writing into a caller-owned buffer that is
    /// reshaped (allocation-free when already the right size).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        out.resize(self.rows, other.rows);
        gemm::gemm_nt(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &other.data,
            &mut out.data,
            false,
            threads,
        );
    }

    /// `selfᵀ · other` (used for backprop weight gradients).
    ///
    /// Allocates the output; see [`Matrix::matmul_tn_into`] for the
    /// buffer-reusing variant. Uses [`gemm::num_threads`] threads.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out, gemm::num_threads());
        out
    }

    /// `out = selfᵀ · other`, writing into a caller-owned buffer that is
    /// reshaped (allocation-free when already the right size).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        out.resize(self.cols, other.cols);
        gemm::gemm_tn(
            self.cols,
            self.rows,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
            false,
            threads,
        );
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        gemm::transpose_into(&self.data, self.rows, self.cols, &mut out.data);
        out
    }

    /// Adds `other` element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds `row` to every row in place (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols()`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(row) {
                *a += b;
            }
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of each column (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Extracts rows `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start < end && end <= self.rows, "bad row range");
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() < 1e-4)
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Tiny deterministic LCG to avoid pulling rand into unit tests.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let data: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_matrix(7, 13, 1);
        let b = rand_matrix(13, 5, 2);
        assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b)));
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let a = rand_matrix(6, 9, 3);
        let b = rand_matrix(4, 9, 4);
        assert!(approx_eq(&a.matmul_nt(&b), &a.matmul(&b.transpose())));
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let a = rand_matrix(9, 6, 5);
        let b = rand_matrix(9, 4, 6);
        assert!(approx_eq(&a.matmul_tn(&b), &a.transpose().matmul(&b)));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = rand_matrix(5, 8, 7);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn column_sums() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.column_sums(), vec![9.0, 12.0]);
    }

    #[test]
    fn slice_rows_extracts_range() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 0), 3.0);
    }

    #[test]
    fn matmul_into_reuses_buffer_and_reshapes() {
        let a = rand_matrix(5, 4, 8);
        let b = rand_matrix(4, 6, 9);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut out, 1);
        assert_eq!((out.rows(), out.cols()), (5, 6));
        assert!(approx_eq(&out, &naive_matmul(&a, &b)));
        // Same shape again: the buffer is reused in place.
        a.matmul_into(&b, &mut out, 2);
        assert!(approx_eq(&out, &naive_matmul(&a, &b)));
    }

    #[test]
    fn nt_and_tn_into_match_allocating_variants() {
        let a = rand_matrix(6, 9, 10);
        let b = rand_matrix(4, 9, 11);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_nt_into(&b, &mut out, 1);
        assert_eq!(out, a.matmul_nt(&b));
        let c = rand_matrix(9, 7, 12);
        let d = rand_matrix(9, 3, 13);
        let mut out2 = Matrix::zeros(1, 1);
        c.matmul_tn_into(&d, &mut out2, 1);
        assert_eq!(out2, c.matmul_tn(&d));
    }

    #[test]
    fn resize_and_copy_from() {
        let mut m = Matrix::zeros(2, 2);
        m.resize(3, 5);
        assert_eq!((m.rows(), m.cols()), (3, 5));
        let src = rand_matrix(4, 4, 14);
        m.copy_from(&src);
        assert_eq!(m, src);
        m.fill(1.5);
        assert!(m.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5]]);
        a.scale(2.0);
        a.add_assign(&b);
        assert_eq!(a.row(0), &[2.5, -3.5]);
    }
}
