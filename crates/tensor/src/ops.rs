//! Elementwise and reduction operations used by the NN layers.

use crate::Matrix;

/// ReLU applied out of place.
pub fn relu(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Masks `grad` by the ReLU activation pattern of `pre_activation`:
/// `grad[i] if pre_activation[i] > 0 else 0`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn relu_backward(grad: &Matrix, pre_activation: &Matrix) -> Matrix {
    assert_eq!(
        (grad.rows(), grad.cols()),
        (pre_activation.rows(), pre_activation.cols()),
        "relu_backward shape mismatch"
    );
    let mut out = grad.clone();
    for (g, &x) in out.as_mut_slice().iter_mut().zip(pre_activation.as_slice()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    out
}

/// Row-wise softmax with the usual max-subtraction for numerical stability.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// ReLU written into a caller-owned buffer (reshaped, allocation-free
/// when already the right size).
pub fn relu_into(m: &Matrix, out: &mut Matrix) {
    out.resize(m.rows(), m.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(m.as_slice()) {
        *o = if v < 0.0 { 0.0 } else { v };
    }
}

/// [`relu_backward`] written into a caller-owned buffer.
///
/// # Panics
///
/// Panics on shape mismatch between `grad` and `pre_activation`.
pub fn relu_backward_into(grad: &Matrix, pre_activation: &Matrix, out: &mut Matrix) {
    assert_eq!(
        (grad.rows(), grad.cols()),
        (pre_activation.rows(), pre_activation.cols()),
        "relu_backward shape mismatch"
    );
    out.resize(grad.rows(), grad.cols());
    for ((o, &g), &x) in out
        .as_mut_slice()
        .iter_mut()
        .zip(grad.as_slice())
        .zip(pre_activation.as_slice())
    {
        *o = if x <= 0.0 { 0.0 } else { g };
    }
}

/// Index of the maximum entry in each row.
pub fn argmax_rows(m: &Matrix) -> Vec<u32> {
    let mut out = Vec::new();
    argmax_rows_into(m, &mut out);
    out
}

/// [`argmax_rows`] into a caller-owned buffer (cleared and refilled;
/// allocation-free once its capacity has grown to the batch size).
/// Ties break toward the first index.
pub fn argmax_rows_into(m: &Matrix, out: &mut Vec<u32>) {
    out.clear();
    out.extend((0..m.rows()).map(|r| {
        let row = m.row(r);
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best as u32
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu(&m).row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let pre = Matrix::from_rows(&[&[-1.0, 0.5, 0.0]]);
        let grad = Matrix::from_rows(&[&[10.0, 10.0, 10.0]]);
        assert_eq!(relu_backward(&grad, &pre).row(0), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        let s = softmax_rows(&m);
        assert!(s.row(0).iter().all(|v| v.is_finite()));
        assert!(s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn argmax_picks_largest() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.0], &[5.0, 1.0, 2.0]]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn argmax_breaks_ties_toward_first() {
        let m = Matrix::from_rows(&[&[1.0, 1.0]]);
        assert_eq!(argmax_rows(&m), vec![0]);
    }
}
