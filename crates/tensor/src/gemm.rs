//! The compute engine: blocked, register-tiled GEMM kernels with an
//! optional multi-threaded row-partitioned path.
//!
//! Three products cover everything the NN stack needs:
//!
//! * [`gemm_nn`] — `C = A·B` (forward pass),
//! * [`gemm_nt`] — `C = A·Bᵀ` (input gradients),
//! * [`gemm_tn`] — `C = Aᵀ·B` (weight gradients).
//!
//! All three write into a caller-owned output slice and optionally
//! *accumulate* into it (`C += …`), which lets backprop add weight
//! gradients in place without a temporary.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of the thread count**. The
//! output is split into fixed [`ROW_BLOCK`]-row blocks purely as a
//! function of the matrix shape; threads only decide *which CPU core*
//! computes a block, never how the sums inside it are ordered. Every
//! kernel path accumulates along `k` in ascending order, so re-running
//! with `threads = 1` or `threads = 64` produces the same bytes. This is
//! what keeps `fit_resumable`'s byte-identical resume guarantee intact
//! when training runs multi-threaded.
//!
//! The transposed variants are computed by transposing one operand into a
//! thread-local packing buffer (reused across calls, so steady-state cost
//! is zero allocations) and then running the one well-optimized `nn`
//! kernel. This turns `matmul_nt`'s scalar dot-product loop — which LLVM
//! will not vectorize because float addition is not associative — into
//! the vectorizable streaming form.
//!
//! # Kernel selection
//!
//! [`set_kernel`] switches the whole process between the tuned
//! [`Kernel::Blocked`] engine (default) and the original
//! [`Kernel::Reference`] triple loops. The reference kernels are the
//! pre-engine baseline; the `bench` harness uses the switch to measure an
//! honest in-binary speedup. The reference path ignores `threads`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Rows per partition block in the threaded path.
///
/// The partition is a pure function of the output shape: block `i` always
/// covers rows `[i * ROW_BLOCK, (i + 1) * ROW_BLOCK)`, whatever the
/// thread count. 64 rows of a 459-wide `f32` output is ~115 KiB — enough
/// work to amortize a thread hand-off, small enough to split the paper's
/// 256-row training batches four ways.
pub const ROW_BLOCK: usize = 64;

/// Micro-tile rows held in registers.
const MR: usize = 4;
/// Micro-tile columns held in registers (two 8-lane AVX2 vectors).
const NR: usize = 16;

/// Which GEMM implementation the process uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The original naive triple loops (pre-engine baseline).
    Reference,
    /// The blocked, register-tiled engine (default).
    Blocked,
}

static KERNEL: AtomicU8 = AtomicU8::new(1);
static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Selects the process-wide GEMM implementation.
pub fn set_kernel(k: Kernel) {
    KERNEL.store(
        match k {
            Kernel::Reference => 0,
            Kernel::Blocked => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected GEMM implementation.
pub fn kernel() -> Kernel {
    match KERNEL.load(Ordering::Relaxed) {
        0 => Kernel::Reference,
        _ => Kernel::Blocked,
    }
}

/// Sets the default thread count used by the allocating
/// [`Matrix`](crate::Matrix) product methods. Clamped to at least 1.
pub fn set_num_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The default thread count for the allocating
/// [`Matrix`](crate::Matrix) product methods (1 unless changed).
pub fn num_threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

thread_local! {
    /// Reusable packing buffer for the transposed-operand kernels.
    static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `out = A·B` (or `out += A·B` when `accumulate`).
///
/// `a` is `m×k`, `b` is `k×n`, `out` is `m×n`, all row-major.
/// `threads > 1` splits the output rows into [`ROW_BLOCK`] blocks and
/// fans them out over scoped threads; the result is bit-identical for
/// every thread count.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k, "gemm_nn: bad `a` length");
    debug_assert_eq!(b.len(), k * n, "gemm_nn: bad `b` length");
    debug_assert_eq!(out.len(), m * n, "gemm_nn: bad `out` length");
    match kernel() {
        Kernel::Reference => gemm_nn_reference(m, k, n, a, b, out, accumulate),
        Kernel::Blocked => nn_blocked(m, k, n, a, b, out, accumulate, threads),
    }
}

/// `out = A·Bᵀ` (or `out += A·Bᵀ` when `accumulate`).
///
/// `a` is `m×k`, `b` is `n×k` (its *rows* are dotted against rows of
/// `a`), `out` is `m×n`. The blocked path transposes `b` into a reusable
/// thread-local buffer and runs [`gemm_nn`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k, "gemm_nt: bad `a` length");
    debug_assert_eq!(b.len(), n * k, "gemm_nt: bad `b` length");
    debug_assert_eq!(out.len(), m * n, "gemm_nt: bad `out` length");
    match kernel() {
        Kernel::Reference => gemm_nt_reference(m, k, n, a, b, out, accumulate),
        Kernel::Blocked => PACK.with(|p| {
            let mut pack = p.borrow_mut();
            ensure_len(&mut pack, k * n);
            transpose_into(b, n, k, &mut pack);
            nn_blocked(m, k, n, a, &pack, out, accumulate, threads);
        }),
    }
}

/// `out = Aᵀ·B` (or `out += Aᵀ·B` when `accumulate`).
///
/// `a` is `k×m` (transposed on the fly), `b` is `k×n`, `out` is `m×n`.
/// The blocked path transposes `a` into a reusable thread-local buffer
/// and runs [`gemm_nn`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
    threads: usize,
) {
    debug_assert_eq!(a.len(), k * m, "gemm_tn: bad `a` length");
    debug_assert_eq!(b.len(), k * n, "gemm_tn: bad `b` length");
    debug_assert_eq!(out.len(), m * n, "gemm_tn: bad `out` length");
    match kernel() {
        Kernel::Reference => gemm_tn_reference(m, k, n, a, b, out, accumulate),
        Kernel::Blocked => PACK.with(|p| {
            let mut pack = p.borrow_mut();
            ensure_len(&mut pack, m * k);
            transpose_into(a, k, m, &mut pack);
            nn_blocked(m, k, n, &pack, b, out, accumulate, threads);
        }),
    }
}

/// The pre-engine `A·B` triple loop (`i-k-j`, zero-skip), kept verbatim
/// as the measurement baseline and as the oracle for equivalence tests.
pub fn gemm_nn_reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if !accumulate {
        out.fill(0.0);
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// The pre-engine `A·Bᵀ` dot-product loop, kept verbatim as the
/// measurement baseline and equivalence-test oracle.
pub fn gemm_nt_reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            if accumulate {
                *o += acc;
            } else {
                *o = acc;
            }
        }
    }
}

/// The pre-engine `Aᵀ·B` loop (`k` outermost, zero-skip), kept verbatim
/// as the measurement baseline and equivalence-test oracle.
pub fn gemm_tn_reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if !accumulate {
        out.fill(0.0);
    }
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Cache-blocked transpose of the row-major `rows×cols` slice `src` into
/// the `cols×rows` slice `dst`.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TB: usize = 32;
    for r0 in (0..rows).step_by(TB) {
        let r1 = (r0 + TB).min(rows);
        for c0 in (0..cols).step_by(TB) {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                let row = &src[r * cols..(r + 1) * cols];
                for (c, &v) in row.iter().enumerate().take(c1).skip(c0) {
                    dst[c * rows + r] = v;
                }
            }
        }
    }
}

/// Grows/shrinks a reusable buffer to exactly `len` elements. Contents
/// are unspecified; after warm-up the call never reallocates.
fn ensure_len(buf: &mut Vec<f32>, len: usize) {
    if buf.len() != len {
        buf.resize(len, 0.0);
    }
}

/// One unit of the fixed partition: the block's rows of `a` and `out`.
type BlockTask<'x> = (&'x [f32], &'x mut [f32]);

/// Blocked `A·B`: fixed row partition, optional scoped-thread fan-out.
#[allow(clippy::too_many_arguments)]
fn nn_blocked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    accumulate: bool,
    threads: usize,
) {
    let nblocks = m.div_ceil(ROW_BLOCK);
    let t = threads.max(1).min(nblocks);
    if t <= 1 {
        for (bi, chunk) in out.chunks_mut(ROW_BLOCK * n).enumerate() {
            let rows = chunk.len() / n;
            let a_block = &a[bi * ROW_BLOCK * k..bi * ROW_BLOCK * k + rows * k];
            nn_block(rows, k, n, a_block, b, chunk, accumulate);
        }
        return;
    }
    // Round-robin the fixed blocks over `t` workers. Which worker runs a
    // block never affects its contents, so this is safe to re-shape.
    let mut work: Vec<Vec<BlockTask<'_>>> = (0..t).map(|_| Vec::new()).collect();
    for (bi, chunk) in out.chunks_mut(ROW_BLOCK * n).enumerate() {
        let rows = chunk.len() / n;
        let a_block = &a[bi * ROW_BLOCK * k..bi * ROW_BLOCK * k + rows * k];
        work[bi % t].push((a_block, chunk));
    }
    std::thread::scope(|s| {
        let local = work.pop().unwrap_or_default();
        for list in work {
            s.spawn(move || {
                for (a_block, chunk) in list {
                    nn_block(chunk.len() / n, k, n, a_block, b, chunk, accumulate);
                }
            });
        }
        for (a_block, chunk) in local {
            nn_block(chunk.len() / n, k, n, a_block, b, chunk, accumulate);
        }
    });
}

/// Computes one `rows×n` output block (`out`) from the matching rows of
/// `a` (`rows×k`) and all of `b` (`k×n`), dispatching to the widest
/// vector ISA the CPU supports.
fn nn_block(rows: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], acc: bool) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            airchitect_telemetry::metrics::GEMM_DISPATCH_AVX2.inc();
            // SAFETY: AVX2 + FMA presence was just verified at runtime; the
            // function body is plain safe Rust compiled with those features.
            unsafe {
                return nn_block_avx2(rows, k, n, a, b, out, acc);
            }
        }
    }
    airchitect_telemetry::metrics::GEMM_DISPATCH_SCALAR.inc();
    nn_block_generic(rows, k, n, a, b, out, acc);
}

/// The portable block kernel, recompiled with AVX2 + FMA enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn nn_block_avx2(
    rows: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    nn_block_generic(rows, k, n, a, b, out, acc);
}

/// Walks the block in `MR×NR` register tiles; ragged edges fall back to
/// a scalar tile with the same ascending-`k` accumulation order.
#[inline(always)]
fn nn_block_generic(
    rows: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    debug_assert_eq!(a.len(), rows * k, "nn_block: bad `a` length");
    debug_assert_eq!(b.len(), k * n, "nn_block: bad `b` length");
    debug_assert_eq!(out.len(), rows * n, "nn_block: bad `out` length");
    // Column-panel major: the `k×NR` panel of `b` a micro-tile streams
    // fits in L1, so walking all row tiles before moving to the next
    // panel keeps it hot.
    let mut j0 = 0;
    while j0 < n {
        let nr = (n - j0).min(NR);
        let mut i0 = 0;
        while i0 < rows {
            let mr = (rows - i0).min(MR);
            if mr == MR && nr == NR {
                micro_full(k, n, a, i0, b, j0, out, acc);
            } else {
                micro_edge(k, n, a, i0, mr, b, j0, nr, out, acc);
            }
            i0 += MR;
        }
        j0 += NR;
    }
}

/// Full `MR×NR` register tile: the accumulators live in registers across
/// the whole `k` sweep and the output is touched exactly once at the end.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_full(
    k: usize,
    n: usize,
    a: &[f32],
    i0: usize,
    b: &[f32],
    j0: usize,
    out: &mut [f32],
    acc: bool,
) {
    let a0 = &a[i0 * k..][..k];
    let a1 = &a[(i0 + 1) * k..][..k];
    let a2 = &a[(i0 + 2) * k..][..k];
    let a3 = &a[(i0 + 3) * k..][..k];
    let mut t = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let brow: &[f32; NR] = b[kk * n + j0..kk * n + j0 + NR].try_into().unwrap();
        let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
        for (tr, &ar) in t.iter_mut().zip(&av) {
            for (tv, &bv) in tr.iter_mut().zip(brow) {
                *tv += ar * bv;
            }
        }
    }
    for (r, tr) in t.iter().enumerate() {
        let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        if acc {
            for (o, &v) in orow.iter_mut().zip(tr) {
                *o += v;
            }
        } else {
            orow.copy_from_slice(tr);
        }
    }
}

/// Ragged-edge tile (`mr < MR` or `nr < NR`): scalar dots, still
/// ascending in `k`, so edge cells see the same reduction order.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_edge(
    k: usize,
    n: usize,
    a: &[f32],
    i0: usize,
    mr: usize,
    b: &[f32],
    j0: usize,
    nr: usize,
    out: &mut [f32],
    acc: bool,
) {
    for r in 0..mr {
        let arow = &a[(i0 + r) * k..][..k];
        let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
        for (j, o) in orow.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for (kk, &av) in arow.iter().enumerate() {
                sum += av * b[kk * n + j0 + j];
            }
            if acc {
                *o += sum;
            } else {
                *o = sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(7);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn blocked_nn_matches_reference() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (7, 13, 5),
            (200, 3, 2),
            (3, 5, 200),
            (65, 64, 33),
        ] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut want = vec![0.0; m * n];
            gemm_nn_reference(m, k, n, &a, &b, &mut want, false);
            let mut got = vec![0.0; m * n];
            nn_blocked(m, k, n, &a, &b, &mut got, false, 1);
            assert!(max_abs_diff(&want, &got) < 1e-5, "({m},{k},{n})");
        }
    }

    #[test]
    fn blocked_nn_is_bit_identical_across_threads() {
        let (m, k, n) = (230, 37, 61);
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 4);
        let mut base = vec![0.0; m * n];
        nn_blocked(m, k, n, &a, &b, &mut base, false, 1);
        for t in [2, 3, 4, 8, 64] {
            let mut got = vec![0.0; m * n];
            nn_blocked(m, k, n, &a, &b, &mut got, false, t);
            assert_eq!(base, got, "threads = {t}");
        }
    }

    #[test]
    fn accumulate_adds_on_top() {
        let (m, k, n) = (9, 11, 13);
        let a = rand_vec(m * k, 5);
        let b = rand_vec(k * n, 6);
        let seed = rand_vec(m * n, 7);
        let mut product = vec![0.0; m * n];
        nn_blocked(m, k, n, &a, &b, &mut product, false, 1);
        let mut got = seed.clone();
        nn_blocked(m, k, n, &a, &b, &mut got, true, 2);
        for i in 0..m * n {
            assert!((got[i] - (seed[i] + product[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_into_round_trips() {
        let (r, c) = (37, 53);
        let src = rand_vec(r * c, 8);
        let mut t = vec![0.0; r * c];
        transpose_into(&src, r, c, &mut t);
        let mut back = vec![0.0; r * c];
        transpose_into(&t, c, r, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn thread_globals_round_trip() {
        set_num_threads(4);
        assert_eq!(num_threads(), 4);
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(1);
        assert_eq!(kernel(), Kernel::Blocked);
    }
}
