//! # AIrchitect — learned constant-time architecture & mapping optimization
//!
//! Reproduction of *AIrchitect: Automating Hardware Architecture and Mapping
//! Optimization* (Samajdar, Joseph, Krishna — DATE 2023).
//!
//! Conventional design-space exploration answers "what is the best
//! accelerator configuration for this workload?" by running a simulator over
//! many candidate configurations and searching for the optimum — for *every*
//! query. AIrchitect replaces that loop with a trained recommendation
//! network: the search-generated optima become training labels, and after
//! offline training a single constant-time inference returns the predicted
//! optimal configuration (paper Fig. 1).
//!
//! The network (paper Fig. 2) maps each integer input (workload dimensions
//! and design constraints) through a learned per-feature embedding, then a
//! 256-node hidden layer, onto a softmax over the quantized config space.
//!
//! ## Quick start
//!
//! ```
//! use airchitect::{AirchitectConfig, AirchitectModel, CaseStudy};
//! use airchitect_dse::case1::{self, Case1DatasetSpec, Case1Problem};
//!
//! // 1. Generate ground-truth optima with the conventional search flow.
//! let problem = Case1Problem::new(1 << 9);
//! let spec = Case1DatasetSpec { samples: 1_000, budget_log2_range: (5, 9), seed: 1 };
//! let dataset = case1::generate_dataset(&problem, &spec);
//!
//! // 2. Train the recommendation network on the optima.
//! use airchitect_nn::train::TrainConfig;
//! let mut model = AirchitectModel::new(CaseStudy::ArrayDataflow, &AirchitectConfig {
//!     num_classes: problem.space().len() as u32,
//!     train: TrainConfig { epochs: 10, batch_size: 64, ..Default::default() },
//!     ..Default::default()
//! });
//! let report = model.train(&dataset)?;
//! assert!(report.history.final_train_accuracy() > 0.2);
//!
//! // 3. Constant-time recommendation for a new workload.
//! use airchitect_workload::GemmWorkload;
//! let wl = GemmWorkload::new(512, 64, 256)?;
//! let label = model.predict_row(&Case1Problem::features(&wl, 1 << 10));
//! let (array, dataflow) = problem.space().decode(label).expect("label in space");
//! println!("recommended: {array} with {dataflow}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! * [`model`] — the recommendation network and its per-case-study feature
//!   quantizers,
//! * [`pipeline`] — end-to-end dataset → train → evaluate runs for all three
//!   case studies,
//! * [`eval`] — misprediction-penalty analysis (paper Fig. 10d-h),
//! * [`recommend`] — the typed constant-time recommendation API,
//! * [`checkpoint`] — crash-safe training snapshots for resumable runs.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod eval;
pub mod model;
pub mod persist;
pub mod pipeline;
pub mod recommend;

pub use model::{AirchitectConfig, AirchitectModel, CaseStudy, FeatureQuantizer};
pub use recommend::Recommender;
