//! Save/load for trained [`AirchitectModel`]s: the feature quantizer and the
//! network travel together, so a loaded model answers queries identically.
//!
//! Format: magic `AIRM`, version 2, case-study tag, quantizer columns, the
//! embedded `airchitect-nn` network blob, then a CRC32 footer over all
//! preceding bytes. Version-1 files (no footer) still load and are flagged
//! [`Integrity::UnverifiedLegacy`]. Saves are atomic (temp file + fsync +
//! rename), so a crash mid-save never leaves a torn model behind.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use airchitect_data::integrity::{
    append_crc_footer, atomic_write, crc32, split_crc_footer, Integrity,
};
use airchitect_nn::serialize as nn_serialize;

use crate::model::{AirchitectModel, CaseStudy, ColumnQuantizer, FeatureQuantizer};

const MAGIC: &[u8; 4] = b"AIRM";
const VERSION: u32 = 2;
const LEGACY_VERSION: u32 = 1;

/// Error produced by the model persistence codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Malformed buffer.
    Corrupt(&'static str),
    /// A version-2 file's CRC32 footer did not match its contents.
    ChecksumMismatch {
        /// CRC stored in the file footer.
        stored: u32,
        /// CRC computed over the file body.
        computed: u32,
    },
    /// Error inside the embedded network blob.
    Network(String),
    /// Filesystem error, stringified.
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "model checksum mismatch: file says {stored:#010x}, contents hash to {computed:#010x}"
            ),
            PersistError::Network(e) => write!(f, "network blob: {e}"),
            PersistError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

fn case_tag(case: CaseStudy) -> u8 {
    match case {
        CaseStudy::ArrayDataflow => 0,
        CaseStudy::BufferSizing => 1,
        CaseStudy::MultiArrayScheduling => 2,
    }
}

fn case_from_tag(tag: u8) -> Option<CaseStudy> {
    match tag {
        0 => Some(CaseStudy::ArrayDataflow),
        1 => Some(CaseStudy::BufferSizing),
        2 => Some(CaseStudy::MultiArrayScheduling),
        _ => None,
    }
}

/// Serializes a model (trained or not) to bytes (version 2, checksummed).
pub fn to_bytes(model: &AirchitectModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u8(case_tag(model.case_study()));
    buf.put_u8(model.is_trained() as u8);

    let q = model.quantizer();
    buf.put_u32_le(q.vocab());
    buf.put_u32_le(q.num_columns() as u32);
    for col in q.columns() {
        match col {
            ColumnQuantizer::Direct => buf.put_u8(0),
            ColumnQuantizer::Log2 { bins_per_octave } => {
                buf.put_u8(1);
                buf.put_u32_le(*bins_per_octave);
            }
            ColumnQuantizer::Scaled { step } => {
                buf.put_u8(2);
                buf.put_f32_le(*step);
            }
        }
    }

    let net = nn_serialize::to_bytes(model.network());
    buf.put_u64_le(net.len() as u64);
    buf.put_slice(&net);
    let mut out = buf.freeze().to_vec();
    append_crc_footer(&mut out);
    Bytes::from(out)
}

/// Deserializes a model from bytes produced by [`to_bytes`], reporting
/// whether its checksum was verified.
///
/// Version-2 buffers have their CRC32 footer checked before any payload
/// parsing; version-1 buffers (pre-checksum) parse structurally and come
/// back as [`Integrity::UnverifiedLegacy`].
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] on malformed input and
/// [`PersistError::ChecksumMismatch`] when a v2 footer disagrees with the
/// body.
pub fn from_bytes_integrity(buf: &[u8]) -> Result<(AirchitectModel, Integrity), PersistError> {
    if buf.len() < 10 {
        return Err(PersistError::Corrupt("truncated header"));
    }
    if &buf[..4] != MAGIC {
        return Err(PersistError::Corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let (body, integrity) = match version {
        LEGACY_VERSION => (buf, Integrity::UnverifiedLegacy),
        VERSION => {
            let (body, stored) =
                split_crc_footer(buf).ok_or(PersistError::Corrupt("truncated header"))?;
            let computed = crc32(body);
            if computed != stored {
                return Err(PersistError::ChecksumMismatch { stored, computed });
            }
            (body, Integrity::Verified)
        }
        _ => return Err(PersistError::Corrupt("unsupported version")),
    };
    parse_body(body).map(|m| (m, integrity))
}

/// Deserializes a model from bytes produced by [`to_bytes`].
///
/// Convenience wrapper over [`from_bytes_integrity`] that discards the
/// integrity flag.
///
/// # Errors
///
/// Returns [`PersistError`] on malformed input.
pub fn from_bytes(buf: &[u8]) -> Result<AirchitectModel, PersistError> {
    from_bytes_integrity(buf).map(|(m, _)| m)
}

/// Parses the checksum-free body (header + payload) shared by v1 and v2.
fn parse_body(mut buf: &[u8]) -> Result<AirchitectModel, PersistError> {
    if buf.remaining() < 10 {
        return Err(PersistError::Corrupt("truncated header"));
    }
    buf.advance(8); // magic + version, validated by the caller
    let case = case_from_tag(buf.get_u8()).ok_or(PersistError::Corrupt("unknown case study"))?;
    let trained = buf.get_u8() != 0;

    if buf.remaining() < 8 {
        return Err(PersistError::Corrupt("truncated quantizer header"));
    }
    let vocab = buf.get_u32_le();
    let n_cols = buf.get_u32_le() as usize;
    if vocab == 0 || n_cols == 0 || n_cols > 4096 {
        return Err(PersistError::Corrupt("bad quantizer dimensions"));
    }
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        if buf.remaining() < 1 {
            return Err(PersistError::Corrupt("truncated quantizer column"));
        }
        columns.push(match buf.get_u8() {
            0 => ColumnQuantizer::Direct,
            1 => {
                if buf.remaining() < 4 {
                    return Err(PersistError::Corrupt("truncated log2 column"));
                }
                ColumnQuantizer::Log2 {
                    bins_per_octave: buf.get_u32_le(),
                }
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(PersistError::Corrupt("truncated scaled column"));
                }
                ColumnQuantizer::Scaled {
                    step: buf.get_f32_le(),
                }
            }
            _ => return Err(PersistError::Corrupt("unknown column tag")),
        });
    }
    let quantizer = FeatureQuantizer::new(columns, vocab);

    if buf.remaining() < 8 {
        return Err(PersistError::Corrupt("truncated network length"));
    }
    let net_len = buf.get_u64_le() as usize;
    if buf.remaining() != net_len {
        return Err(PersistError::Corrupt("network blob size mismatch"));
    }
    let network =
        nn_serialize::from_bytes(buf).map_err(|e| PersistError::Network(e.to_string()))?;
    Ok(AirchitectModel::from_parts(
        case, quantizer, network, trained,
    ))
}

/// Saves a model to a file atomically (temp file + fsync + rename).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem errors.
pub fn save(model: &AirchitectModel, path: impl AsRef<Path>) -> Result<(), PersistError> {
    airchitect_chaos::fail_point!("persist.write", |e: std::io::Error| Err(
        PersistError::Io(e.to_string())
    ));
    atomic_write(path, &to_bytes(model))?;
    Ok(())
}

/// Transient read errors retried before the load fails for real.
const READ_RETRIES: u32 = 4;

/// One open-and-read attempt (the `persist.read` failpoint injects here).
fn try_read(path: &Path) -> std::io::Result<Vec<u8>> {
    airchitect_chaos::fail_point!("persist.read", Err);
    let mut f = File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Reads a whole file, retrying transient `Interrupted`/`WouldBlock`
/// errors with bounded exponential backoff (1/2/4/8 ms). Anything else —
/// including every corrupt-content error downstream — stays fail-fast.
fn read_with_retry(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut backoff_ms = 1u64;
    for _ in 0..READ_RETRIES {
        match try_read(path) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
                ) =>
            {
                airchitect_telemetry::metrics::PERSIST_READ_RETRIES.inc();
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                backoff_ms *= 2;
            }
            other => return other,
        }
    }
    try_read(path)
}

/// Loads a model from a file written by [`save`], with its integrity
/// status. Transient `Interrupted`/`WouldBlock` read errors are retried
/// with bounded backoff; corrupt contents fail fast.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or parse errors.
pub fn load_integrity(
    path: impl AsRef<Path>,
) -> Result<(AirchitectModel, Integrity), PersistError> {
    let buf = read_with_retry(path.as_ref())?;
    from_bytes_integrity(&buf)
}

/// Loads a model from a file written by [`save`].
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or parse errors.
pub fn load(path: impl AsRef<Path>) -> Result<AirchitectModel, PersistError> {
    load_integrity(path).map(|(m, _)| m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AirchitectConfig;
    use airchitect_data::Dataset;
    use airchitect_nn::train::TrainConfig;

    fn small_trained_model() -> AirchitectModel {
        let mut ds = Dataset::new(4, 3).unwrap();
        for i in 0..120 {
            let m = [8.0, 256.0, 8192.0][i % 3];
            ds.push(&[10.0, m, 64.0, 64.0], (i % 3) as u32).unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: 3,
                train: TrainConfig {
                    epochs: 5,
                    batch_size: 32,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).unwrap();
        model
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let model = small_trained_model();
        let (back, integrity) = from_bytes_integrity(&to_bytes(&model)).unwrap();
        assert_eq!(back.case_study(), CaseStudy::ArrayDataflow);
        assert!(back.is_trained());
        assert_eq!(integrity, Integrity::Verified);
        for m in [4.0f32, 100.0, 5000.0] {
            let row = [10.0, m, 64.0, 64.0];
            assert_eq!(model.predict_row(&row), back.predict_row(&row));
        }
    }

    #[test]
    fn legacy_v1_loads_unverified() {
        let model = small_trained_model();
        let bytes = to_bytes(&model);
        // Strip the footer and patch the version back to 1, reproducing a
        // legacy writer's byte stream.
        let (body, _) = split_crc_footer(&bytes).unwrap();
        let mut v1 = body.to_vec();
        v1[4..8].copy_from_slice(&LEGACY_VERSION.to_le_bytes());
        let (back, integrity) = from_bytes_integrity(&v1).unwrap();
        assert_eq!(integrity, Integrity::UnverifiedLegacy);
        let row = [10.0, 256.0, 64.0, 64.0];
        assert_eq!(model.predict_row(&row), back.predict_row(&row));
    }

    #[test]
    fn rejects_corruption() {
        let model = small_trained_model();
        let mut bytes = to_bytes(&model).to_vec();
        bytes[0] = b'Z';
        assert!(matches!(
            from_bytes(&bytes),
            Err(PersistError::Corrupt("bad magic"))
        ));
        let bytes = to_bytes(&model);
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let model = small_trained_model();
        let mut bytes = to_bytes(&model).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        assert!(matches!(
            from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    /// Only meaningful when the failpoint framework is compiled in
    /// (`cargo test -p airchitect --features chaos`).
    #[cfg(feature = "chaos")]
    mod chaos {
        use super::*;

        /// Serializes the chaos-dependent tests: the failpoint registry is
        /// process-global.
        static CHAOS: std::sync::Mutex<()> = std::sync::Mutex::new(());

        fn saved_model(name: &str) -> std::path::PathBuf {
            let dir = std::env::temp_dir().join("airchitect-core-chaos");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(name);
            save(&small_trained_model(), &path).unwrap();
            path
        }

        #[test]
        fn transient_read_errors_are_retried_to_success() {
            let _guard = CHAOS.lock().unwrap();
            let path = saved_model("transient.airm");
            let fired_before = airchitect_chaos::fired("persist.read");
            // Two injected EINTRs, then the real read goes through.
            airchitect_chaos::configure_str("persist.read=err(interrupted):1:2").unwrap();
            let (_, integrity) = load_integrity(&path).unwrap();
            airchitect_chaos::remove("persist.read");
            assert_eq!(integrity, Integrity::Verified);
            assert_eq!(airchitect_chaos::fired("persist.read") - fired_before, 2);
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn persistent_transient_errors_exhaust_the_retry_budget() {
            let _guard = CHAOS.lock().unwrap();
            let path = saved_model("exhaust.airm");
            airchitect_chaos::configure_str("persist.read=err(wouldblock)").unwrap();
            let err = load_integrity(&path).unwrap_err();
            airchitect_chaos::remove("persist.read");
            assert!(matches!(err, PersistError::Io(_)), "{err}");
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn non_transient_read_errors_fail_fast() {
            let _guard = CHAOS.lock().unwrap();
            let path = saved_model("failfast.airm");
            let fired_before = airchitect_chaos::fired("persist.read");
            airchitect_chaos::configure_str("persist.read=err(other):1:5").unwrap();
            assert!(matches!(
                load_integrity(&path),
                Err(PersistError::Io(_))
            ));
            airchitect_chaos::remove("persist.read");
            assert_eq!(
                airchitect_chaos::fired("persist.read") - fired_before,
                1,
                "a non-transient error must not be retried"
            );
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn injected_write_errors_surface_as_io() {
            let _guard = CHAOS.lock().unwrap();
            airchitect_chaos::configure_str("persist.write=err(other):1:1").unwrap();
            let path = std::env::temp_dir().join("airchitect-core-chaos-w.airm");
            let err = save(&small_trained_model(), &path).unwrap_err();
            airchitect_chaos::remove("persist.write");
            assert!(matches!(err, PersistError::Io(_)), "{err}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("airchitect-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.airm");
        let model = small_trained_model();
        save(&model, &path).unwrap();
        let (back, integrity) = load_integrity(&path).unwrap();
        assert_eq!(integrity, Integrity::Verified);
        let row = [9.0, 300.0, 64.0, 64.0];
        assert_eq!(model.predict_row(&row), back.predict_row(&row));
        std::fs::remove_file(&path).ok();
    }
}
