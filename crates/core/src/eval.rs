//! Misprediction-penalty analysis (paper Fig. 10d-h).
//!
//! Accuracy alone understates the value of the learned optimizer: a
//! "wrong" label whose configuration is only 2% slower than the optimum is
//! a perfectly good recommendation. The paper therefore reports the
//! *normalized performance* of every prediction — optimal cost over
//! predicted-config cost — and summarizes it with the geometric mean
//! (99.9% for CS1, 99.1% for CS3).

use airchitect_data::Dataset;
use airchitect_dse::case1::Case1Problem;
use airchitect_dse::case2::{Case2Problem, Case2Query};
use airchitect_dse::case3::Case3Problem;
use airchitect_nn::metrics;

/// Geometric-mean floor for catastrophic (performance-0) predictions.
const GEOMEAN_FLOOR: f64 = 1e-3;

/// Summary of prediction quality on a labeled test set.
#[derive(Debug, Clone, PartialEq)]
pub struct PenaltyReport {
    /// Normalized performance (optimal / achieved) per test point, in input
    /// order. 1.0 = the prediction was optimal.
    pub performances: Vec<f64>,
    /// Classification accuracy of the predictions.
    pub accuracy: f64,
    /// Geometric mean of the performances (paper's headline metric).
    pub geomean: f64,
    /// Fraction of predictions achieving less than 20% of the optimum
    /// (the paper's "catastrophic" bucket).
    pub catastrophic_fraction: f64,
}

impl PenaltyReport {
    fn from_performances(performances: Vec<f64>, accuracy: f64) -> Self {
        let geomean = metrics::geometric_mean(&performances, GEOMEAN_FLOOR);
        let catastrophic_fraction = metrics::fraction_below(&performances, 0.2);
        Self {
            performances,
            accuracy,
            geomean,
            catastrophic_fraction,
        }
    }

    /// The performances sorted ascending — the curve of paper Fig. 10(g, h).
    ///
    /// NaN performances (a degenerate simulator cost model can produce 0/0)
    /// sort after every finite value instead of panicking.
    pub fn sorted_curve(&self) -> Vec<f64> {
        let mut c = self.performances.clone();
        c.sort_by(|a, b| a.total_cmp(b));
        c
    }
}

/// Penalty analysis for case study 1 predictions.
///
/// # Panics
///
/// Panics if `predictions.len() != test.len()` or `test` is empty.
pub fn case1_penalty(problem: &Case1Problem, test: &Dataset, predictions: &[u32]) -> PenaltyReport {
    assert_eq!(predictions.len(), test.len(), "one prediction per row");
    let performances = (0..test.len())
        .map(|i| {
            let (wl, budget) = Case1Problem::from_features(test.row(i));
            problem.normalized_performance(&wl, budget, predictions[i])
        })
        .collect();
    PenaltyReport::from_performances(performances, metrics::accuracy(predictions, test.labels()))
}

/// Penalty analysis for case study 2 predictions.
///
/// # Panics
///
/// Panics if `predictions.len() != test.len()` or `test` is empty.
pub fn case2_penalty(problem: &Case2Problem, test: &Dataset, predictions: &[u32]) -> PenaltyReport {
    assert_eq!(predictions.len(), test.len(), "one prediction per row");
    let performances = (0..test.len())
        .map(|i| {
            let query = Case2Query::from_features(test.row(i));
            problem.normalized_performance(&query, predictions[i])
        })
        .collect();
    PenaltyReport::from_performances(performances, metrics::accuracy(predictions, test.labels()))
}

/// Penalty analysis for case study 3 predictions.
///
/// # Panics
///
/// Panics if `predictions.len() != test.len()` or `test` is empty.
pub fn case3_penalty(problem: &Case3Problem, test: &Dataset, predictions: &[u32]) -> PenaltyReport {
    assert_eq!(predictions.len(), test.len(), "one prediction per row");
    let performances = (0..test.len())
        .map(|i| {
            let workloads = Case3Problem::from_features(test.row(i));
            problem.normalized_performance(&workloads, predictions[i])
        })
        .collect();
    PenaltyReport::from_performances(performances, metrics::accuracy(predictions, test.labels()))
}

/// One bin of a confidence-calibration (reliability) analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Lower edge of the confidence bin.
    pub lo: f64,
    /// Upper edge of the confidence bin.
    pub hi: f64,
    /// Mean predicted confidence of samples in the bin.
    pub mean_confidence: f64,
    /// Empirical accuracy of samples in the bin.
    pub accuracy: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Reliability analysis of a trained model: bins test samples by the
/// softmax confidence of the top prediction and compares mean confidence
/// to empirical accuracy per bin.
///
/// A recommender whose confidence is *calibrated* lets a designer trust
/// high-confidence recommendations outright and fall back to search (or the
/// top-k list) for low-confidence ones — the practical deployment story for
/// a constant-time optimizer.
///
/// # Panics
///
/// Panics if `bins` is zero or the dataset is empty.
pub fn calibration(
    model: &crate::model::AirchitectModel,
    test: &Dataset,
    bins: usize,
) -> Vec<CalibrationBin> {
    assert!(bins > 0, "need at least one bin");
    assert!(!test.is_empty(), "empty dataset");
    let mut conf_sum = vec![0f64; bins];
    let mut correct = vec![0usize; bins];
    let mut count = vec![0usize; bins];
    for i in 0..test.len() {
        let top = model.predict_topk(test.row(i), 1);
        let (label, p) = top[0];
        let b = ((p as f64 * bins as f64) as usize).min(bins - 1);
        conf_sum[b] += p as f64;
        correct[b] += usize::from(label == test.label(i));
        count[b] += 1;
    }
    (0..bins)
        .map(|b| CalibrationBin {
            lo: b as f64 / bins as f64,
            hi: (b + 1) as f64 / bins as f64,
            mean_confidence: if count[b] > 0 {
                conf_sum[b] / count[b] as f64
            } else {
                0.0
            },
            accuracy: if count[b] > 0 {
                correct[b] as f64 / count[b] as f64
            } else {
                0.0
            },
            count: count[b],
        })
        .collect()
}

/// Expected calibration error (ECE): the count-weighted mean absolute gap
/// between confidence and accuracy across bins.
///
/// # Panics
///
/// Panics if `bins` is empty or holds no samples.
pub fn expected_calibration_error(bins: &[CalibrationBin]) -> f64 {
    let total: usize = bins.iter().map(|b| b.count).sum();
    assert!(total > 0, "no samples in calibration bins");
    bins.iter()
        .map(|b| (b.mean_confidence - b.accuracy).abs() * b.count as f64)
        .sum::<f64>()
        / total as f64
}

/// Actual-vs-predicted label histograms (paper Fig. 10d-f).
///
/// Returns `(actual, predicted)` counts per config ID.
///
/// # Panics
///
/// Panics if a prediction is out of range for the dataset's class count.
pub fn label_distributions(test: &Dataset, predictions: &[u32]) -> (Vec<usize>, Vec<usize>) {
    let k = test.num_classes() as usize;
    let actual = test.label_histogram();
    let mut predicted = vec![0usize; k];
    for &p in predictions {
        assert!((p as usize) < k, "prediction {p} out of range");
        predicted[p as usize] += 1;
    }
    (actual, predicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect_dse::case1::{self, Case1DatasetSpec};

    fn tiny_case1() -> (Case1Problem, Dataset) {
        let problem = Case1Problem::new(1 << 8);
        let ds = case1::generate_dataset(
            &problem,
            &Case1DatasetSpec {
                samples: 40,
                budget_log2_range: (5, 8),
                seed: 4,
            },
        );
        (problem, ds)
    }

    #[test]
    fn perfect_predictions_score_one() {
        let (problem, ds) = tiny_case1();
        let labels: Vec<u32> = ds.labels().to_vec();
        let report = case1_penalty(&problem, &ds, &labels);
        assert!((report.accuracy - 1.0).abs() < 1e-12);
        assert!((report.geomean - 1.0).abs() < 1e-9);
        assert_eq!(report.catastrophic_fraction, 0.0);
        assert!(report.performances.iter().all(|&p| (p - 1.0).abs() < 1e-9));
    }

    #[test]
    fn constant_prediction_scores_below_one() {
        let (problem, ds) = tiny_case1();
        // Predict label 0 (a 2x2 array) everywhere: feasible but usually slow.
        let preds = vec![0u32; ds.len()];
        let report = case1_penalty(&problem, &ds, &preds);
        assert!(report.geomean < 1.0);
        assert!(report.accuracy < 1.0);
        // All performances are valid fractions.
        assert!(report
            .performances
            .iter()
            .all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
    }

    #[test]
    fn sorted_curve_is_ascending() {
        let (problem, ds) = tiny_case1();
        let preds = vec![0u32; ds.len()];
        let curve = case1_penalty(&problem, &ds, &preds).sorted_curve();
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorted_curve_tolerates_nan_performances() {
        let report = PenaltyReport {
            performances: vec![0.7, f64::NAN, 0.2, 1.0],
            accuracy: 0.5,
            geomean: 0.5,
            catastrophic_fraction: 0.0,
        };
        let curve = report.sorted_curve();
        assert_eq!(&curve[..3], &[0.2, 0.7, 1.0]);
        assert!(curve[3].is_nan());
    }

    #[test]
    fn calibration_bins_partition_the_test_set() {
        use crate::model::{AirchitectConfig, AirchitectModel, CaseStudy};
        let (_, ds) = tiny_case1();
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: ds.num_classes(),
                train: airchitect_nn::train::TrainConfig {
                    epochs: 4,
                    batch_size: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).unwrap();
        let bins = calibration(&model, &ds, 10);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), ds.len());
        for b in &bins {
            assert!(b.lo < b.hi);
            if b.count > 0 {
                assert!((b.lo..=b.hi + 1e-9).contains(&b.mean_confidence));
                assert!((0.0..=1.0).contains(&b.accuracy));
            }
        }
        let ece = expected_calibration_error(&bins);
        assert!((0.0..=1.0).contains(&ece));
    }

    #[test]
    fn label_distributions_count_correctly() {
        let (_, ds) = tiny_case1();
        let labels: Vec<u32> = ds.labels().to_vec();
        let (actual, predicted) = label_distributions(&ds, &labels);
        assert_eq!(actual, predicted);
        assert_eq!(actual.iter().sum::<usize>(), ds.len());
    }
}
