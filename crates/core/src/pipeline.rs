//! End-to-end pipelines: dataset generation → 80:10:10 split → training →
//! test-set evaluation, for each case study.
//!
//! These are the flows the figure-regeneration binaries in
//! `airchitect-bench` drive; they are also the highest-level public API for
//! users who want a trained recommender in one call.

use std::path::PathBuf;

use airchitect_data::{split, Dataset};
use airchitect_dse::case1::{self, Case1DatasetSpec, Case1Problem};
use airchitect_dse::case2::{self, Case2DatasetSpec, Case2Problem};
use airchitect_dse::case3::{self, Case3DatasetSpec, Case3Problem};
use airchitect_dse::parallel::{self, ParallelError};
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::{TrainConfig, TrainError};
use airchitect_telemetry::span::Span;

use crate::checkpoint::{self, CheckpointError, RunFingerprint};
use crate::eval::{self, PenaltyReport};
use crate::model::{AirchitectConfig, AirchitectModel, CaseStudy, TrainReport};

/// Shared pipeline knobs.
///
/// Defaults are sized for a single CPU core (see DESIGN.md §3): they
/// reproduce each figure's *shape* at reduced scale. Scale `samples` and
/// `epochs` up on bigger machines to approach the paper's absolute numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Labeled samples to generate (paper: up to 4.5 M).
    pub samples: usize,
    /// Training epochs (paper: 15–22).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for generation, splitting, initialization, and shuffling.
    pub seed: u64,
    /// Use a class-stratified split instead of the paper's plain random
    /// 80:10:10 — reduces evaluation noise on the long-tailed CS2/CS3 label
    /// distributions (off by default for paper fidelity).
    pub stratify: bool,
    /// Kernel threads for training's forward/backward products. Results
    /// are byte-identical for any value (the compute engine's partition is
    /// fixed); this only changes wall-clock time. Must be at least 1.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            samples: 20_000,
            epochs: 15,
            batch_size: 256,
            seed: 0,
            stratify: false,
            threads: 1,
        }
    }
}

impl PipelineConfig {
    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            optimizer: Optimizer::adam(1e-3),
            seed: self.seed,
            lr_decay: 1.0,
            threads: self.threads,
        }
    }
}

/// Fault-tolerance knobs for a checkpointed pipeline run.
///
/// All checkpoint artifacts live under `dir`: the training snapshot
/// (`checkpoint.airc`) at the top level and per-shard dataset-generation
/// files under `dir/generation`. A run killed at any point — even
/// `SIGKILL` mid-write — can be resumed from the same directory and
/// finishes bit-identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Directory for checkpoint artifacts (created if absent).
    pub dir: PathBuf,
    /// Snapshot training state every N completed epochs (the final epoch
    /// is always snapshotted). Must be at least 1.
    pub every_epochs: usize,
    /// Dataset-generation checkpoint granularity: target samples per
    /// persisted shard. Smaller values lose less work on a crash but write
    /// more files. Must be at least 1.
    pub every_samples: usize,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` after every epoch and every ~5000 generated
    /// samples.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_epochs: 1,
            every_samples: 5_000,
        }
    }
}

/// Error from a fault-tolerant pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// A [`CheckpointConfig`] cadence was zero.
    Config(&'static str),
    /// Dataset generation failed (a shard exhausted its retries, or the
    /// checkpoint directory belongs to a different generation spec).
    Generation(ParallelError),
    /// The training checkpoint could not be read, or belongs to a
    /// different run.
    Checkpoint(CheckpointError),
    /// Training diverged (NaN/Inf loss or exploding gradients).
    Diverged {
        /// Epoch (0-based) in which divergence was detected.
        epoch: usize,
        /// Batch index within that epoch.
        batch: usize,
        /// The last good checkpoint to restart from, if one was written.
        last_checkpoint: Option<PathBuf>,
    },
    /// Any other training failure.
    Train(TrainError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Config(what) => write!(f, "bad checkpoint config: {what}"),
            PipelineError::Generation(e) => write!(f, "dataset generation failed: {e}"),
            PipelineError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            PipelineError::Diverged {
                epoch,
                batch,
                last_checkpoint,
            } => {
                write!(f, "training diverged at epoch {epoch}, batch {batch}")?;
                match last_checkpoint {
                    Some(p) => write!(
                        f,
                        "; restart with a gentler schedule from the last good checkpoint at {}",
                        p.display()
                    ),
                    None => write!(f, "; no checkpoint had been written yet"),
                }
            }
            PipelineError::Train(e) => write!(f, "training failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParallelError> for PipelineError {
    fn from(e: ParallelError) -> Self {
        PipelineError::Generation(e)
    }
}

impl From<CheckpointError> for PipelineError {
    fn from(e: CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct CaseStudyRun {
    /// Which case study ran.
    pub case: CaseStudy,
    /// The trained model.
    pub model: AirchitectModel,
    /// Training curves (paper Fig. 10a-c).
    pub report: TrainReport,
    /// Accuracy on the held-out test split.
    pub test_accuracy: f64,
    /// Misprediction-penalty analysis on the test split (paper Fig. 10g-h).
    pub penalty: PenaltyReport,
    /// Actual-vs-predicted label histograms on the test split
    /// (paper Fig. 10d-f).
    pub label_distributions: (Vec<usize>, Vec<usize>),
    /// The held-out test split (raw features), for further analysis.
    pub test_set: Dataset,
}

fn run_common(
    case: CaseStudy,
    dataset: Dataset,
    num_classes: u32,
    config: &PipelineConfig,
    penalty: impl FnOnce(&Dataset, &[u32]) -> PenaltyReport,
) -> CaseStudyRun {
    let split = if config.stratify {
        split::stratified(&dataset, 0.8, 0.1, 0.1, config.seed)
            .expect("80:10:10 fractions are valid")
    } else {
        split::paper_split(&dataset, config.seed).expect("80:10:10 fractions are valid")
    };
    let mut model = AirchitectModel::new(
        case,
        &AirchitectConfig {
            num_classes,
            train: config.train_config(),
            seed: config.seed,
            ..Default::default()
        },
    );
    let report = {
        let mut span = Span::enter("pipeline.train");
        span.field_u64("train_rows", split.train.len() as u64);
        model
            .train_with_validation(&split.train, Some(&split.validation))
            .expect("generated datasets are valid")
    };
    finish_run(case, model, report, split.test, penalty)
}

/// Evaluates a trained model on the test split and assembles the run record.
fn finish_run(
    case: CaseStudy,
    model: AirchitectModel,
    report: TrainReport,
    test: Dataset,
    penalty: impl FnOnce(&Dataset, &[u32]) -> PenaltyReport,
) -> CaseStudyRun {
    let mut span = Span::enter("pipeline.eval");
    span.field_u64("test_rows", test.len() as u64);
    let predictions = model.predict(&test);
    let test_accuracy = airchitect_nn::metrics::accuracy(&predictions, test.labels());
    let penalty = penalty(&test, &predictions);
    let label_distributions = eval::label_distributions(&test, &predictions);
    span.field_f64("test_accuracy", test_accuracy);
    drop(span);
    CaseStudyRun {
        case,
        model,
        report,
        test_accuracy,
        penalty,
        label_distributions,
        test_set: test,
    }
}

/// Runs the full case-study-1 pipeline for a given maximum MAC budget.
///
/// `budget_log2_range` is the range of budgets sampled into the dataset;
/// the output space is enumerated at its upper end.
pub fn run_case1(config: &PipelineConfig, budget_log2_range: (u32, u32)) -> CaseStudyRun {
    let problem = Case1Problem::new(1u64 << budget_log2_range.1);
    let dataset = {
        let mut span = Span::enter("pipeline.datagen");
        span.field_u64("samples", config.samples as u64);
        span.field_str("case", "cs1");
        case1::generate_dataset(
            &problem,
            &Case1DatasetSpec {
                samples: config.samples,
                budget_log2_range,
                seed: config.seed,
            },
        )
    };
    let classes = problem.space().len() as u32;
    run_common(
        CaseStudy::ArrayDataflow,
        dataset,
        classes,
        config,
        |test, preds| eval::case1_penalty(&problem, test, preds),
    )
}

/// Runs the case-study-1 pipeline with crash-safe checkpointing.
///
/// Dataset generation persists every completed shard under
/// `ckpt.dir/generation`, and training snapshots the model + optimizer
/// state into `ckpt.dir/checkpoint.airc` every
/// [`CheckpointConfig::every_epochs`] epochs. With `resume` set, an
/// existing matching checkpoint is picked up and the run finishes
/// bit-identical to an uninterrupted one; without it (or when no
/// checkpoint exists yet) training starts fresh, though intact generation
/// shards are still reused.
///
/// Generation runs on one worker thread per shard
/// (`samples / every_samples` shards), so the dataset differs from
/// [`run_case1`]'s sequential stream for the same seed — pick one entry
/// point per experiment.
///
/// # Errors
///
/// [`PipelineError::Generation`] when a shard fails every retry or the
/// directory was checkpointed with a different spec,
/// [`PipelineError::Checkpoint`] when `resume` finds a damaged or
/// mismatched training checkpoint, and [`PipelineError::Diverged`] — with
/// the last good checkpoint path — when training blows up.
pub fn run_case1_checkpointed(
    config: &PipelineConfig,
    budget_log2_range: (u32, u32),
    ckpt: &CheckpointConfig,
    resume: bool,
) -> Result<CaseStudyRun, PipelineError> {
    run_case1_checkpointed_impl(config, budget_log2_range, ckpt, resume, None, None)
}

/// The body of [`run_case1_checkpointed`], with test hooks: an optional
/// simulated crash after N epochs and an optimizer override.
fn run_case1_checkpointed_impl(
    config: &PipelineConfig,
    budget_log2_range: (u32, u32),
    ckpt: &CheckpointConfig,
    resume: bool,
    interrupt_after: Option<usize>,
    optimizer_override: Option<Optimizer>,
) -> Result<CaseStudyRun, PipelineError> {
    if ckpt.every_epochs == 0 {
        return Err(PipelineError::Config("every_epochs must be at least 1"));
    }
    if ckpt.every_samples == 0 {
        return Err(PipelineError::Config("every_samples must be at least 1"));
    }

    let problem = Case1Problem::new(1u64 << budget_log2_range.1);
    let spec = Case1DatasetSpec {
        samples: config.samples,
        budget_log2_range,
        seed: config.seed,
    };
    let shards = config.samples.div_ceil(ckpt.every_samples).max(1);
    let generated = {
        let mut span = Span::enter("pipeline.datagen");
        span.field_u64("samples", config.samples as u64);
        span.field_u64("shards", shards as u64);
        span.field_str("case", "cs1");
        parallel::generate_case1_checkpointed(&problem, &spec, shards, ckpt.dir.join("generation"))?
    };
    let classes = problem.space().len() as u32;

    let split = if config.stratify {
        split::stratified(&generated.dataset, 0.8, 0.1, 0.1, config.seed)
            .expect("80:10:10 fractions are valid")
    } else {
        split::paper_split(&generated.dataset, config.seed).expect("80:10:10 fractions are valid")
    };

    let mut tc = config.train_config();
    if let Some(opt) = optimizer_override {
        tc.optimizer = opt;
    }
    let fresh = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: classes,
            train: tc,
            seed: config.seed,
            ..Default::default()
        },
    );
    let (model, report) = train_checkpointed_impl(
        fresh,
        &split.train,
        Some(&split.validation),
        ckpt,
        resume,
        interrupt_after,
    )?;

    Ok(finish_run(
        CaseStudy::ArrayDataflow,
        model,
        report,
        split.test,
        |test, preds| eval::case1_penalty(&problem, test, preds),
    ))
}

/// Trains a model with crash-safe checkpointing into `ckpt.dir`.
///
/// The schedule comes from the fresh model's `config().train`. The model +
/// optimizer state is snapshotted atomically every
/// [`CheckpointConfig::every_epochs`] completed epochs (and always after
/// the final one). With `resume`, a checkpoint matching this exact
/// `(schedule, dataset)` is picked up, the remaining epochs run, and the
/// final model is bit-identical to an uninterrupted run; a missing
/// checkpoint file silently falls back to a fresh start, which is what
/// lets "rerun the same command after a crash" work unconditionally.
/// Damaged or mismatched checkpoints are NOT silently discarded —
/// retraining is expensive, so they are surfaced as errors.
///
/// Returns the trained model and the report covering the epochs that
/// actually ran.
///
/// # Errors
///
/// [`PipelineError::Checkpoint`] for unreadable/foreign checkpoints or a
/// failed snapshot write, [`PipelineError::Diverged`] (with the last good
/// checkpoint path) when training blows up, and [`PipelineError::Train`]
/// for other trainer failures.
pub fn train_checkpointed(
    fresh: AirchitectModel,
    train: &Dataset,
    validation: Option<&Dataset>,
    ckpt: &CheckpointConfig,
    resume: bool,
) -> Result<(AirchitectModel, TrainReport), PipelineError> {
    train_checkpointed_impl(fresh, train, validation, ckpt, resume, None)
}

/// Body of [`train_checkpointed`], with a test hook simulating a crash
/// after N completed epochs.
fn train_checkpointed_impl(
    fresh: AirchitectModel,
    train: &Dataset,
    validation: Option<&Dataset>,
    ckpt: &CheckpointConfig,
    resume: bool,
    interrupt_after: Option<usize>,
) -> Result<(AirchitectModel, TrainReport), PipelineError> {
    if ckpt.every_epochs == 0 {
        return Err(PipelineError::Config("every_epochs must be at least 1"));
    }
    let tc = fresh.config().train;
    let fingerprint = RunFingerprint::new(&tc, train);
    let case = fresh.case_study();

    let (mut model, resume_point) = if resume {
        match checkpoint::load(&ckpt.dir, Some(&fingerprint)) {
            Ok(c) => {
                let rp = c.resume_point();
                let mut m = c.model;
                m.set_train_config(tc);
                (m, Some(rp))
            }
            Err(CheckpointError::Io(_)) => (fresh, None),
            Err(e) => return Err(e.into()),
        }
    } else {
        (fresh, None)
    };

    let quantizer = model.quantizer().clone();
    let mut last_checkpoint = resume_point
        .as_ref()
        .map(|_| checkpoint::checkpoint_path(&ckpt.dir));
    let mut save_failure: Option<CheckpointError> = None;
    let mut train_span = Span::enter("pipeline.train");
    train_span.field_u64("train_rows", train.len() as u64);
    if resume_point.is_some() {
        train_span.field_str("resumed", "yes");
    }
    let result = model.train_resumable(train, validation, resume_point, |c| {
        let done = c.epoch + 1;
        if done % ckpt.every_epochs == 0 || done == tc.epochs {
            let snapshot =
                AirchitectModel::from_parts(case, quantizer.clone(), c.network.clone(), true);
            match checkpoint::save(&ckpt.dir, &snapshot, c.optimizer, done as u32, &fingerprint) {
                Ok(path) => last_checkpoint = Some(path),
                Err(e) => {
                    let msg = e.to_string();
                    save_failure = Some(e);
                    return Err(msg);
                }
            }
        }
        if interrupt_after == Some(done) {
            return Err("interrupted by test hook".to_string());
        }
        Ok(())
    });
    drop(train_span);
    match result {
        Ok(report) => Ok((model, report)),
        Err(TrainError::Diverged { epoch, batch }) => Err(PipelineError::Diverged {
            epoch,
            batch,
            last_checkpoint,
        }),
        Err(e) => Err(match save_failure {
            Some(ce) => PipelineError::Checkpoint(ce),
            None => PipelineError::Train(e),
        }),
    }
}

/// Runs the full case-study-2 pipeline.
pub fn run_case2(config: &PipelineConfig) -> CaseStudyRun {
    let problem = Case2Problem::new();
    let dataset = {
        let mut span = Span::enter("pipeline.datagen");
        span.field_u64("samples", config.samples as u64);
        span.field_str("case", "cs2");
        case2::generate_dataset(
            &problem,
            &Case2DatasetSpec {
                samples: config.samples,
                seed: config.seed,
                ..Default::default()
            },
        )
    };
    run_common(
        CaseStudy::BufferSizing,
        dataset,
        problem.space().len() as u32,
        config,
        |test, preds| eval::case2_penalty(&problem, test, preds),
    )
}

/// Runs the full case-study-3 pipeline.
pub fn run_case3(config: &PipelineConfig) -> CaseStudyRun {
    let problem = Case3Problem::new();
    let dataset = {
        let mut span = Span::enter("pipeline.datagen");
        span.field_u64("samples", config.samples as u64);
        span.field_str("case", "cs3");
        case3::generate_dataset(
            &problem,
            &Case3DatasetSpec {
                samples: config.samples,
                seed: config.seed,
            },
        )
    };
    run_common(
        CaseStudy::MultiArrayScheduling,
        dataset,
        problem.space().len() as u32,
        config,
        |test, preds| eval::case3_penalty(&problem, test, preds),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PipelineConfig {
        PipelineConfig {
            samples: 600,
            epochs: 6,
            batch_size: 64,
            seed: 7,
            stratify: false,
            threads: 1,
        }
    }

    #[test]
    fn case1_pipeline_end_to_end() {
        let run = run_case1(&quick(), (5, 9));
        assert_eq!(run.case, CaseStudy::ArrayDataflow);
        assert!(run.model.is_trained());
        assert_eq!(run.report.history.epochs.len(), 6);
        // 10% test split of 600.
        assert_eq!(run.test_set.len(), 60);
        assert_eq!(run.penalty.performances.len(), 60);
        // Even a barely-trained model beats random (1/space) by a lot, and
        // its penalty geomean must be a valid fraction.
        assert!(run.penalty.geomean > 0.0 && run.penalty.geomean <= 1.0 + 1e-9);
        let (actual, predicted) = &run.label_distributions;
        assert_eq!(actual.iter().sum::<usize>(), 60);
        assert_eq!(predicted.iter().sum::<usize>(), 60);
    }

    #[test]
    fn case2_pipeline_end_to_end() {
        let run = run_case2(&quick());
        assert_eq!(run.case, CaseStudy::BufferSizing);
        assert_eq!(run.test_set.feature_dim(), 8);
        assert!(run.test_accuracy >= 0.0);
        assert!(run.penalty.geomean > 0.0);
    }

    #[test]
    fn case3_pipeline_end_to_end() {
        let cfg = PipelineConfig {
            samples: 200,
            epochs: 4,
            ..quick()
        };
        let run = run_case3(&cfg);
        assert_eq!(run.case, CaseStudy::MultiArrayScheduling);
        assert_eq!(run.test_set.feature_dim(), 12);
        assert!(run.penalty.geomean > 0.0);
    }

    #[test]
    fn pipelines_are_reproducible() {
        let a = run_case1(&quick(), (5, 8));
        let b = run_case1(&quick(), (5, 8));
        assert_eq!(a.test_accuracy, b.test_accuracy);
        assert_eq!(a.penalty.performances, b.penalty.performances);
    }

    fn temp_ckpt(tag: &str) -> CheckpointConfig {
        let dir =
            std::env::temp_dir().join(format!("airchitect-pipe-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointConfig {
            every_epochs: 2,
            every_samples: 200,
            ..CheckpointConfig::new(dir)
        }
    }

    #[test]
    fn checkpointed_run_completes_and_writes_artifacts() {
        let ckpt = temp_ckpt("basic");
        let run = run_case1_checkpointed(&quick(), (5, 8), &ckpt, false).unwrap();
        assert!(run.model.is_trained());
        assert_eq!(run.report.history.epochs.len(), 6);
        assert!(checkpoint::checkpoint_path(&ckpt.dir).exists());
        assert!(ckpt.dir.join("generation").join("manifest.txt").exists());
        // 600 samples at 200/shard.
        assert!(ckpt.dir.join("generation").join("shard-0002.aids").exists());
        std::fs::remove_dir_all(&ckpt.dir).ok();
    }

    #[test]
    fn resume_after_simulated_crash_is_bit_identical() {
        let cfg = quick();
        let reference = temp_ckpt("ref");
        let interrupted = temp_ckpt("crash");

        let full =
            run_case1_checkpointed_impl(&cfg, (5, 8), &reference, false, None, None).unwrap();

        // Crash right after the epoch-4 snapshot (every_epochs = 2).
        let err = run_case1_checkpointed_impl(&cfg, (5, 8), &interrupted, false, Some(4), None)
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Train(TrainError::Checkpoint(_))
        ));

        let resumed =
            run_case1_checkpointed_impl(&cfg, (5, 8), &interrupted, true, None, None).unwrap();
        // Only the remaining epochs ran...
        assert_eq!(resumed.report.history.epochs.len(), 2);
        // ...and the result is bit-identical to the uninterrupted run.
        assert_eq!(
            crate::persist::to_bytes(&resumed.model),
            crate::persist::to_bytes(&full.model)
        );
        assert_eq!(resumed.test_accuracy, full.test_accuracy);
        assert_eq!(resumed.penalty.performances, full.penalty.performances);

        std::fs::remove_dir_all(&reference.dir).ok();
        std::fs::remove_dir_all(&interrupted.dir).ok();
    }

    #[test]
    fn resume_with_different_schedule_is_rejected() {
        let ckpt = temp_ckpt("sched");
        run_case1_checkpointed(&quick(), (5, 8), &ckpt, false).unwrap();
        let longer = PipelineConfig {
            epochs: 9,
            ..quick()
        };
        let err = run_case1_checkpointed(&longer, (5, 8), &ckpt, true).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Checkpoint(crate::checkpoint::CheckpointError::Mismatch(
                "epoch schedule"
            ))
        ));
        std::fs::remove_dir_all(&ckpt.dir).ok();
    }

    #[test]
    fn divergence_is_surfaced_with_checkpoint_context() {
        let ckpt = temp_ckpt("diverge");
        let err = run_case1_checkpointed_impl(
            &quick(),
            (5, 8),
            &ckpt,
            false,
            None,
            Some(Optimizer::sgd(1e30)),
        )
        .unwrap_err();
        match err {
            PipelineError::Diverged {
                epoch,
                last_checkpoint,
                ..
            } => {
                assert_eq!(epoch, 0, "sgd(1e30) must blow up immediately");
                assert!(last_checkpoint.is_none(), "no snapshot had been written");
                let msg = PipelineError::Diverged {
                    epoch,
                    batch: 1,
                    last_checkpoint: Some(ckpt.dir.join("checkpoint.airc")),
                }
                .to_string();
                assert!(msg.contains("diverged") && msg.contains("checkpoint.airc"));
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
        std::fs::remove_dir_all(&ckpt.dir).ok();
    }

    #[test]
    fn zero_cadence_is_a_config_error() {
        let mut ckpt = temp_ckpt("zero");
        ckpt.every_epochs = 0;
        assert!(matches!(
            run_case1_checkpointed(&quick(), (5, 8), &ckpt, false).unwrap_err(),
            PipelineError::Config(_)
        ));
        ckpt.every_epochs = 2;
        ckpt.every_samples = 0;
        assert!(matches!(
            run_case1_checkpointed(&quick(), (5, 8), &ckpt, false).unwrap_err(),
            PipelineError::Config(_)
        ));
    }
}
