//! End-to-end pipelines: dataset generation → 80:10:10 split → training →
//! test-set evaluation, for each case study.
//!
//! These are the flows the figure-regeneration binaries in
//! `airchitect-bench` drive; they are also the highest-level public API for
//! users who want a trained recommender in one call.

use airchitect_data::{split, Dataset};
use airchitect_dse::case1::{self, Case1DatasetSpec, Case1Problem};
use airchitect_dse::case2::{self, Case2DatasetSpec, Case2Problem};
use airchitect_dse::case3::{self, Case3DatasetSpec, Case3Problem};
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::TrainConfig;

use crate::eval::{self, PenaltyReport};
use crate::model::{AirchitectConfig, AirchitectModel, CaseStudy, TrainReport};

/// Shared pipeline knobs.
///
/// Defaults are sized for a single CPU core (see DESIGN.md §3): they
/// reproduce each figure's *shape* at reduced scale. Scale `samples` and
/// `epochs` up on bigger machines to approach the paper's absolute numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Labeled samples to generate (paper: up to 4.5 M).
    pub samples: usize,
    /// Training epochs (paper: 15–22).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for generation, splitting, initialization, and shuffling.
    pub seed: u64,
    /// Use a class-stratified split instead of the paper's plain random
    /// 80:10:10 — reduces evaluation noise on the long-tailed CS2/CS3 label
    /// distributions (off by default for paper fidelity).
    pub stratify: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            samples: 20_000,
            epochs: 15,
            batch_size: 256,
            seed: 0,
            stratify: false,
        }
    }
}

impl PipelineConfig {
    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            optimizer: Optimizer::adam(1e-3),
            seed: self.seed,
            lr_decay: 1.0,
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct CaseStudyRun {
    /// Which case study ran.
    pub case: CaseStudy,
    /// The trained model.
    pub model: AirchitectModel,
    /// Training curves (paper Fig. 10a-c).
    pub report: TrainReport,
    /// Accuracy on the held-out test split.
    pub test_accuracy: f64,
    /// Misprediction-penalty analysis on the test split (paper Fig. 10g-h).
    pub penalty: PenaltyReport,
    /// Actual-vs-predicted label histograms on the test split
    /// (paper Fig. 10d-f).
    pub label_distributions: (Vec<usize>, Vec<usize>),
    /// The held-out test split (raw features), for further analysis.
    pub test_set: Dataset,
}

fn run_common(
    case: CaseStudy,
    dataset: Dataset,
    num_classes: u32,
    config: &PipelineConfig,
    penalty: impl FnOnce(&Dataset, &[u32]) -> PenaltyReport,
) -> CaseStudyRun {
    let split = if config.stratify {
        split::stratified(&dataset, 0.8, 0.1, 0.1, config.seed)
            .expect("80:10:10 fractions are valid")
    } else {
        split::paper_split(&dataset, config.seed).expect("80:10:10 fractions are valid")
    };
    let mut model = AirchitectModel::new(
        case,
        &AirchitectConfig {
            num_classes,
            train: config.train_config(),
            seed: config.seed,
            ..Default::default()
        },
    );
    let report = model
        .train_with_validation(&split.train, Some(&split.validation))
        .expect("generated datasets are valid");
    let predictions = model.predict(&split.test);
    let test_accuracy =
        airchitect_nn::metrics::accuracy(&predictions, split.test.labels());
    let penalty = penalty(&split.test, &predictions);
    let label_distributions = eval::label_distributions(&split.test, &predictions);
    CaseStudyRun {
        case,
        model,
        report,
        test_accuracy,
        penalty,
        label_distributions,
        test_set: split.test,
    }
}

/// Runs the full case-study-1 pipeline for a given maximum MAC budget.
///
/// `budget_log2_range` is the range of budgets sampled into the dataset;
/// the output space is enumerated at its upper end.
pub fn run_case1(config: &PipelineConfig, budget_log2_range: (u32, u32)) -> CaseStudyRun {
    let problem = Case1Problem::new(1u64 << budget_log2_range.1);
    let dataset = case1::generate_dataset(
        &problem,
        &Case1DatasetSpec {
            samples: config.samples,
            budget_log2_range,
            seed: config.seed,
        },
    );
    let classes = problem.space().len() as u32;
    run_common(
        CaseStudy::ArrayDataflow,
        dataset,
        classes,
        config,
        |test, preds| eval::case1_penalty(&problem, test, preds),
    )
}

/// Runs the full case-study-2 pipeline.
pub fn run_case2(config: &PipelineConfig) -> CaseStudyRun {
    let problem = Case2Problem::new();
    let dataset = case2::generate_dataset(
        &problem,
        &Case2DatasetSpec {
            samples: config.samples,
            seed: config.seed,
            ..Default::default()
        },
    );
    run_common(
        CaseStudy::BufferSizing,
        dataset,
        problem.space().len() as u32,
        config,
        |test, preds| eval::case2_penalty(&problem, test, preds),
    )
}

/// Runs the full case-study-3 pipeline.
pub fn run_case3(config: &PipelineConfig) -> CaseStudyRun {
    let problem = Case3Problem::new();
    let dataset = case3::generate_dataset(
        &problem,
        &Case3DatasetSpec {
            samples: config.samples,
            seed: config.seed,
        },
    );
    run_common(
        CaseStudy::MultiArrayScheduling,
        dataset,
        problem.space().len() as u32,
        config,
        |test, preds| eval::case3_penalty(&problem, test, preds),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PipelineConfig {
        PipelineConfig {
            samples: 600,
            epochs: 6,
            batch_size: 64,
            seed: 7,
            stratify: false,
        }
    }

    #[test]
    fn case1_pipeline_end_to_end() {
        let run = run_case1(&quick(), (5, 9));
        assert_eq!(run.case, CaseStudy::ArrayDataflow);
        assert!(run.model.is_trained());
        assert_eq!(run.report.history.epochs.len(), 6);
        // 10% test split of 600.
        assert_eq!(run.test_set.len(), 60);
        assert_eq!(run.penalty.performances.len(), 60);
        // Even a barely-trained model beats random (1/space) by a lot, and
        // its penalty geomean must be a valid fraction.
        assert!(run.penalty.geomean > 0.0 && run.penalty.geomean <= 1.0 + 1e-9);
        let (actual, predicted) = &run.label_distributions;
        assert_eq!(actual.iter().sum::<usize>(), 60);
        assert_eq!(predicted.iter().sum::<usize>(), 60);
    }

    #[test]
    fn case2_pipeline_end_to_end() {
        let run = run_case2(&quick());
        assert_eq!(run.case, CaseStudy::BufferSizing);
        assert_eq!(run.test_set.feature_dim(), 8);
        assert!(run.test_accuracy >= 0.0);
        assert!(run.penalty.geomean > 0.0);
    }

    #[test]
    fn case3_pipeline_end_to_end() {
        let cfg = PipelineConfig {
            samples: 200,
            epochs: 4,
            ..quick()
        };
        let run = run_case3(&cfg);
        assert_eq!(run.case, CaseStudy::MultiArrayScheduling);
        assert_eq!(run.test_set.feature_dim(), 12);
        assert!(run.penalty.geomean > 0.0);
    }

    #[test]
    fn pipelines_are_reproducible() {
        let a = run_case1(&quick(), (5, 8));
        let b = run_case1(&quick(), (5, 8));
        assert_eq!(a.test_accuracy, b.test_accuracy);
        assert_eq!(a.penalty.performances, b.penalty.performances);
    }
}
