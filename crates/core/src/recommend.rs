//! The typed constant-time recommendation API (paper Fig. 1b, "Step 1'").
//!
//! A [`Recommender`] wraps a trained [`AirchitectModel`] together with the
//! output-space codec of its case study, so callers get domain types
//! (`ArrayConfig`, `Dataflow`, buffer sizes, `Schedule`) instead of raw
//! config IDs.

use std::cell::RefCell;

use airchitect_dse::case1::Case1Problem;
use airchitect_dse::case2::{Case2Problem, Case2Query};
use airchitect_dse::case3::Case3Problem;
use airchitect_nn::quant::{QuantArena, QuantizedNetwork};
use airchitect_sim::multi::Schedule;
use airchitect_sim::{ArrayConfig, Dataflow};
use airchitect_workload::GemmWorkload;

use crate::model::{AirchitectModel, CaseStudy};

thread_local! {
    /// Per-worker scratch arena for the quantized hot path. Thread-local
    /// so concurrent serve workers never contend, and reused across
    /// queries so the steady state allocates nothing.
    static ARENA: RefCell<QuantArena> = RefCell::new(QuantArena::new());
}

/// How many ranked candidates the fast paths probe with the cheap linear
/// top-K selection before falling back to a full sort of the logits. The
/// feasibility filter almost always accepts within the first few ranks,
/// so the full sort — several times the cost of the inference itself on
/// CS1 — stays off the common path.
const FAST_RANK_PROBE: usize = 8;

/// Error produced by a recommendation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecommendError {
    /// The wrapped model targets a different case study.
    WrongCaseStudy {
        /// The case study the model was trained for.
        model: CaseStudy,
        /// The case study the query requires.
        query: CaseStudy,
    },
    /// The model has not been trained.
    Untrained,
    /// The model emitted a label outside the output space (can happen when
    /// the configured class count exceeds the space size).
    LabelOutOfSpace {
        /// The offending label.
        label: u32,
    },
    /// No configuration in the output space fits the requested budget —
    /// MAC units for CS1 (budgets below 4 MACs admit no array shape), total
    /// buffer KB for CS2 (limits below 300 KB admit no split).
    NoFeasibleConfig {
        /// The budget that admitted nothing (MACs for CS1, KB for CS2).
        budget: u64,
    },
}

impl std::fmt::Display for RecommendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecommendError::WrongCaseStudy { model, query } => write!(
                f,
                "model trained for {} cannot answer {} queries",
                model.name(),
                query.name()
            ),
            RecommendError::Untrained => write!(f, "model has not been trained"),
            RecommendError::LabelOutOfSpace { label } => {
                write!(f, "predicted label {label} is outside the output space")
            }
            RecommendError::NoFeasibleConfig { budget } => {
                write!(f, "no in-space configuration fits a budget of {budget}")
            }
        }
    }
}

impl std::error::Error for RecommendError {}

/// A trained model plus its output-space codec.
#[derive(Debug, Clone)]
pub struct Recommender {
    model: AirchitectModel,
    /// Int8 compilation of `model`'s network, when its architecture
    /// supports the fused hot path. `None` falls back to the f32 path.
    quant: Option<QuantizedNetwork>,
}

impl Recommender {
    /// Wraps a trained model. The network is also compiled to the int8
    /// hot path when its architecture supports it (the `recommend_*_fast`
    /// variants fall back to the f32 path otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError::Untrained`] if the model has not been
    /// trained.
    pub fn new(model: AirchitectModel) -> Result<Self, RecommendError> {
        if !model.is_trained() {
            return Err(RecommendError::Untrained);
        }
        let quant = QuantizedNetwork::from_network(model.network()).ok();
        Ok(Self { model, quant })
    }

    /// The wrapped model.
    pub fn model(&self) -> &AirchitectModel {
        &self.model
    }

    /// The int8 compilation of the model, when available.
    pub fn quantized(&self) -> Option<&QuantizedNetwork> {
        self.quant.as_ref()
    }

    /// Runs one quantized inference over the thread-local arena and hands
    /// the logits-bearing arena to `f`. Telemetry mirrors the f32 path.
    fn infer_quant<R>(
        &self,
        quant: &QuantizedNetwork,
        features: &[f32],
        f: impl FnOnce(&mut QuantArena) -> R,
    ) -> R {
        let _t = airchitect_telemetry::metrics::INFER_QUERY_US.start_timer();
        airchitect_telemetry::metrics::INFER_QUERIES.inc();
        let mut bins = [0u8; 16];
        let n = features.len();
        self.model.quantizer().bin_row_into(features, &mut bins[..n]);
        ARENA.with(|a| {
            let mut arena = a.borrow_mut();
            quant.infer(&bins[..n], &mut arena);
            f(&mut arena)
        })
    }

    /// The quantized network's raw top-1 label for a feature row, or
    /// `None` when the model could not be compiled to the int8 path.
    ///
    /// Diagnostic companion to [`AirchitectModel::predict_row`]: comparing
    /// the two over a held-out set measures how often int8 quantization
    /// flips the top pick (the `bench --suite infer` agreement gate).
    pub fn quantized_top1(&self, features: &[f32]) -> Option<u32> {
        let quant = self.quant.as_ref()?;
        Some(self.infer_quant(quant, features, |arena| arena.top1()))
    }

    fn check_case(&self, query: CaseStudy) -> Result<(), RecommendError> {
        if self.model.case_study() != query {
            return Err(RecommendError::WrongCaseStudy {
                model: self.model.case_study(),
                query,
            });
        }
        Ok(())
    }

    /// CS1: recommends an array shape and dataflow for a workload under a
    /// MAC budget — one inference, no search.
    ///
    /// The budget is a hard constraint, not a hint: the model's logits are
    /// unconstrained, so the classes are ranked and the most likely
    /// *feasible* configuration (`macs() <= mac_budget`) is returned.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError`] for case-study mismatches or when no
    /// in-space configuration fits the budget.
    pub fn recommend_array(
        &self,
        problem: &Case1Problem,
        workload: &GemmWorkload,
        mac_budget: u64,
    ) -> Result<(ArrayConfig, Dataflow), RecommendError> {
        self.check_case(CaseStudy::ArrayDataflow)?;
        let ranked = self.model.predict_topk(
            &Case1Problem::features(workload, mac_budget),
            self.model.config().num_classes as usize,
        );
        for (label, _) in ranked {
            if let Some((array, df)) = problem.space().decode(label) {
                if array.macs() <= mac_budget {
                    return Ok((array, df));
                }
            }
        }
        Err(RecommendError::NoFeasibleConfig { budget: mac_budget })
    }

    /// CS1: a ranked list of the `k` most likely (array, dataflow)
    /// recommendations with their softmax confidence — useful when the top
    /// pick is inconvenient (e.g. floorplan constraints).
    ///
    /// Labels outside the output space (possible when the model's class
    /// count exceeds the space) are skipped, so fewer than `k` entries may
    /// return.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError::WrongCaseStudy`] for non-CS1 models.
    pub fn recommend_array_topk(
        &self,
        problem: &Case1Problem,
        workload: &GemmWorkload,
        mac_budget: u64,
        k: usize,
    ) -> Result<Vec<(ArrayConfig, Dataflow, f32)>, RecommendError> {
        self.check_case(CaseStudy::ArrayDataflow)?;
        let ranked = self
            .model
            .predict_topk(&Case1Problem::features(workload, mac_budget), k);
        Ok(ranked
            .into_iter()
            .filter_map(|(label, p)| problem.space().decode(label).map(|(a, df)| (a, df, p)))
            .collect())
    }

    /// CS2: recommends `(ifmap_kb, filter_kb, ofmap_kb)` buffer sizes.
    ///
    /// The query's capacity limit is a hard constraint, exactly like the MAC
    /// budget in [`Recommender::recommend_array`]: classes are ranked and the
    /// most likely split whose total fits `limit_kb` is returned, rather
    /// than trusting the raw top-1 label to be feasible.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError`] for case-study mismatches or when no
    /// in-space split fits the capacity limit.
    pub fn recommend_buffers(
        &self,
        problem: &Case2Problem,
        query: &Case2Query,
    ) -> Result<(u64, u64, u64), RecommendError> {
        self.check_case(CaseStudy::BufferSizing)?;
        let ranked = self.model.predict_topk(
            &query.features(),
            self.model.config().num_classes as usize,
        );
        for (label, _) in ranked {
            if let Some((i, f, o)) = problem.space().decode(label) {
                if i + f + o <= query.limit_kb {
                    return Ok((i, f, o));
                }
            }
        }
        Err(RecommendError::NoFeasibleConfig {
            budget: query.limit_kb,
        })
    }

    /// CS2: a ranked list of the `k` most likely buffer splits with their
    /// softmax confidence, mirroring [`Recommender::recommend_array_topk`].
    ///
    /// Like the CS1 top-k, entries are *not* filtered by the capacity limit
    /// (the caller sees the model's honest ranking); labels outside the
    /// output space are skipped, so fewer than `k` entries may return.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError::WrongCaseStudy`] for non-CS2 models.
    pub fn recommend_buffers_topk(
        &self,
        problem: &Case2Problem,
        query: &Case2Query,
        k: usize,
    ) -> Result<Vec<(u64, u64, u64, f32)>, RecommendError> {
        self.check_case(CaseStudy::BufferSizing)?;
        let ranked = self.model.predict_topk(&query.features(), k);
        Ok(ranked
            .into_iter()
            .filter_map(|(label, p)| {
                problem.space().decode(label).map(|(i, f, o)| (i, f, o, p))
            })
            .collect())
    }

    /// CS3: recommends a schedule (workload-to-array mapping plus per-array
    /// dataflows) for four concurrent workloads.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError`] for case-study mismatches or out-of-space
    /// predictions.
    pub fn recommend_schedule(
        &self,
        problem: &Case3Problem,
        workloads: &[GemmWorkload],
    ) -> Result<Schedule, RecommendError> {
        self.check_case(CaseStudy::MultiArrayScheduling)?;
        let label = self.model.predict_row(&Case3Problem::features(workloads));
        let (perm, dfs) = problem
            .space()
            .decode(label)
            .ok_or(RecommendError::LabelOutOfSpace { label })?;
        Ok(Schedule::new(&perm, &dfs))
    }

    /// CS3: a ranked list of the `k` most likely schedules with their
    /// softmax confidence, mirroring [`Recommender::recommend_array_topk`].
    ///
    /// Labels outside the output space are skipped, so fewer than `k`
    /// entries may return.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError::WrongCaseStudy`] for non-CS3 models.
    pub fn recommend_schedule_topk(
        &self,
        problem: &Case3Problem,
        workloads: &[GemmWorkload],
        k: usize,
    ) -> Result<Vec<(Schedule, f32)>, RecommendError> {
        self.check_case(CaseStudy::MultiArrayScheduling)?;
        let ranked = self
            .model
            .predict_topk(&Case3Problem::features(workloads), k);
        Ok(ranked
            .into_iter()
            .filter_map(|(label, p)| {
                problem
                    .space()
                    .decode(label)
                    .map(|(perm, dfs)| (Schedule::new(&perm, &dfs), p))
            })
            .collect())
    }

    /// CS1 on the int8 hot path: same contract as
    /// [`Recommender::recommend_array`] (budget feasibility, error cases)
    /// but answered by the fused quantized pass — allocation-free after
    /// the per-thread arena has warmed up. The common case where the
    /// top-1 pick is feasible skips the full ranking entirely.
    ///
    /// Falls back to the f32 path when the model could not be quantized.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError`] for case-study mismatches or when no
    /// in-space configuration fits the budget.
    pub fn recommend_array_fast(
        &self,
        problem: &Case1Problem,
        workload: &GemmWorkload,
        mac_budget: u64,
    ) -> Result<(ArrayConfig, Dataflow), RecommendError> {
        self.check_case(CaseStudy::ArrayDataflow)?;
        let Some(quant) = &self.quant else {
            return self.recommend_array(problem, workload, mac_budget);
        };
        let features = Case1Problem::features(workload, mac_budget);
        self.infer_quant(quant, &features, |arena| {
            // Escalating rank walk: top-1, then a cheap linear top-K
            // selection, then the full sort only if the budget is so
            // tight that none of the likely picks fit.
            if let Some((array, df)) = problem.space().decode(arena.top1()) {
                if array.macs() <= mac_budget {
                    return Ok((array, df));
                }
            }
            for &label in arena.top_k(FAST_RANK_PROBE) {
                if let Some((array, df)) = problem.space().decode(label) {
                    if array.macs() <= mac_budget {
                        return Ok((array, df));
                    }
                }
            }
            for &label in arena.ranked() {
                if let Some((array, df)) = problem.space().decode(label) {
                    if array.macs() <= mac_budget {
                        return Ok((array, df));
                    }
                }
            }
            Err(RecommendError::NoFeasibleConfig { budget: mac_budget })
        })
    }

    /// CS2 on the int8 hot path: same contract as
    /// [`Recommender::recommend_buffers`] (capacity feasibility, error
    /// cases) but answered by the fused quantized pass.
    ///
    /// Falls back to the f32 path when the model could not be quantized.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError`] for case-study mismatches or when no
    /// in-space split fits the capacity limit.
    pub fn recommend_buffers_fast(
        &self,
        problem: &Case2Problem,
        query: &Case2Query,
    ) -> Result<(u64, u64, u64), RecommendError> {
        self.check_case(CaseStudy::BufferSizing)?;
        let Some(quant) = &self.quant else {
            return self.recommend_buffers(problem, query);
        };
        let features = query.features();
        self.infer_quant(quant, &features, |arena| {
            // Same escalating rank walk as `recommend_array_fast`.
            if let Some((i, f, o)) = problem.space().decode(arena.top1()) {
                if i + f + o <= query.limit_kb {
                    return Ok((i, f, o));
                }
            }
            for &label in arena.top_k(FAST_RANK_PROBE) {
                if let Some((i, f, o)) = problem.space().decode(label) {
                    if i + f + o <= query.limit_kb {
                        return Ok((i, f, o));
                    }
                }
            }
            for &label in arena.ranked() {
                if let Some((i, f, o)) = problem.space().decode(label) {
                    if i + f + o <= query.limit_kb {
                        return Ok((i, f, o));
                    }
                }
            }
            Err(RecommendError::NoFeasibleConfig {
                budget: query.limit_kb,
            })
        })
    }

    /// CS3 on the int8 hot path: same contract as
    /// [`Recommender::recommend_schedule`] but answered by the fused
    /// quantized pass (top-1 only, like the f32 variant).
    ///
    /// Falls back to the f32 path when the model could not be quantized.
    ///
    /// # Errors
    ///
    /// Returns [`RecommendError`] for case-study mismatches or
    /// out-of-space predictions.
    pub fn recommend_schedule_fast(
        &self,
        problem: &Case3Problem,
        workloads: &[GemmWorkload],
    ) -> Result<Schedule, RecommendError> {
        self.check_case(CaseStudy::MultiArrayScheduling)?;
        let Some(quant) = &self.quant else {
            return self.recommend_schedule(problem, workloads);
        };
        let features = Case3Problem::features(workloads);
        let label = self.infer_quant(quant, &features, |arena| arena.top1());
        let (perm, dfs) = problem
            .space()
            .decode(label)
            .ok_or(RecommendError::LabelOutOfSpace { label })?;
        Ok(Schedule::new(&perm, &dfs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AirchitectConfig;
    use crate::pipeline::{run_case1, run_case2, run_case3, PipelineConfig};

    fn array_16() -> ArrayConfig {
        ArrayConfig::new(16, 16).unwrap()
    }

    fn quick() -> PipelineConfig {
        PipelineConfig {
            samples: 400,
            epochs: 5,
            batch_size: 64,
            seed: 3,
            stratify: false,
            threads: 1,
        }
    }

    #[test]
    fn untrained_model_is_rejected() {
        let model = AirchitectModel::new(CaseStudy::ArrayDataflow, &AirchitectConfig::default());
        assert_eq!(
            Recommender::new(model).unwrap_err(),
            RecommendError::Untrained
        );
    }

    #[test]
    fn trained_recommender_returns_in_space_configs() {
        let run = run_case1(&quick(), (5, 9));
        let problem = Case1Problem::new(1 << 9);
        let rec = Recommender::new(run.model).unwrap();
        let wl = GemmWorkload::new(128, 64, 256).unwrap();
        let (array, df) = rec.recommend_array(&problem, &wl, 1 << 9).unwrap();
        assert!(array.macs() <= 1 << 9);
        assert!(Dataflow::ALL.contains(&df));
    }

    #[test]
    fn recommendation_honors_a_tight_mac_budget() {
        let run = run_case1(&quick(), (5, 9));
        let problem = Case1Problem::new(1 << 9);
        let rec = Recommender::new(run.model).unwrap();
        // Budgets far below the training range: the raw top-1 label almost
        // certainly decodes to an oversized array, so feasibility filtering
        // must kick in rather than the budget being silently ignored.
        for budget_log2 in [5u32, 6, 7] {
            let budget = 1u64 << budget_log2;
            for (m, n, k) in [(128, 64, 256), (200, 100, 50), (32, 32, 32)] {
                let wl = GemmWorkload::new(m, n, k).unwrap();
                let (array, _) = rec.recommend_array(&problem, &wl, budget).unwrap();
                assert!(
                    array.macs() <= budget,
                    "array with {} MACs exceeds budget {budget}",
                    array.macs()
                );
            }
        }
    }

    #[test]
    fn infeasible_budget_is_reported_not_ignored() {
        let run = run_case1(&quick(), (5, 9));
        let problem = Case1Problem::new(1 << 9);
        let rec = Recommender::new(run.model).unwrap();
        let wl = GemmWorkload::new(64, 64, 64).unwrap();
        // A 2-MAC budget admits no array shape (smallest is 2x2 = 4 MACs).
        assert_eq!(
            rec.recommend_array(&problem, &wl, 2),
            Err(RecommendError::NoFeasibleConfig { budget: 2 })
        );
    }

    #[test]
    fn topk_is_ranked_and_headed_by_the_top1_pick() {
        let run = run_case1(&quick(), (5, 9));
        let problem = Case1Problem::new(1 << 9);
        let rec = Recommender::new(run.model).unwrap();
        let wl = GemmWorkload::new(200, 100, 50).unwrap();
        let top = rec.recommend_array_topk(&problem, &wl, 1 << 9, 5).unwrap();
        assert!(!top.is_empty() && top.len() <= 5);
        assert!(top.windows(2).all(|w| w[0].2 >= w[1].2));
        let (a1, d1) = rec.recommend_array(&problem, &wl, 1 << 9).unwrap();
        assert_eq!((top[0].0, top[0].1), (a1, d1));
    }

    #[test]
    fn buffer_recommendation_honors_the_capacity_limit() {
        let run = run_case2(&quick());
        let problem = Case2Problem::new();
        let rec = Recommender::new(run.model).unwrap();
        // Limits right at the bottom of the space: the raw top-1 label
        // almost certainly decodes to an oversized split, so feasibility
        // filtering must kick in (same contract as the CS1 MAC budget).
        for limit_kb in [300u64, 400, 500] {
            let query = Case2Query {
                workload: GemmWorkload::new(1024, 256, 512).unwrap(),
                array: array_16(),
                dataflow: Dataflow::Os,
                bandwidth: 4,
                limit_kb,
            };
            let (i, f, o) = rec.recommend_buffers(&problem, &query).unwrap();
            assert!(
                i + f + o <= limit_kb,
                "split {i}+{f}+{o} KB exceeds the {limit_kb} KB limit"
            );
        }
    }

    #[test]
    fn infeasible_buffer_limit_is_reported_not_ignored() {
        let run = run_case2(&quick());
        let problem = Case2Problem::new();
        let rec = Recommender::new(run.model).unwrap();
        let query = Case2Query {
            workload: GemmWorkload::new(512, 256, 384).unwrap(),
            array: array_16(),
            dataflow: Dataflow::Os,
            bandwidth: 4,
            // Below the 300 KB minimum total of the space.
            limit_kb: 250,
        };
        assert_eq!(
            rec.recommend_buffers(&problem, &query),
            Err(RecommendError::NoFeasibleConfig { budget: 250 })
        );
    }

    #[test]
    fn buffer_topk_is_ranked_and_in_space() {
        let run = run_case2(&quick());
        let problem = Case2Problem::new();
        let rec = Recommender::new(run.model).unwrap();
        let query = Case2Query {
            workload: GemmWorkload::new(1024, 256, 512).unwrap(),
            array: array_16(),
            dataflow: Dataflow::Ws,
            bandwidth: 8,
            limit_kb: 3000,
        };
        let top = rec.recommend_buffers_topk(&problem, &query, 5).unwrap();
        assert!(!top.is_empty() && top.len() <= 5);
        assert!(top.windows(2).all(|w| w[0].3 >= w[1].3));
        for &(i, f, o, _) in &top {
            assert!(problem.space().encode(i, f, o).is_some());
        }
    }

    #[test]
    fn schedule_topk_is_ranked_and_returns_permutations() {
        let run = run_case3(&PipelineConfig {
            samples: 300,
            ..quick()
        });
        let problem = Case3Problem::new();
        let rec = Recommender::new(run.model).unwrap();
        let workloads = vec![
            GemmWorkload::new(512, 128, 256).unwrap(),
            GemmWorkload::new(64, 64, 64).unwrap(),
            GemmWorkload::new(256, 32, 128).unwrap(),
            GemmWorkload::new(196, 96, 256).unwrap(),
        ];
        let top = rec
            .recommend_schedule_topk(&problem, &workloads, 4)
            .unwrap();
        assert!(!top.is_empty() && top.len() <= 4);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        for (schedule, _) in &top {
            assert!(schedule.is_permutation());
        }
        // Head of the ranking agrees with the top-1 API.
        let top1 = rec.recommend_schedule(&problem, &workloads).unwrap();
        assert_eq!(top[0].0, top1);
    }

    #[test]
    fn wrong_case_study_is_rejected() {
        let run = run_case1(&quick(), (5, 8));
        let rec = Recommender::new(run.model).unwrap();
        let problem = Case2Problem::new();
        let query = Case2Query::from_features(&[1000.0, 64.0, 64.0, 64.0, 8.0, 8.0, 0.0, 10.0]);
        assert!(matches!(
            rec.recommend_buffers(&problem, &query),
            Err(RecommendError::WrongCaseStudy { .. })
        ));
    }

    #[test]
    fn fast_array_path_matches_contract_and_mostly_agrees() {
        let run = run_case1(&quick(), (5, 9));
        let problem = Case1Problem::new(1 << 9);
        let rec = Recommender::new(run.model).unwrap();
        assert!(rec.quantized().is_some(), "embedding MLP must quantize");
        let mut agree = 0usize;
        let mut total = 0usize;
        for (m, n, k) in [(128u64, 64u64, 256u64), (200, 100, 50), (32, 32, 32), (512, 512, 512)] {
            let wl = GemmWorkload::new(m, n, k).unwrap();
            for budget_log2 in [6u32, 8, 9] {
                let budget = 1u64 << budget_log2;
                let fast = rec.recommend_array_fast(&problem, &wl, budget).unwrap();
                // The hard feasibility contract holds unconditionally.
                assert!(fast.0.macs() <= budget);
                total += 1;
                if fast == rec.recommend_array(&problem, &wl, budget).unwrap() {
                    agree += 1;
                }
            }
        }
        // Quantization noise may flip near-ties, but wholesale divergence
        // means the fused pass is wrong.
        assert!(agree * 2 > total, "fast path agreed on {agree}/{total}");
        // Infeasible budgets error identically.
        let wl = GemmWorkload::new(64, 64, 64).unwrap();
        assert_eq!(
            rec.recommend_array_fast(&problem, &wl, 2),
            Err(RecommendError::NoFeasibleConfig { budget: 2 })
        );
    }

    #[test]
    fn fast_buffer_path_honors_the_capacity_limit() {
        let run = run_case2(&quick());
        let problem = Case2Problem::new();
        let rec = Recommender::new(run.model).unwrap();
        for limit_kb in [300u64, 500, 3000] {
            let query = Case2Query {
                workload: GemmWorkload::new(1024, 256, 512).unwrap(),
                array: array_16(),
                dataflow: Dataflow::Os,
                bandwidth: 4,
                limit_kb,
            };
            let (i, f, o) = rec.recommend_buffers_fast(&problem, &query).unwrap();
            assert!(i + f + o <= limit_kb);
        }
        let infeasible = Case2Query {
            workload: GemmWorkload::new(512, 256, 384).unwrap(),
            array: array_16(),
            dataflow: Dataflow::Os,
            bandwidth: 4,
            limit_kb: 250,
        };
        assert_eq!(
            rec.recommend_buffers_fast(&problem, &infeasible),
            Err(RecommendError::NoFeasibleConfig { budget: 250 })
        );
    }

    #[test]
    fn fast_schedule_path_returns_valid_permutations() {
        let run = run_case3(&PipelineConfig {
            samples: 300,
            ..quick()
        });
        let problem = Case3Problem::new();
        let rec = Recommender::new(run.model).unwrap();
        let workloads = vec![
            GemmWorkload::new(512, 128, 256).unwrap(),
            GemmWorkload::new(64, 64, 64).unwrap(),
            GemmWorkload::new(256, 32, 128).unwrap(),
            GemmWorkload::new(196, 96, 256).unwrap(),
        ];
        let schedule = rec.recommend_schedule_fast(&problem, &workloads).unwrap();
        assert!(schedule.is_permutation());
    }

    #[test]
    fn fast_paths_reject_wrong_case_studies_like_the_f32_ones() {
        let run = run_case1(&quick(), (5, 8));
        let rec = Recommender::new(run.model).unwrap();
        let problem = Case2Problem::new();
        let query = Case2Query::from_features(&[1000.0, 64.0, 64.0, 64.0, 8.0, 8.0, 0.0, 10.0]);
        assert!(matches!(
            rec.recommend_buffers_fast(&problem, &query),
            Err(RecommendError::WrongCaseStudy { .. })
        ));
    }
}
