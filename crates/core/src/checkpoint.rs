//! Crash-safe training checkpoints for resumable runs.
//!
//! A checkpoint captures everything needed to continue training exactly
//! where a killed process stopped: the model (quantizer + network values),
//! the optimizer (including Adam's step counter), the per-parameter moment
//! buffers, and how many epochs completed. Because the trainer's shuffle
//! stream is a pure function of the seed and the epoch index, restoring
//! this state and fast-forwarding the RNG reproduces an uninterrupted run
//! bit for bit (see [`airchitect_nn::train::fit_resumable`]).
//!
//! Format: magic `AIRC`, version 1, epochs-done counter, a
//! [`RunFingerprint`] pinning the training spec and dataset, the optimizer,
//! the embedded AIRM model blob, the AIMS optimizer-state blob, then a
//! CRC32 footer over all preceding bytes. Writes are atomic (temp file +
//! fsync + rename), so the previous checkpoint survives a crash mid-save.

use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use airchitect_data::integrity::{append_crc_footer, atomic_write, crc32, split_crc_footer};
use airchitect_data::{codec, Dataset};
use airchitect_nn::optim::Optimizer;
use airchitect_nn::serialize as nn_serialize;
use airchitect_nn::train::{ResumePoint, TrainConfig};

use crate::model::AirchitectModel;
use crate::persist::{self, PersistError};

const MAGIC: &[u8; 4] = b"AIRC";
const VERSION: u32 = 1;

/// File name of the training checkpoint inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.airc";

/// Error produced by the checkpoint codec.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Malformed checkpoint buffer.
    Corrupt(&'static str),
    /// The checkpoint's CRC32 footer did not match its contents.
    ChecksumMismatch {
        /// CRC stored in the file footer.
        stored: u32,
        /// CRC computed over the file body.
        computed: u32,
    },
    /// The checkpoint belongs to a different run (which field disagreed).
    Mismatch(&'static str),
    /// Error inside the embedded model or optimizer-state blob.
    Persist(PersistError),
    /// Filesystem error, stringified.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: file says {stored:#010x}, contents hash to {computed:#010x}"
            ),
            CheckpointError::Mismatch(field) => {
                write!(f, "checkpoint is from a different run: {field} differs")
            }
            CheckpointError::Persist(e) => write!(f, "checkpoint payload: {e}"),
            CheckpointError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<PersistError> for CheckpointError {
    fn from(e: PersistError) -> Self {
        CheckpointError::Persist(e)
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Identifies the run a checkpoint belongs to: the training schedule plus a
/// CRC over the serialized training dataset. Resuming refuses checkpoints
/// whose fingerprint disagrees with the current invocation, so a stale
/// checkpoint directory can never silently corrupt a new run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunFingerprint {
    /// Shuffling seed of the run.
    pub seed: u64,
    /// Total epochs in the schedule.
    pub epochs: u32,
    /// Minibatch size.
    pub batch_size: u32,
    /// Per-epoch learning-rate decay factor.
    pub lr_decay: f32,
    /// Rows in the training dataset.
    pub data_rows: u64,
    /// Feature width of the training dataset.
    pub data_dim: u32,
    /// Number of label classes.
    pub data_classes: u32,
    /// CRC32 of the serialized training dataset.
    pub data_crc: u32,
}

impl RunFingerprint {
    /// Fingerprints a training invocation: schedule from `train`, identity
    /// of `data` via shape plus a CRC over its canonical serialization.
    pub fn new(train: &TrainConfig, data: &Dataset) -> Self {
        Self {
            seed: train.seed,
            epochs: train.epochs as u32,
            batch_size: train.batch_size as u32,
            lr_decay: train.lr_decay,
            data_rows: data.len() as u64,
            data_dim: data.feature_dim() as u32,
            data_classes: data.num_classes(),
            data_crc: crc32(&codec::to_bytes(data)),
        }
    }

    /// Which field (if any) disagrees with `other`.
    fn diff(&self, other: &RunFingerprint) -> Option<&'static str> {
        if self.seed != other.seed {
            Some("seed")
        } else if self.epochs != other.epochs {
            Some("epoch schedule")
        } else if self.batch_size != other.batch_size {
            Some("batch size")
        } else if self.lr_decay.to_bits() != other.lr_decay.to_bits() {
            Some("learning-rate decay")
        } else if self.data_rows != other.data_rows
            || self.data_dim != other.data_dim
            || self.data_classes != other.data_classes
            || self.data_crc != other.data_crc
        {
            Some("training dataset")
        } else {
            None
        }
    }
}

/// A decoded training checkpoint: the state needed to continue a run.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Number of epochs already completed.
    pub epochs_done: u32,
    /// Fingerprint of the run that produced the checkpoint.
    pub fingerprint: RunFingerprint,
    /// Model as of the last completed epoch (moment buffers restored).
    pub model: AirchitectModel,
    /// Optimizer as of the last completed epoch (decay already applied).
    pub optimizer: Optimizer,
}

impl TrainCheckpoint {
    /// The trainer-facing resume point for this checkpoint.
    pub fn resume_point(&self) -> ResumePoint {
        ResumePoint {
            next_epoch: self.epochs_done as usize,
            optimizer: self.optimizer,
        }
    }
}

/// Path of the checkpoint file inside `dir`.
pub fn checkpoint_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(CHECKPOINT_FILE)
}

fn put_optimizer(buf: &mut BytesMut, opt: &Optimizer) {
    match *opt {
        Optimizer::Sgd { lr, momentum } => {
            buf.put_u8(0);
            buf.put_f32_le(lr);
            buf.put_f32_le(momentum);
        }
        Optimizer::Adam {
            lr,
            beta1,
            beta2,
            eps,
            t,
        } => {
            buf.put_u8(1);
            buf.put_f32_le(lr);
            buf.put_f32_le(beta1);
            buf.put_f32_le(beta2);
            buf.put_f32_le(eps);
            buf.put_u64_le(t);
        }
    }
}

fn get_optimizer(buf: &mut &[u8]) -> Result<Optimizer, CheckpointError> {
    if buf.remaining() < 1 {
        return Err(CheckpointError::Corrupt("truncated optimizer"));
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 8 {
                return Err(CheckpointError::Corrupt("truncated sgd state"));
            }
            Ok(Optimizer::Sgd {
                lr: buf.get_f32_le(),
                momentum: buf.get_f32_le(),
            })
        }
        1 => {
            if buf.remaining() < 24 {
                return Err(CheckpointError::Corrupt("truncated adam state"));
            }
            Ok(Optimizer::Adam {
                lr: buf.get_f32_le(),
                beta1: buf.get_f32_le(),
                beta2: buf.get_f32_le(),
                eps: buf.get_f32_le(),
                t: buf.get_u64_le(),
            })
        }
        _ => Err(CheckpointError::Corrupt("unknown optimizer tag")),
    }
}

/// Serializes a checkpoint to bytes (version 1, checksummed).
pub fn to_bytes(
    model: &AirchitectModel,
    optimizer: &Optimizer,
    epochs_done: u32,
    fingerprint: &RunFingerprint,
) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(epochs_done);

    buf.put_u64_le(fingerprint.seed);
    buf.put_u32_le(fingerprint.epochs);
    buf.put_u32_le(fingerprint.batch_size);
    buf.put_f32_le(fingerprint.lr_decay);
    buf.put_u64_le(fingerprint.data_rows);
    buf.put_u32_le(fingerprint.data_dim);
    buf.put_u32_le(fingerprint.data_classes);
    buf.put_u32_le(fingerprint.data_crc);

    put_optimizer(&mut buf, optimizer);

    let model_blob = persist::to_bytes(model);
    buf.put_u64_le(model_blob.len() as u64);
    buf.put_slice(&model_blob);

    let state_blob = nn_serialize::state_to_bytes(model.network());
    buf.put_u64_le(state_blob.len() as u64);
    buf.put_slice(&state_blob);

    let mut out = buf.freeze().to_vec();
    append_crc_footer(&mut out);
    Bytes::from(out)
}

/// Deserializes a checkpoint produced by [`to_bytes`], verifying the CRC
/// and (when given) the run fingerprint.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] / [`CheckpointError::ChecksumMismatch`] on
/// damaged files, [`CheckpointError::Mismatch`] when the checkpoint belongs
/// to a different `(config, dataset)` than `expected`.
pub fn from_bytes(
    buf: &[u8],
    expected: Option<&RunFingerprint>,
) -> Result<TrainCheckpoint, CheckpointError> {
    if buf.len() < 12 {
        return Err(CheckpointError::Corrupt("truncated header"));
    }
    if &buf[..4] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::Corrupt("unsupported version"));
    }
    let (body, stored) =
        split_crc_footer(buf).ok_or(CheckpointError::Corrupt("truncated header"))?;
    let computed = crc32(body);
    if computed != stored {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }

    let mut buf = &body[8..]; // magic + version, validated above
    if buf.remaining() < 4 + 40 {
        return Err(CheckpointError::Corrupt("truncated run header"));
    }
    let epochs_done = buf.get_u32_le();
    let fingerprint = RunFingerprint {
        seed: buf.get_u64_le(),
        epochs: buf.get_u32_le(),
        batch_size: buf.get_u32_le(),
        lr_decay: buf.get_f32_le(),
        data_rows: buf.get_u64_le(),
        data_dim: buf.get_u32_le(),
        data_classes: buf.get_u32_le(),
        data_crc: buf.get_u32_le(),
    };
    if epochs_done > fingerprint.epochs {
        return Err(CheckpointError::Corrupt("epochs done exceeds schedule"));
    }
    if let Some(want) = expected {
        if let Some(field) = fingerprint.diff(want) {
            return Err(CheckpointError::Mismatch(field));
        }
    }
    let optimizer = get_optimizer(&mut buf)?;

    if buf.remaining() < 8 {
        return Err(CheckpointError::Corrupt("truncated model length"));
    }
    let model_len = buf.get_u64_le() as usize;
    if buf.remaining() < model_len {
        return Err(CheckpointError::Corrupt("model blob size mismatch"));
    }
    let mut model = persist::from_bytes(&buf[..model_len])?;
    buf.advance(model_len);

    if buf.remaining() < 8 {
        return Err(CheckpointError::Corrupt("truncated state length"));
    }
    let state_len = buf.get_u64_le() as usize;
    if buf.remaining() != state_len {
        return Err(CheckpointError::Corrupt("state blob size mismatch"));
    }
    nn_serialize::apply_state(model.network_mut(), buf)
        .map_err(|e| CheckpointError::Persist(PersistError::Network(e.to_string())))?;

    Ok(TrainCheckpoint {
        epochs_done,
        fingerprint,
        model,
        optimizer,
    })
}

/// Atomically writes a checkpoint into `dir` (creating it if absent) and
/// returns the checkpoint file's path.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem errors.
pub fn save(
    dir: impl AsRef<Path>,
    model: &AirchitectModel,
    optimizer: &Optimizer,
    epochs_done: u32,
    fingerprint: &RunFingerprint,
) -> Result<PathBuf, CheckpointError> {
    let dir = dir.as_ref();
    let mut span = airchitect_telemetry::span::Span::enter("checkpoint.save");
    span.field_u64("epochs_done", u64::from(epochs_done));
    let _save_timer = airchitect_telemetry::metrics::CHECKPOINT_SAVE_US.start_timer();
    airchitect_telemetry::metrics::CHECKPOINT_SAVES.inc();
    std::fs::create_dir_all(dir)?;
    let path = checkpoint_path(dir);
    atomic_write(&path, &to_bytes(model, optimizer, epochs_done, fingerprint))?;
    Ok(path)
}

/// Loads the checkpoint from `dir`, verifying checksum and (when given)
/// that it belongs to the `expected` run.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the file is unreadable, otherwise as
/// [`from_bytes`].
pub fn load(
    dir: impl AsRef<Path>,
    expected: Option<&RunFingerprint>,
) -> Result<TrainCheckpoint, CheckpointError> {
    let path = checkpoint_path(dir);
    let mut buf = Vec::new();
    File::open(&path)?.read_to_end(&mut buf)?;
    from_bytes(&buf, expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AirchitectConfig, CaseStudy};

    fn small_setup() -> (AirchitectModel, Dataset, TrainConfig) {
        let mut ds = Dataset::new(4, 3).unwrap();
        for i in 0..90 {
            let m = [8.0, 256.0, 8192.0][i % 3];
            ds.push(&[10.0, m, 64.0, 64.0], (i % 3) as u32).unwrap();
        }
        let train = TrainConfig {
            epochs: 4,
            batch_size: 16,
            ..Default::default()
        };
        let model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: 3,
                train,
                ..Default::default()
            },
        );
        (model, ds, train)
    }

    #[test]
    fn roundtrip_restores_model_state_and_optimizer() {
        let (mut model, ds, train) = small_setup();
        model.train(&ds).unwrap();
        let fp = RunFingerprint::new(&train, &ds);
        let opt = Optimizer::Adam {
            lr: 5e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 42,
        };
        let bytes = to_bytes(&model, &opt, 3, &fp);
        let ckpt = from_bytes(&bytes, Some(&fp)).unwrap();
        assert_eq!(ckpt.epochs_done, 3);
        assert_eq!(ckpt.optimizer, opt);
        assert_eq!(ckpt.fingerprint, fp);
        // Parameter values and moment buffers round-trip exactly. (Direct
        // PartialEq on Sequential would also compare transient forward-pass
        // caches, which checkpoints deliberately do not carry.)
        assert_eq!(
            nn_serialize::to_bytes(ckpt.model.network()),
            nn_serialize::to_bytes(model.network())
        );
        assert_eq!(
            nn_serialize::state_to_bytes(ckpt.model.network()),
            nn_serialize::state_to_bytes(model.network())
        );
        assert_eq!(ckpt.resume_point().next_epoch, 3);
    }

    #[test]
    fn save_load_via_directory() {
        let (model, ds, train) = small_setup();
        let fp = RunFingerprint::new(&train, &ds);
        let dir = std::env::temp_dir().join(format!("airc-ckpt-{}", std::process::id()));
        let path = save(&dir, &model, &Optimizer::sgd(0.1), 1, &fp).unwrap();
        assert!(path.ends_with(CHECKPOINT_FILE));
        let ckpt = load(&dir, Some(&fp)).unwrap();
        assert_eq!(ckpt.epochs_done, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_typed() {
        let (model, ds, train) = small_setup();
        let fp = RunFingerprint::new(&train, &ds);
        let bytes = to_bytes(&model, &Optimizer::sgd(0.1), 2, &fp);

        let other = TrainConfig {
            seed: train.seed + 1,
            ..train
        };
        let want = RunFingerprint::new(&other, &ds);
        assert_eq!(
            from_bytes(&bytes, Some(&want)).unwrap_err(),
            CheckpointError::Mismatch("seed"),
        );

        let mut ds2 = Dataset::new(4, 3).unwrap();
        ds2.push(&[10.0, 8.0, 64.0, 64.0], 0).unwrap();
        let want = RunFingerprint::new(&train, &ds2);
        assert_eq!(
            from_bytes(&bytes, Some(&want)).unwrap_err(),
            CheckpointError::Mismatch("training dataset"),
        );
    }

    #[test]
    fn corruption_yields_typed_errors_never_panics() {
        let (model, ds, train) = small_setup();
        let fp = RunFingerprint::new(&train, &ds);
        let bytes = to_bytes(&model, &Optimizer::adam(1e-3), 2, &fp).to_vec();

        // Zero-length, truncations at every prefix step, and a bit flip.
        assert!(matches!(
            from_bytes(&[], None),
            Err(CheckpointError::Corrupt(_))
        ));
        for cut in [1, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut], None).is_err(), "cut at {cut}");
        }
        let mut flipped = bytes.clone();
        flipped[40] ^= 0x10;
        assert!(matches!(
            from_bytes(&flipped, None),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            from_bytes(&wrong_magic, None).unwrap_err(),
            CheckpointError::Corrupt("bad magic"),
        );
    }

    #[test]
    fn missing_checkpoint_is_an_io_error() {
        let err = load("/nonexistent-airc-dir", None).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
