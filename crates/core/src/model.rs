//! The AIrchitect recommendation network (paper Fig. 2) and its per-case
//! feature quantizers.

use airchitect_classifiers::Classifier;
use airchitect_data::Dataset;
use airchitect_nn::network::Sequential;
use airchitect_nn::train::{self, History, TrainConfig, TrainError};
use serde::{Deserialize, Serialize};

/// Which of the paper's three case studies a model targets.
///
/// The case study fixes the input layout (paper Fig. 8a) and therefore the
/// feature quantizer; the output-space size is configured separately because
/// CS1's grows with the MAC budget (paper Fig. 11b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseStudy {
    /// CS1: array shape & dataflow prediction (4 inputs).
    ArrayDataflow,
    /// CS2: SRAM buffer sizing (8 inputs).
    BufferSizing,
    /// CS3: multi-array scheduling (12 inputs).
    MultiArrayScheduling,
}

impl CaseStudy {
    /// Number of input features (paper Fig. 8a).
    pub fn input_dim(&self) -> usize {
        match self {
            CaseStudy::ArrayDataflow => 4,
            CaseStudy::BufferSizing => 8,
            CaseStudy::MultiArrayScheduling => 12,
        }
    }

    /// The paper's output-space size for the canonical configuration.
    pub fn paper_output_space(&self) -> u32 {
        match self {
            CaseStudy::ArrayDataflow => 459,
            CaseStudy::BufferSizing => 1000,
            CaseStudy::MultiArrayScheduling => 1944,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CaseStudy::ArrayDataflow => "case study 1 (array & dataflow)",
            CaseStudy::BufferSizing => "case study 2 (buffer sizing)",
            CaseStudy::MultiArrayScheduling => "case study 3 (scheduling)",
        }
    }

    /// All case studies in paper order.
    pub const ALL: [CaseStudy; 3] = [
        CaseStudy::ArrayDataflow,
        CaseStudy::BufferSizing,
        CaseStudy::MultiArrayScheduling,
    ];
}

/// How one input column is quantized into an embedding bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ColumnQuantizer {
    /// The value is already a small integer (dataflow index, log2 budget).
    Direct,
    /// Log2 binning with the given resolution (workload/array dimensions).
    Log2 {
        /// Bins per power of two.
        bins_per_octave: u32,
    },
    /// Linear binning: `value / step` (capacity limits in KB).
    Scaled {
        /// Bin width in input units.
        step: f32,
    },
}

impl ColumnQuantizer {
    /// Bin index for a value, clamped to `[0, vocab)`.
    pub fn bin(&self, v: f32, vocab: u32) -> u32 {
        let b = match self {
            ColumnQuantizer::Direct => v.max(0.0).round() as u32,
            ColumnQuantizer::Log2 { bins_per_octave } => {
                ((v.max(1.0) as f64).log2() * *bins_per_octave as f64).round() as u32
            }
            ColumnQuantizer::Scaled { step } => (v.max(0.0) / step).round() as u32,
        };
        b.min(vocab - 1)
    }
}

/// Per-column quantization mapping raw integer features onto the embedding
/// vocabulary (the "quantizing the optimization space" step of paper
/// Sec. IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureQuantizer {
    columns: Vec<ColumnQuantizer>,
    vocab: u32,
}

impl FeatureQuantizer {
    /// The canonical quantizer for a case study's input layout with a
    /// 64-entry vocabulary.
    pub fn for_case_study(case: CaseStudy) -> Self {
        let log2 = ColumnQuantizer::Log2 { bins_per_octave: 2 };
        let columns = match case {
            // [log2 budget, M, N, K]
            CaseStudy::ArrayDataflow => vec![ColumnQuantizer::Direct, log2, log2, log2],
            // [limit KB, M, N, K, rows, cols, dataflow, bandwidth]
            CaseStudy::BufferSizing => vec![
                ColumnQuantizer::Scaled { step: 100.0 },
                log2,
                log2,
                log2,
                log2,
                log2,
                ColumnQuantizer::Direct,
                ColumnQuantizer::Log2 { bins_per_octave: 4 },
            ],
            // 12 workload dimensions
            CaseStudy::MultiArrayScheduling => vec![log2; 12],
        };
        Self { columns, vocab: 64 }
    }

    /// A custom quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or `vocab` is zero.
    pub fn new(columns: Vec<ColumnQuantizer>, vocab: u32) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        assert!(vocab > 0, "vocab must be positive");
        Self { columns, vocab }
    }

    /// Number of input columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The per-column quantizers.
    pub fn columns(&self) -> &[ColumnQuantizer] {
        &self.columns
    }

    /// Embedding vocabulary size.
    pub fn vocab(&self) -> u32 {
        self.vocab
    }

    /// Quantizes one raw feature row into bin indices.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the column count.
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.columns.len(), "feature width mismatch");
        row.iter()
            .zip(&self.columns)
            .map(|(&v, q)| q.bin(v, self.vocab) as f32)
            .collect()
    }

    /// Quantizes one raw feature row into `u8` bin indices without
    /// allocating — the bin-tuple extraction for the quantized inference
    /// path. Produces exactly the same bins as
    /// [`FeatureQuantizer::transform_row`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the column count, or if the
    /// vocabulary exceeds 256 (bins must fit `u8`).
    pub fn bin_row_into(&self, row: &[f32], out: &mut [u8]) {
        assert_eq!(row.len(), self.columns.len(), "feature width mismatch");
        assert_eq!(out.len(), self.columns.len(), "bin buffer width mismatch");
        assert!(self.vocab <= 256, "vocab too large for u8 bins");
        for (slot, (&v, q)) in out.iter_mut().zip(row.iter().zip(&self.columns)) {
            *slot = q.bin(v, self.vocab) as u8;
        }
    }

    /// Quantizes a whole dataset out of place.
    pub fn transform(&self, dataset: &Dataset) -> Dataset {
        let mut out = Dataset::new(dataset.feature_dim(), dataset.num_classes())
            .expect("source dataset is valid");
        for i in 0..dataset.len() {
            out.push(&self.transform_row(dataset.row(i)), dataset.label(i))
                .expect("same shape as source");
        }
        out
    }
}

/// Hyper-parameters of the recommendation network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirchitectConfig {
    /// Output-space size (number of config IDs).
    pub num_classes: u32,
    /// Embedding width per input feature (paper: 16).
    pub embed_dim: usize,
    /// Hidden-layer width (paper: 256).
    pub hidden: usize,
    /// Training schedule.
    pub train: TrainConfig,
    /// Weight-init / shuffling seed.
    pub seed: u64,
}

impl Default for AirchitectConfig {
    /// The paper's architecture: 16-wide embeddings, 256 hidden nodes,
    /// 15 epochs.
    fn default() -> Self {
        Self {
            num_classes: 459,
            embed_dim: 16,
            hidden: 256,
            train: TrainConfig::default(),
            seed: 0,
        }
    }
}

/// The AIrchitect recommendation network: a [`FeatureQuantizer`] front-end
/// feeding per-feature embeddings, a 256-node hidden layer, and a softmax
/// over config IDs (paper Fig. 2).
#[derive(Debug, Clone)]
pub struct AirchitectModel {
    case: CaseStudy,
    quantizer: FeatureQuantizer,
    network: Sequential,
    config: AirchitectConfig,
    trained: bool,
}

/// Outcome of training an [`AirchitectModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Per-epoch loss/accuracy curves (paper Fig. 10a-c).
    pub history: History,
}

impl AirchitectModel {
    /// Builds an untrained model for a case study.
    pub fn new(case: CaseStudy, config: &AirchitectConfig) -> Self {
        let quantizer = FeatureQuantizer::for_case_study(case);
        let network = Sequential::embedding_mlp(
            quantizer.num_columns(),
            quantizer.vocab() as usize,
            config.embed_dim,
            config.hidden,
            config.num_classes as usize,
            config.seed,
        );
        Self {
            case,
            quantizer,
            network,
            config: *config,
            trained: false,
        }
    }

    /// Rebuilds a model from its persisted parts (see [`crate::persist`]).
    ///
    /// # Panics
    ///
    /// Panics if the quantizer width differs from the network input width.
    pub fn from_parts(
        case: CaseStudy,
        quantizer: FeatureQuantizer,
        network: Sequential,
        trained: bool,
    ) -> Self {
        assert_eq!(
            quantizer.num_columns(),
            network.in_dim(),
            "quantizer width must match network input"
        );
        let config = AirchitectConfig {
            num_classes: network.out_dim() as u32,
            ..Default::default()
        };
        Self {
            case,
            quantizer,
            network,
            config,
            trained,
        }
    }

    /// Replaces the feature quantizer (ablation studies). The network input
    /// width must stay compatible.
    ///
    /// # Panics
    ///
    /// Panics if the new quantizer's width differs from the network input.
    pub fn with_quantizer(mut self, quantizer: FeatureQuantizer) -> Self {
        assert_eq!(
            quantizer.num_columns(),
            self.network.in_dim(),
            "quantizer width must match network input"
        );
        self.quantizer = quantizer;
        self
    }

    /// The case study this model targets.
    pub fn case_study(&self) -> CaseStudy {
        self.case
    }

    /// The feature quantizer front-end.
    pub fn quantizer(&self) -> &FeatureQuantizer {
        &self.quantizer
    }

    /// The underlying network (e.g. for serialization).
    pub fn network(&self) -> &Sequential {
        &self.network
    }

    /// Mutable network access for checkpoint restoration.
    pub(crate) fn network_mut(&mut self) -> &mut Sequential {
        &mut self.network
    }

    /// The model's hyper-parameters.
    pub fn config(&self) -> &AirchitectConfig {
        &self.config
    }

    /// Replaces the training schedule. Persisted models
    /// ([`AirchitectModel::from_parts`]) come back with a default schedule;
    /// a resumed run installs the real one before continuing training.
    pub fn set_train_config(&mut self, train: TrainConfig) {
        self.config.train = train;
    }

    /// Whether [`AirchitectModel::train`] has completed.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Trains on a raw-feature dataset (quantization happens internally),
    /// without a validation set.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainError`] from the trainer.
    pub fn train(&mut self, dataset: &Dataset) -> Result<TrainReport, TrainError> {
        self.train_with_validation(dataset, None)
    }

    /// Trains on a raw-feature dataset, tracking validation accuracy per
    /// epoch when `validation` is given (paper Fig. 10a-c).
    ///
    /// # Errors
    ///
    /// Propagates [`TrainError`] from the trainer.
    pub fn train_with_validation(
        &mut self,
        dataset: &Dataset,
        validation: Option<&Dataset>,
    ) -> Result<TrainReport, TrainError> {
        self.train_resumable(dataset, validation, None, |_| Ok(()))
    }

    /// Trains like [`AirchitectModel::train_with_validation`], optionally
    /// resuming from a checkpoint and invoking `observer` after every
    /// completed epoch (see [`train::fit_resumable`]).
    ///
    /// A run resumed from a snapshot of `(network, optimizer, next_epoch)`
    /// finishes bit-identical to an uninterrupted one; only the remaining
    /// epochs appear in the report. The quantized training inputs the
    /// observer sees are derived deterministically from `dataset`, so the
    /// checkpoint only needs to fingerprint the raw dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainError`] from the trainer, including
    /// [`TrainError::Diverged`] and observer failures.
    pub fn train_resumable<F>(
        &mut self,
        dataset: &Dataset,
        validation: Option<&Dataset>,
        resume: Option<train::ResumePoint>,
        observer: F,
    ) -> Result<TrainReport, TrainError>
    where
        F: FnMut(&train::EpochCheckpoint<'_>) -> Result<(), String>,
    {
        let binned = self.quantizer.transform(dataset);
        let binned_val = validation.map(|v| self.quantizer.transform(v));
        let history = train::fit_resumable(
            &mut self.network,
            &binned,
            binned_val.as_ref(),
            &self.config.train,
            resume,
            observer,
        )?;
        self.trained = true;
        Ok(TrainReport { history })
    }

    /// Constant-time recommendation: predicts the config ID for one raw
    /// feature row.
    pub fn predict_row(&self, row: &[f32]) -> u32 {
        let _t = airchitect_telemetry::metrics::INFER_QUERY_US.start_timer();
        airchitect_telemetry::metrics::INFER_QUERIES.inc();
        self.network.predict_one(&self.quantizer.transform_row(row))
    }

    /// The `k` most likely config IDs for one raw feature row, ranked with
    /// softmax probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn predict_topk(&self, row: &[f32], k: usize) -> Vec<(u32, f32)> {
        let _t = airchitect_telemetry::metrics::INFER_QUERY_US.start_timer();
        airchitect_telemetry::metrics::INFER_QUERIES.inc();
        self.network
            .predict_topk(&self.quantizer.transform_row(row), k)
    }

    /// Predicts config IDs for every row of a raw-feature dataset.
    pub fn predict(&self, dataset: &Dataset) -> Vec<u32> {
        let binned = self.quantizer.transform(dataset);
        train::predict_dataset_infer(&self.network, &binned)
    }

    /// Accuracy against a labeled raw-feature dataset.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        airchitect_nn::metrics::accuracy(&self.predict(dataset), dataset.labels())
    }
}

impl Classifier for AirchitectModel {
    fn name(&self) -> &str {
        "AIrchitect"
    }

    fn fit(&mut self, train: &Dataset) {
        self.train(train).expect("validated dataset");
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        AirchitectModel::predict_row(self, row)
    }

    fn predict(&self, dataset: &Dataset) -> Vec<u32> {
        AirchitectModel::predict(self, dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_metadata_matches_paper() {
        assert_eq!(CaseStudy::ArrayDataflow.input_dim(), 4);
        assert_eq!(CaseStudy::BufferSizing.input_dim(), 8);
        assert_eq!(CaseStudy::MultiArrayScheduling.input_dim(), 12);
        assert_eq!(CaseStudy::ArrayDataflow.paper_output_space(), 459);
        assert_eq!(CaseStudy::BufferSizing.paper_output_space(), 1000);
        assert_eq!(CaseStudy::MultiArrayScheduling.paper_output_space(), 1944);
    }

    #[test]
    fn quantizer_widths_match_case_inputs() {
        for case in CaseStudy::ALL {
            assert_eq!(
                FeatureQuantizer::for_case_study(case).num_columns(),
                case.input_dim()
            );
        }
    }

    #[test]
    fn quantizer_keeps_bins_in_vocab() {
        let q = FeatureQuantizer::for_case_study(CaseStudy::BufferSizing);
        let row = [3000.0, 16384.0, 1.0, 500.0, 512.0, 4.0, 2.0, 100.0];
        for b in q.transform_row(&row) {
            assert!(b >= 0.0 && b < q.vocab() as f32);
        }
    }

    #[test]
    fn quantizer_is_monotone_per_column() {
        let q = FeatureQuantizer::for_case_study(CaseStudy::ArrayDataflow);
        let lo = q.transform_row(&[5.0, 8.0, 8.0, 8.0]);
        let hi = q.transform_row(&[10.0, 800.0, 800.0, 800.0]);
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h);
        }
    }

    #[test]
    fn model_learns_a_simple_mapping() {
        // Label = coarse size class of M: trivially learnable from bins.
        let mut ds = Dataset::new(4, 3).unwrap();
        for i in 0..600 {
            let m = match i % 3 {
                0 => 8.0,
                1 => 256.0,
                _ => 8192.0,
            };
            ds.push(&[10.0, m, 64.0, 64.0], (i % 3) as u32).unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: 3,
                train: TrainConfig {
                    epochs: 20,
                    batch_size: 32,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let report = model.train(&ds).unwrap();
        assert!(report.history.final_train_accuracy() > 0.99);
        assert!(model.is_trained());
        assert_eq!(model.predict_row(&[10.0, 8.0, 64.0, 64.0]), 0);
        assert_eq!(model.predict_row(&[10.0, 8192.0, 64.0, 64.0]), 2);
    }

    #[test]
    fn model_is_deterministic() {
        let cfg = AirchitectConfig {
            num_classes: 5,
            ..Default::default()
        };
        let a = AirchitectModel::new(CaseStudy::ArrayDataflow, &cfg);
        let b = AirchitectModel::new(CaseStudy::ArrayDataflow, &cfg);
        let row = [9.0, 100.0, 200.0, 300.0];
        assert_eq!(a.predict_row(&row), b.predict_row(&row));
    }

    #[test]
    fn classifier_trait_name() {
        let m = AirchitectModel::new(CaseStudy::ArrayDataflow, &AirchitectConfig::default());
        assert_eq!(Classifier::name(&m), "AIrchitect");
    }
}
