//! Rolling drift statistics over shadow-scored queries, and the policy
//! deciding when accumulated disagreement justifies a fine-tune cycle.

use std::collections::VecDeque;
use std::sync::Mutex;

use airchitect_telemetry::metrics::{
    SERVE_SHADOW_AGREEMENT, SERVE_SHADOW_ORACLE_MEAN_US,
};

/// Snapshot of the drift monitor's rolling window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStats {
    /// Observations currently in the window.
    pub window_samples: u64,
    /// Disagreements currently in the window.
    pub window_disagreements: u64,
    /// Top-1 model-vs-oracle agreement over the window (1.0 when empty).
    pub agreement: f64,
    /// Mean oracle search latency over the window, microseconds.
    pub oracle_mean_us: f64,
    /// Observations since construction (never reset).
    pub total_samples: u64,
    /// Disagreements since construction (never reset).
    pub total_disagreements: u64,
}

struct MonitorInner {
    window: VecDeque<(bool, u64)>,
    capacity: usize,
    total_samples: u64,
    total_disagreements: u64,
}

impl MonitorInner {
    fn stats(&self) -> DriftStats {
        let n = self.window.len() as u64;
        let disagreements =
            self.window.iter().filter(|(agree, _)| !agree).count() as u64;
        let agreement = if n == 0 {
            1.0
        } else {
            (n - disagreements) as f64 / n as f64
        };
        let oracle_mean_us = if n == 0 {
            0.0
        } else {
            self.window.iter().map(|(_, us)| *us).sum::<u64>() as f64 / n as f64
        };
        DriftStats {
            window_samples: n,
            window_disagreements: disagreements,
            agreement,
            oracle_mean_us,
            total_samples: self.total_samples,
            total_disagreements: self.total_disagreements,
        }
    }
}

/// Rolling window over shadow observations, publishing
/// `serve.shadow.agreement` and `serve.shadow.oracle_mean_us` gauges on
/// every observation.
pub struct DriftMonitor {
    inner: Mutex<MonitorInner>,
}

impl DriftMonitor {
    /// A monitor keeping the most recent `window` observations (min 1).
    pub fn new(window: usize) -> DriftMonitor {
        DriftMonitor {
            inner: Mutex::new(MonitorInner {
                window: VecDeque::new(),
                capacity: window.max(1),
                total_samples: 0,
                total_disagreements: 0,
            }),
        }
    }

    /// Record one shadow-scored query and return the updated stats.
    pub fn observe(&self, agree: bool, oracle_us: u64) -> DriftStats {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.window.len() == inner.capacity {
            inner.window.pop_front();
        }
        inner.window.push_back((agree, oracle_us));
        inner.total_samples += 1;
        if !agree {
            inner.total_disagreements += 1;
        }
        let stats = inner.stats();
        SERVE_SHADOW_AGREEMENT.set(stats.agreement);
        SERVE_SHADOW_ORACLE_MEAN_US.set(stats.oracle_mean_us);
        stats
    }

    /// Current stats without recording anything.
    pub fn stats(&self) -> DriftStats {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats()
    }

    /// Clear the rolling window (totals are kept). Called after a
    /// fine-tune + reload cycle so the next trigger measures the new model.
    pub fn reset_window(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.window.clear();
    }
}

/// When to fire a fine-tune cycle: the window must be warm, hold enough
/// disagreements to learn from, and show agreement at or below the
/// trigger threshold. All three conditions must hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePolicy {
    /// Minimum window observations before the policy may fire.
    pub min_samples: u64,
    /// Minimum disagreements in the window (a fine-tune needs rows).
    pub min_disagreements: u64,
    /// Fire only while rolling agreement is at or below this.
    pub max_agreement: f64,
}

impl Default for OnlinePolicy {
    fn default() -> Self {
        OnlinePolicy {
            min_samples: 32,
            min_disagreements: 8,
            max_agreement: 0.95,
        }
    }
}

impl OnlinePolicy {
    /// Should a fine-tune cycle fire on these stats?
    pub fn should_fine_tune(&self, stats: &DriftStats) -> bool {
        stats.window_samples >= self.min_samples
            && stats.window_disagreements >= self.min_disagreements
            && stats.agreement <= self.max_agreement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_window_tracks_agreement_and_latency() {
        let m = DriftMonitor::new(4);
        assert_eq!(m.stats().agreement, 1.0);
        m.observe(true, 100);
        m.observe(false, 200);
        let s = m.observe(false, 300);
        assert_eq!(s.window_samples, 3);
        assert_eq!(s.window_disagreements, 2);
        assert!((s.agreement - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.oracle_mean_us - 200.0).abs() < 1e-9);
        // Window evicts oldest: four more agreements push the misses out.
        for _ in 0..4 {
            m.observe(true, 100);
        }
        let s = m.stats();
        assert_eq!(s.window_samples, 4);
        assert_eq!(s.agreement, 1.0);
        assert_eq!(s.total_samples, 7);
        assert_eq!(s.total_disagreements, 2);
        m.reset_window();
        let s = m.stats();
        assert_eq!(s.window_samples, 0);
        assert_eq!(s.total_samples, 7);
    }

    #[test]
    fn policy_requires_all_three_conditions() {
        let policy = OnlinePolicy {
            min_samples: 4,
            min_disagreements: 2,
            max_agreement: 0.75,
        };
        let m = DriftMonitor::new(16);
        // Warm but fully agreeing: no trigger.
        for _ in 0..4 {
            m.observe(true, 10);
        }
        assert!(!policy.should_fine_tune(&m.stats()));
        // One disagreement: still under min_disagreements.
        m.observe(false, 10);
        assert!(!policy.should_fine_tune(&m.stats()));
        // Second disagreement drops agreement to 4/6 ≤ 0.75: fires.
        m.observe(false, 10);
        assert!(policy.should_fine_tune(&m.stats()));
    }
}
