//! The versioned misprediction record written by the shadow-oracle pool.
//!
//! One record per sampled query: the features the model saw, the label it
//! answered, the label the exhaustive DSE oracle computed, the model
//! generation the answer was scored against, and how long the oracle
//! search took. The wire format is one JSONL line in the telemetry sink
//! schema (`"type":"shadow"`), validated by
//! [`airchitect_telemetry::report::parse_report`].

use std::fmt::Write as _;

use airchitect::CaseStudy;
use airchitect_telemetry::json::{self, Value};
use airchitect_telemetry::report::SHADOW_RECORD_VERSION;
use airchitect_telemetry::SCHEMA_VERSION;

/// Wire name of a case study, matching the serve route segment.
pub fn case_name(case: CaseStudy) -> &'static str {
    match case {
        CaseStudy::ArrayDataflow => "array",
        CaseStudy::BufferSizing => "buffers",
        CaseStudy::MultiArrayScheduling => "schedule",
    }
}

/// Inverse of [`case_name`].
pub fn case_from_name(name: &str) -> Option<CaseStudy> {
    match name {
        "array" => Some(CaseStudy::ArrayDataflow),
        "buffers" => Some(CaseStudy::BufferSizing),
        "schedule" => Some(CaseStudy::MultiArrayScheduling),
        _ => None,
    }
}

/// One shadow-scored query: model answer vs oracle answer, stamped with the
/// model generation it was scored against.
#[derive(Debug, Clone, PartialEq)]
pub struct MispredRecord {
    /// Which case study the query targeted.
    pub case: CaseStudy,
    /// The encoded feature row the model saw (`input_dim()` entries).
    pub features: Vec<f32>,
    /// The served model's top-1 label.
    pub model_label: u32,
    /// The exhaustive DSE oracle's label.
    pub oracle_label: u32,
    /// Hub generation of the model that produced `model_label`.
    pub model_version: u64,
    /// Wall-clock microseconds the oracle search took.
    pub oracle_us: u64,
}

impl MispredRecord {
    /// Did the model's top-1 disagree with the oracle?
    pub fn is_disagreement(&self) -> bool {
        self.model_label != self.oracle_label
    }

    /// Render as one JSONL line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128 + 8 * self.features.len());
        let _ = write!(
            out,
            "{{\"v\":{SCHEMA_VERSION},\"type\":\"shadow\",\"rv\":{SHADOW_RECORD_VERSION},\
             \"case\":\"{}\",\"model_version\":{},\"model_label\":{},\
             \"oracle_label\":{},\"oracle_us\":{},\"features\":[",
            case_name(self.case),
            self.model_version,
            self.model_label,
            self.oracle_label,
            self.oracle_us,
        );
        for (i, f) in self.features.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, f64::from(*f));
        }
        out.push_str("]}");
        out
    }

    /// Parse one JSONL line previously produced by [`MispredRecord::render`].
    pub fn parse(line: &str) -> Result<MispredRecord, String> {
        let v = json::parse(line)?;
        Self::from_value(&v)
    }

    /// Build a record from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<MispredRecord, String> {
        fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer \"{key}\""))
        }
        fn u32_field(v: &Value, key: &str) -> Result<u32, String> {
            u32::try_from(u64_field(v, key)?)
                .map_err(|_| format!("\"{key}\" out of range"))
        }
        if v.get("type").and_then(Value::as_str) != Some("shadow") {
            return Err("not a shadow record".to_string());
        }
        if u64_field(v, "rv")? != SHADOW_RECORD_VERSION {
            return Err("unsupported shadow record version".to_string());
        }
        let case_str = v
            .get("case")
            .and_then(Value::as_str)
            .ok_or("missing \"case\"")?;
        let case =
            case_from_name(case_str).ok_or_else(|| format!("unknown case \"{case_str}\""))?;
        let features = v
            .get("features")
            .and_then(Value::as_arr)
            .ok_or("missing \"features\"")?
            .iter()
            .map(|f| f.as_f64().map(|x| x as f32))
            .collect::<Option<Vec<f32>>>()
            .ok_or("non-numeric feature")?;
        if features.is_empty() {
            return Err("empty feature row".to_string());
        }
        Ok(MispredRecord {
            case,
            features,
            model_label: u32_field(v, "model_label")?,
            oracle_label: u32_field(v, "oracle_label")?,
            model_version: u64_field(v, "model_version")?,
            oracle_us: u64_field(v, "oracle_us")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect_telemetry::report;

    fn sample() -> MispredRecord {
        MispredRecord {
            case: CaseStudy::ArrayDataflow,
            features: vec![15.0, 64.0, 64.0, 3.0],
            model_label: 17,
            oracle_label: 4,
            model_version: 2,
            oracle_us: 135,
        }
    }

    #[test]
    fn roundtrips_through_jsonl() {
        for case in CaseStudy::ALL {
            let rec = MispredRecord {
                case,
                features: (0..case.input_dim()).map(|i| i as f32 * 1.5).collect(),
                ..sample()
            };
            let line = rec.render();
            assert_eq!(MispredRecord::parse(&line).unwrap(), rec);
        }
    }

    #[test]
    fn rendered_line_passes_report_validator() {
        let text = format!(
            concat!(
                "{{\"v\":1,\"type\":\"meta\",\"schema\":\"airchitect.telemetry\",",
                "\"schema_version\":1,\"command\":\"serve.shadow\"}}\n",
                "{}\n",
                "{{\"v\":1,\"type\":\"end\",\"events\":1}}\n",
            ),
            sample().render()
        );
        let r = report::parse_report(&text).unwrap();
        assert_eq!(r.shadow_records, 1);
        assert_eq!(r.shadow_disagreements, 1);
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(MispredRecord::parse("not json").is_err());
        let line = sample().render();
        assert!(MispredRecord::parse(&line.replace("\"rv\":1", "\"rv\":2")).is_err());
        assert!(
            MispredRecord::parse(&line.replace("\"case\":\"array\"", "\"case\":\"x\""))
                .is_err()
        );
        assert!(MispredRecord::parse(
            &line.replace("\"type\":\"shadow\"", "\"type\":\"event\"")
        )
        .is_err());
        assert!(MispredRecord::parse(
            &line.replace("\"model_label\":17", "\"model_label\":4294967296")
        )
        .is_err());
    }
}
