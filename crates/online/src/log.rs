//! The rotating misprediction log: an append-only directory of JSONL
//! segments, each a self-contained, schema-valid telemetry file.
//!
//! Writers ([`MispredLog`]) are single-owner: in cluster mode every replica
//! opens its own log with a pid-scoped prefix, so a shared directory never
//! sees interleaved writes. The reader ([`read_dir`]) is tolerant by
//! design — it scans every `*.jsonl` file, keeps whatever complete shadow
//! records it finds, and counts (rather than fails on) torn trailing lines
//! and foreign content, because logs are routinely read while a server is
//! still appending or after one was killed mid-write.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use airchitect_telemetry::json::{self, Value};
use airchitect_telemetry::rotate::{read_lines_tolerant, RotateConfig, RotatingWriter};
use airchitect_telemetry::{SCHEMA_NAME, SCHEMA_VERSION};

use crate::record::MispredRecord;

/// Command string stamped into each segment's meta line.
const LOG_COMMAND: &str = "serve.shadow";

/// Append-side handle over a rotating sequence of misprediction segments.
///
/// Every segment is book-ended with the telemetry sink's meta and end
/// lines, so the strict `report` validator accepts each file on its own.
/// Records are flushed per append: a crash loses at most the line being
/// written (which the tolerant reader then reports as torn).
#[derive(Debug)]
pub struct MispredLog {
    w: RotatingWriter,
    /// Shadow records written to the *active* segment.
    events: u64,
}

impl MispredLog {
    /// Open segment `<prefix>.0.jsonl` under `dir` and write its meta line.
    pub fn create(dir: &Path, prefix: &str, config: RotateConfig) -> io::Result<MispredLog> {
        let w = RotatingWriter::create(dir, prefix, config)?;
        let mut log = MispredLog { w, events: 0 };
        log.write_meta()?;
        Ok(log)
    }

    fn write_meta(&mut self) -> io::Result<()> {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"v\":{SCHEMA_VERSION},\"type\":\"meta\",\"schema\":\"{SCHEMA_NAME}\",\
             \"schema_version\":{SCHEMA_VERSION},\"command\":"
        );
        json::write_escaped(&mut line, LOG_COMMAND);
        line.push('}');
        self.w.write_line(&line)
    }

    fn end_line(&self) -> String {
        format!(
            "{{\"v\":{SCHEMA_VERSION},\"type\":\"end\",\"events\":{}}}",
            self.events
        )
    }

    /// Append one record, rotating first (footer on the old segment, header
    /// on the new) when the next line would cross a rotation boundary.
    pub fn append(&mut self, rec: &MispredRecord) -> io::Result<()> {
        let line = rec.render();
        if self.w.should_rotate(line.len() + 1) {
            let end = self.end_line();
            self.w.write_line(&end)?;
            self.w.rotate()?;
            self.events = 0;
            self.write_meta()?;
        }
        self.w.write_line(&line)?;
        self.events += 1;
        Ok(())
    }

    /// Path of the active segment.
    pub fn path(&self) -> &Path {
        self.w.path()
    }

    /// Write the active segment's end line and close the log.
    pub fn close(mut self) -> io::Result<()> {
        let end = self.end_line();
        self.w.write_line(&end)
    }
}

/// Result of scanning a misprediction-log directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogScan {
    /// Every complete shadow record found, in (file name, line) order.
    pub records: Vec<MispredRecord>,
    /// `*.jsonl` files scanned.
    pub segments: usize,
    /// Segments whose final line was torn (writer killed mid-append).
    pub torn_segments: u64,
    /// Complete lines that were not valid shadow records and not
    /// recognised meta/end book-ends.
    pub skipped_lines: u64,
}

/// Scan `dir` for misprediction records across every `*.jsonl` segment.
///
/// Files are visited in lexicographic name order so replay is
/// deterministic. Meta and end lines are skipped silently; anything else
/// that fails to parse as a shadow record is counted in
/// [`LogScan::skipped_lines`].
pub fn read_dir(dir: &Path) -> io::Result<LogScan> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "jsonl").unwrap_or(false))
        .collect();
    files.sort();

    let mut scan = LogScan::default();
    for path in files {
        scan.segments += 1;
        let (lines, torn) = read_lines_tolerant(&path)?;
        if torn {
            scan.torn_segments += 1;
        }
        for line in lines {
            let Ok(v) = json::parse(&line) else {
                scan.skipped_lines += 1;
                continue;
            };
            match v.get("type").and_then(Value::as_str) {
                Some("shadow") => match MispredRecord::from_value(&v) {
                    Ok(rec) => scan.records.push(rec),
                    Err(_) => scan.skipped_lines += 1,
                },
                Some("meta") | Some("end") => {}
                _ => scan.skipped_lines += 1,
            }
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect::CaseStudy;
    use airchitect_telemetry::report;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "airchitect-mispred-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(i: u32) -> MispredRecord {
        MispredRecord {
            case: CaseStudy::ArrayDataflow,
            features: vec![15.0, i as f32, 64.0, 3.0],
            model_label: i,
            oracle_label: i + 1,
            model_version: 1,
            oracle_us: 100 + u64::from(i),
        }
    }

    #[test]
    fn segments_are_valid_telemetry_files() {
        let dir = temp_dir("valid");
        // Small byte budget so a handful of records forces rotation.
        let config = RotateConfig {
            max_bytes: 400,
            max_age: None,
        };
        let mut log = MispredLog::create(&dir, "shadow-1", config).unwrap();
        for i in 0..10 {
            log.append(&rec(i)).unwrap();
        }
        log.close().unwrap();

        let segs =
            airchitect_telemetry::rotate::segments(&dir, "shadow-1").unwrap();
        assert!(segs.len() >= 2, "expected rotation, got {} segment(s)", segs.len());
        for seg in &segs {
            let text = fs::read_to_string(seg).unwrap();
            report::validate(&text).unwrap_or_else(|e| {
                panic!("segment {} failed validation: {e}", seg.display())
            });
        }

        let scan = read_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.torn_segments, 0);
        assert_eq!(scan.skipped_lines, 0);
        let labels: Vec<u32> = scan.records.iter().map(|r| r.model_label).collect();
        assert_eq!(labels, (0..10).collect::<Vec<_>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_tolerates_torn_and_foreign_lines() {
        let dir = temp_dir("torn");
        let mut log =
            MispredLog::create(&dir, "shadow-1", RotateConfig::default()).unwrap();
        log.append(&rec(0)).unwrap();
        log.append(&rec(1)).unwrap();
        // Simulate a writer killed mid-append: no end line, torn last line.
        let path = log.path().to_path_buf();
        drop(log);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"type\":\"shadow\",\"rv\":1,\"case\":\"arr");
        fs::write(&path, text).unwrap();
        // A foreign jsonl file with junk content.
        fs::write(dir.join("other.jsonl"), "junk\n{\"v\":1,\"type\":\"x\"}\n").unwrap();

        let scan = read_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.segments, 2);
        assert_eq!(scan.torn_segments, 1);
        assert_eq!(scan.skipped_lines, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn separate_prefixes_share_a_directory() {
        let dir = temp_dir("shared");
        let mut a =
            MispredLog::create(&dir, "shadow-100", RotateConfig::default()).unwrap();
        let mut b =
            MispredLog::create(&dir, "shadow-200", RotateConfig::default()).unwrap();
        a.append(&rec(0)).unwrap();
        b.append(&rec(1)).unwrap();
        a.close().unwrap();
        b.close().unwrap();
        let scan = read_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.segments, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
