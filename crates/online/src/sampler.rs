//! Deterministic request sampling and the bounded shadow-work queue.
//!
//! Sampling hashes the request's canonical cache key (FNV-1a folded through
//! a splitmix64 finalizer, the same construction as the cluster router's
//! ring) and admits the request when the hash lands under the configured
//! parts-per-million threshold. The decision is a pure function of the
//! query bytes, so replicas sample consistently, reruns are reproducible,
//! and a hot query is either always or never shadow-scored at a given rate.
//!
//! [`ShadowQueue`] decouples the request path from oracle scoring: pushes
//! never block (a full queue drops the sample and the caller counts it),
//! pops block in the low-priority worker pool.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// Denominator of the sampling rate: decisions are made in parts per
/// million.
pub const PPM: u64 = 1_000_000;

/// Convert a `0.0..=1.0` sampling rate to parts per million.
pub fn rate_to_ppm(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * PPM as f64).round() as u32
}

/// 64-bit hash of a canonical query key: FNV-1a over the bytes, then a
/// splitmix64 finalizer to spread the low bits the modulo below consumes.
pub fn hash_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic sampling decision for a canonical query key.
pub fn sampled(key: &[u8], rate_ppm: u32) -> bool {
    if rate_ppm == 0 {
        return false;
    }
    if u64::from(rate_ppm) >= PPM {
        return true;
    }
    hash_key(key) % PPM < u64::from(rate_ppm)
}

/// Why a [`ShadowQueue::push`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the sample is dropped (count it).
    Full,
    /// The pool is shutting down; no further work is accepted.
    Shutdown,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// Bounded MPMC queue between the request path and the shadow pool.
///
/// `push` is non-blocking by construction — backpressure is expressed as
/// [`PushError::Full`], never as latency on the serving path. `pop` blocks
/// until an item arrives or shutdown drains the queue.
pub struct ShadowQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> ShadowQueue<T> {
    /// A queue holding at most `capacity` pending samples (min 1).
    pub fn new(capacity: usize) -> ShadowQueue<T> {
        ShadowQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking; a full queue rejects the item.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.shutdown {
            return Err(PushError::Shutdown);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        self.cond.notify_one();
        Ok(())
    }

    /// Block until an item is available. After [`ShadowQueue::shutdown`],
    /// pending items are still drained; `None` means drained *and* shut
    /// down.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.shutdown {
                return None;
            }
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stop accepting work and wake every blocked worker; queued items are
    /// still delivered.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.shutdown = true;
        self.cond.notify_all();
    }

    /// Samples currently waiting.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Spawn `threads` low-priority workers draining `queue` through `work`.
///
/// Workers are plain dedicated threads — they never borrow capacity from
/// the batch-worker pool — and yield the CPU after every item so oracle
/// searches only soak up cycles the request path isn't using. Threads exit
/// when the queue is shut down and drained; join the handles to wait for
/// in-flight records to land.
pub fn spawn_pool<T, F>(
    queue: Arc<ShadowQueue<T>>,
    threads: usize,
    work: F,
) -> Vec<JoinHandle<()>>
where
    T: Send + 'static,
    F: Fn(T) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    (0..threads.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let work = Arc::clone(&work);
            thread::Builder::new()
                .name(format!("shadow-{i}"))
                .spawn(move || {
                    while let Some(item) = queue.pop() {
                        work(item);
                        thread::yield_now();
                    }
                })
                .expect("spawn shadow worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sampling_is_deterministic_and_rate_shaped() {
        assert!(!sampled(b"anything", 0));
        assert!(sampled(b"anything", PPM as u32));
        let rate = rate_to_ppm(0.25);
        let mut hits = 0;
        for i in 0..10_000u32 {
            let key = i.to_le_bytes();
            let first = sampled(&key, rate);
            assert_eq!(first, sampled(&key, rate));
            hits += usize::from(first);
        }
        // 25% ± generous slack; the hash is fixed so this is deterministic.
        assert!((1_700..=3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn queue_drops_when_full_and_drains_on_shutdown() {
        let q: ShadowQueue<u32> = ShadowQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full));
        q.shutdown();
        assert_eq!(q.push(4), Err(PushError::Shutdown));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pool_processes_all_items_then_exits() {
        let q = Arc::new(ShadowQueue::new(64));
        let seen = Arc::new(AtomicUsize::new(0));
        let handles = spawn_pool(Arc::clone(&q), 2, {
            let seen = Arc::clone(&seen);
            move |_item: u32| {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        for i in 0..50 {
            while q.push(i).is_err() {
                thread::yield_now();
            }
        }
        q.shutdown();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::SeqCst), 50);
    }
}
