//! Closed-loop online learning for the AIrchitect recommender.
//!
//! The offline pipeline trains the recommendation network once, on
//! exhaustively-enumerated labels. At serve time the exact DSE oracle is
//! still available (it powers `--fallback search`), which means the serving
//! fleet sits on a free stream of ground truth. This crate closes the loop:
//!
//! 1. **Sampling** ([`sampler`]) — a deterministic hash over the request's
//!    canonical cache key admits a configurable fraction of live queries
//!    into a bounded shadow queue. The queue never blocks the request path:
//!    when full, samples are dropped and counted.
//! 2. **Shadow scoring** — a low-priority background pool (spawned by
//!    [`sampler::spawn_pool`]; the server wires the work closure) replays
//!    each sampled query against both the served model and the exact DSE
//!    oracle, and appends a versioned record to the misprediction log.
//! 3. **Misprediction log** ([`record`], [`log`]) — rotating JSONL segments
//!    in the telemetry sink schema, each self-contained (meta line, shadow
//!    records, end line) so the `report` validator accepts every segment.
//! 4. **Drift monitor** ([`drift`]) — rolling top-1-agreement and
//!    oracle-latency gauges plus an [`drift::OnlinePolicy`] deciding when
//!    accumulated disagreement justifies a fine-tune cycle.
//! 5. **Fine-tuning** ([`tune`]) — `train --from-log` replays the log,
//!    filters to disagreements for the served model version, and continues
//!    training the existing checkpoint with a reduced learning rate under
//!    the usual divergence guards. The resulting artifact is pushed through
//!    the server's atomic `/v1/reload`.

#![warn(missing_docs)]

pub mod drift;
pub mod log;
pub mod record;
pub mod sampler;
pub mod tune;

pub use drift::{DriftMonitor, DriftStats, OnlinePolicy};
pub use log::{read_dir, LogScan, MispredLog};
pub use record::MispredRecord;
pub use sampler::{sampled, ShadowQueue};
pub use tune::{fine_tune, FineTuneOptions, FineTuneOutcome};
