//! Replay the misprediction log into a fine-tune pass over the current
//! checkpoint.
//!
//! Fine-tuning *continues* training the existing network — it never
//! rebuilds from scratch — with a reduced learning rate and few epochs, so
//! a drifted model moves toward the oracle without forgetting the offline
//! corpus wholesale. The usual divergence guards
//! ([`airchitect_nn::train::TrainError::Diverged`]) apply unchanged.

use airchitect::model::TrainReport;
use airchitect::{AirchitectModel, CaseStudy};
use airchitect_data::Dataset;
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::{TrainConfig, TrainError};

use crate::record::MispredRecord;

/// Knobs for one fine-tune pass. Defaults are deliberately gentle: a tenth
/// of the offline learning rate and a handful of epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineTuneOptions {
    /// Passes over the disagreement set.
    pub epochs: usize,
    /// Reduced Adam learning rate.
    pub lr: f32,
    /// Minibatch size (clamped to the disagreement-set size by the
    /// training loop).
    pub batch_size: usize,
    /// Kernel threads (deterministic at any value).
    pub threads: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for FineTuneOptions {
    fn default() -> Self {
        FineTuneOptions {
            epochs: 4,
            lr: 1e-4,
            batch_size: 64,
            threads: 1,
            seed: 0,
        }
    }
}

/// What a fine-tune pass did with the replayed records.
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneOutcome {
    /// Records replayed (all cases, all versions).
    pub records_seen: u64,
    /// Records for this model's case study whose model answer disagreed
    /// with the oracle.
    pub disagreements: u64,
    /// Deduplicated disagreement rows actually trained on.
    pub used_rows: u64,
    /// The model version the pass trained against (the newest version
    /// present in the log for this case).
    pub target_version: u64,
    /// Records skipped because they were scored against an older model
    /// version than `target_version`.
    pub skipped_cross_version: u64,
    /// Records skipped because their case study didn't match the model.
    pub skipped_other_case: u64,
    /// Records skipped because the oracle label or feature width fell
    /// outside the model's space (a log written against a different space).
    pub skipped_out_of_space: u64,
    /// Training report, or `None` when no usable disagreements were found
    /// (the model is returned untouched in that case).
    pub report: Option<TrainReport>,
}

/// Fine-tune errors: only training itself can fail; an empty or
/// cross-version log yields an outcome with `report: None` instead.
#[derive(Debug)]
pub enum FineTuneError {
    /// The underlying incremental training pass failed (including the
    /// divergence guard).
    Train(TrainError),
}

impl std::fmt::Display for FineTuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FineTuneError::Train(e) => write!(f, "fine-tune training failed: {e}"),
        }
    }
}

impl std::error::Error for FineTuneError {}

/// Replay `records` and fine-tune `model` on the disagreements scored
/// against the newest model version present for its case study.
///
/// Cross-version records are skipped (a record scored against generation N
/// says nothing reliable about generation N+1's behaviour), as are records
/// for other case studies and records whose oracle label or feature width
/// doesn't fit the model's space. Duplicate feature rows are trained once.
pub fn fine_tune(
    model: &mut AirchitectModel,
    records: &[MispredRecord],
    opts: &FineTuneOptions,
) -> Result<FineTuneOutcome, FineTuneError> {
    let case: CaseStudy = model.case_study();
    let dim = case.input_dim();
    let classes = model.config().num_classes;

    let mut outcome = FineTuneOutcome {
        records_seen: records.len() as u64,
        disagreements: 0,
        used_rows: 0,
        target_version: 0,
        skipped_cross_version: 0,
        skipped_other_case: 0,
        skipped_out_of_space: 0,
        report: None,
    };

    outcome.target_version = records
        .iter()
        .filter(|r| r.case == case)
        .map(|r| r.model_version)
        .max()
        .unwrap_or(0);

    let mut ds = Dataset::new(dim, classes).expect("model dims are valid");
    let mut seen_rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for rec in records {
        if rec.case != case {
            outcome.skipped_other_case += 1;
            continue;
        }
        if rec.model_version != outcome.target_version {
            outcome.skipped_cross_version += 1;
            continue;
        }
        if rec.features.len() != dim || rec.oracle_label >= classes {
            outcome.skipped_out_of_space += 1;
            continue;
        }
        if !rec.is_disagreement() {
            continue;
        }
        outcome.disagreements += 1;
        let bits: Vec<u32> = rec.features.iter().map(|f| f.to_bits()).collect();
        let key = (bits, rec.oracle_label);
        if seen_rows.contains(&key) {
            continue;
        }
        ds.push(&rec.features, rec.oracle_label)
            .expect("row checked against model dims");
        seen_rows.push(key);
    }
    outcome.used_rows = ds.len() as u64;

    if ds.is_empty() {
        return Ok(outcome);
    }

    model.set_train_config(TrainConfig {
        epochs: opts.epochs,
        batch_size: opts.batch_size.min(ds.len()).max(1),
        optimizer: Optimizer::adam(opts.lr),
        seed: opts.seed,
        lr_decay: 1.0,
        threads: opts.threads.max(1),
    });
    let report = model.train(&ds).map_err(FineTuneError::Train)?;
    outcome.report = Some(report);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect::AirchitectConfig;
    use airchitect_dse::case1::Case1Problem;
    use airchitect_dse::space::Case1Space;
    use airchitect_workload::GemmWorkload;

    /// A tiny trained CS1 model over the 2^5-budget space (30 classes),
    /// mirroring the serve crate's reload test helper.
    fn tiny_model() -> (AirchitectModel, Case1Problem) {
        let space = Case1Space::new(1 << 5);
        let problem = Case1Problem::new(1 << 5);
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: space.len() as u32,
                train: TrainConfig {
                    epochs: 2,
                    batch_size: 8,
                    ..TrainConfig::default()
                },
                ..AirchitectConfig::default()
            },
        );
        let mut ds = Dataset::new(4, space.len() as u32).unwrap();
        for m in [8u64, 16, 32, 64] {
            let wl = GemmWorkload::new(m, 16, 32).unwrap();
            let label = problem.search(&wl, 1 << 5).label;
            ds.push(&Case1Problem::features(&wl, 1 << 5), label).unwrap();
        }
        model.train(&ds).unwrap();
        (model, problem)
    }

    fn rec(
        problem: &Case1Problem,
        m: u64,
        model_label: u32,
        version: u64,
    ) -> MispredRecord {
        let wl = GemmWorkload::new(m, 16, 32).unwrap();
        let oracle = problem.search(&wl, 1 << 5).label;
        MispredRecord {
            case: CaseStudy::ArrayDataflow,
            features: Case1Problem::features(&wl, 1 << 5).to_vec(),
            model_label,
            oracle_label: oracle,
            model_version: version,
            oracle_us: 50,
        }
    }

    #[test]
    fn trains_on_deduped_disagreements_and_skips_cross_version() {
        let (mut model, problem) = tiny_model();
        let oracle_128 = {
            let wl = GemmWorkload::new(128, 16, 32).unwrap();
            problem.search(&wl, 1 << 5).label
        };
        let records = vec![
            // Current-version disagreement (model answered label+1).
            rec(&problem, 128, oracle_128 + 1, 2),
            // Duplicate of the same row: deduped.
            rec(&problem, 128, oracle_128 + 1, 2),
            // Current-version agreement: filtered out.
            rec(&problem, 8, rec(&problem, 8, 0, 2).oracle_label, 2),
            // Stale version: skipped.
            rec(&problem, 64, 0, 1),
            // Other case study: skipped.
            MispredRecord {
                case: CaseStudy::BufferSizing,
                features: vec![0.0; 8],
                model_label: 0,
                oracle_label: 1,
                model_version: 2,
                oracle_us: 10,
            },
            // Oracle label outside this model's space: skipped.
            MispredRecord {
                oracle_label: 1_000_000,
                ..rec(&problem, 32, 0, 2)
            },
        ];
        let outcome = fine_tune(&mut model, &records, &FineTuneOptions::default())
            .unwrap();
        assert_eq!(outcome.records_seen, 6);
        assert_eq!(outcome.target_version, 2);
        assert_eq!(outcome.skipped_cross_version, 1);
        assert_eq!(outcome.skipped_other_case, 1);
        assert_eq!(outcome.skipped_out_of_space, 1);
        assert_eq!(outcome.disagreements, 2);
        assert_eq!(outcome.used_rows, 1);
        assert!(outcome.report.is_some());
    }

    #[test]
    fn empty_or_agreeing_log_leaves_model_untouched() {
        let (mut model, problem) = tiny_model();
        let before: Vec<u32> = (0..4)
            .map(|i| {
                let wl = GemmWorkload::new(8 << i, 16, 32).unwrap();
                model.predict_row(&Case1Problem::features(&wl, 1 << 5))
            })
            .collect();
        let outcome =
            fine_tune(&mut model, &[], &FineTuneOptions::default()).unwrap();
        assert!(outcome.report.is_none());
        assert_eq!(outcome.used_rows, 0);
        // All-agreement log: also a no-op.
        let agree = rec(&problem, 8, rec(&problem, 8, 0, 1).oracle_label, 1);
        let outcome =
            fine_tune(&mut model, &[agree], &FineTuneOptions::default()).unwrap();
        assert!(outcome.report.is_none());
        let after: Vec<u32> = (0..4)
            .map(|i| {
                let wl = GemmWorkload::new(8 << i, 16, 32).unwrap();
                model.predict_row(&Case1Problem::features(&wl, 1 << 5))
            })
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn fine_tune_moves_model_toward_oracle() {
        let (mut model, problem) = tiny_model();
        // Score a query the tiny model likely gets wrong, then fine-tune on
        // the disagreement until the model answers the oracle label.
        let wl = GemmWorkload::new(128, 24, 8).unwrap();
        let features = Case1Problem::features(&wl, 1 << 5);
        let oracle = problem.search(&wl, 1 << 5).label;
        let opts = FineTuneOptions {
            epochs: 8,
            lr: 5e-3,
            ..FineTuneOptions::default()
        };
        for _ in 0..20 {
            let model_label = model.predict_row(&features);
            if model_label == oracle {
                break;
            }
            let recd = MispredRecord {
                case: CaseStudy::ArrayDataflow,
                features: features.to_vec(),
                model_label,
                oracle_label: oracle,
                model_version: 1,
                oracle_us: 10,
            };
            fine_tune(&mut model, &[recd], &opts).unwrap();
        }
        assert_eq!(model.predict_row(&features), oracle);
    }
}
