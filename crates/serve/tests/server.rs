//! Integration: the full server over real sockets — routing, caching,
//! admission control, hot reload, and graceful shutdown.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::Duration;

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_nn::train::TrainConfig;
use airchitect_serve::client::HttpClient;
use airchitect_serve::{ServeConfig, ServeError, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Trains and persists one tiny model per case study, once per process.
fn model_file(case: CaseStudy) -> PathBuf {
    static FILES: OnceLock<[PathBuf; 3]> = OnceLock::new();
    let files = FILES.get_or_init(|| {
        // (feature_dim, classes): CS1 = the 2^5-budget space (30 labels),
        // CS2 = the paper's 1000-label grid, CS3 = the 1944-label space.
        let specs = [
            (CaseStudy::ArrayDataflow, 4usize, 30u32),
            (CaseStudy::BufferSizing, 8, 1000),
            (CaseStudy::MultiArrayScheduling, 12, 1944),
        ];
        specs.map(|(case, dim, classes)| {
            let mut ds = Dataset::new(dim, classes).unwrap();
            let mut row = vec![0f32; dim];
            for i in 0..240usize {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = ((i * 31 + j * 7) % 97) as f32;
                }
                ds.push(&row, (i as u32 * 13) % classes).unwrap();
            }
            let mut model = AirchitectModel::new(
                case,
                &AirchitectConfig {
                    num_classes: classes,
                    train: TrainConfig {
                        epochs: 2,
                        batch_size: 64,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            model.train(&ds).unwrap();
            let path = std::env::temp_dir().join(format!(
                "airchitect-serve-test-{}-{}.airm",
                std::process::id(),
                case.name().replace(' ', "-")
            ));
            persist::save(&model, &path).unwrap();
            path
        })
    });
    match case {
        CaseStudy::ArrayDataflow => files[0].clone(),
        CaseStudy::BufferSizing => files[1].clone(),
        CaseStudy::MultiArrayScheduling => files[2].clone(),
    }
}

fn all_models() -> Vec<PathBuf> {
    CaseStudy::ALL.iter().map(|&c| model_file(c)).collect()
}

type ServerHandle = JoinHandle<Result<(), ServeError>>;

fn start(config: ServeConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(&config).expect("server binds");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn default_config(models: Vec<PathBuf>) -> ServeConfig {
    ServeConfig {
        model_paths: models,
        read_timeout_secs: 30,
        ..ServeConfig::default()
    }
}

fn shutdown(addr: SocketAddr, handle: ServerHandle) {
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    handle
        .join()
        .expect("server thread must not panic")
        .expect("graceful shutdown must return Ok");
}

const ARRAY_BODY: &str = r#"{"m":128,"n":64,"k":256,"mac_budget":1024}"#;
const BUFFERS_BODY: &str = r#"{"m":256,"n":256,"k":256,"rows":32,"cols":32,"limit_kb":1500}"#;
const SCHEDULE_BODY: &str = r#"{"workloads":[{"m":64,"n":64,"k":64},{"m":128,"n":128,"k":128},{"m":256,"n":64,"k":32},{"m":96,"n":96,"k":96}]}"#;

#[test]
fn healthz_and_every_endpoint_answer() {
    let (addr, handle) = start(default_config(all_models()));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    for case in ["array", "buffers", "schedule"] {
        assert!(health.body.contains(case), "healthz lists `{case}`: {}", health.body);
    }

    for (path, body, expect) in [
        ("/v1/recommend/array", ARRAY_BODY, "\"dataflow\""),
        ("/v1/recommend/buffers", BUFFERS_BODY, "\"ifmap_kb\""),
        ("/v1/recommend/schedule", SCHEDULE_BODY, "\"assignments\""),
    ] {
        let resp = client.post(path, body).unwrap();
        assert_eq!(resp.status, 200, "{path}: {}", resp.body);
        assert!(resp.body.starts_with("{\"cached\":false,"), "{path}: {}", resp.body);
        assert!(resp.body.contains("\"result\":"), "{path}: {}", resp.body);
        assert!(resp.body.contains(expect), "{path}: {}", resp.body);
    }

    // Top-k returns a ranked list with scores.
    let body = r#"{"m":128,"n":64,"k":256,"mac_budget":1024,"topk":3}"#;
    let resp = client.post("/v1/recommend/array", body).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"results\":["), "{}", resp.body);
    assert!(resp.body.contains("\"score\":"), "{}", resp.body);

    shutdown(addr, handle);
}

#[test]
fn repeat_queries_hit_the_cache_and_metrics_show_it() {
    let (addr, handle) = start(default_config(all_models()));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let first = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(first.body.starts_with("{\"cached\":false,"), "{}", first.body);
    // Same query, different JSON formatting: still a cache hit.
    let reordered = r#"{ "mac_budget": 1024, "k": 256, "n": 64, "m": 128 }"#;
    let second = client.post("/v1/recommend/array", reordered).unwrap();
    assert!(second.body.starts_with("{\"cached\":true,"), "{}", second.body);
    // Identical payload after the flag.
    assert_eq!(
        first.body.trim_start_matches("{\"cached\":false,"),
        second.body.trim_start_matches("{\"cached\":true,"),
    );

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(k, v)| k == "serve.cache_hits" && v.parse::<u64>().unwrap_or(0) > 0)
        }),
        "metrics must report cache hits:\n{}",
        metrics.body
    );

    shutdown(addr, handle);
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // Depth 0 = every uncached request is rejected at admission.
    let config = ServeConfig {
        queue_depth: 0,
        cache_capacity: 0,
        ..default_config(vec![model_file(CaseStudy::ArrayDataflow)])
    };
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 429);
    assert_eq!(resp.retry_after, Some(1), "429 must carry Retry-After");
    shutdown(addr, handle);
}

#[test]
fn unloaded_case_answers_503() {
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/recommend/buffers", BUFFERS_BODY).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("model_not_loaded"), "{}", resp.body);
    shutdown(addr, handle);
}

#[test]
fn bad_requests_get_4xx_not_5xx() {
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    for (path, body, status) in [
        ("/v1/recommend/array", r#"{"m":0,"n":8,"k":8}"#, 400),
        ("/v1/recommend/array", "{not json", 400),
        ("/v1/recommend/array", r#"{"m":8,"n":8,"k":8,"oops":1}"#, 400),
        // A 2-MAC budget admits no array: domain-infeasible is 422.
        ("/v1/recommend/array", r#"{"m":8,"n":8,"k":8,"mac_budget":2}"#, 422),
        ("/v1/nope", "{}", 404),
    ] {
        let resp = client.post(path, body).unwrap();
        assert_eq!(resp.status, status, "{path} {body}: {}", resp.body);
    }
    let resp = client.get("/v1/reload").unwrap();
    assert_eq!(resp.status, 405);

    shutdown(addr, handle);
}

#[test]
fn reload_bumps_the_generation_and_invalidates_the_cache() {
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let first = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(first.body.contains("\"generation\":1"), "{}", first.body);
    let cached = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(cached.body.starts_with("{\"cached\":true,"), "{}", cached.body);

    let reload = client.post("/v1/reload", "").unwrap();
    assert_eq!(reload.status, 200, "{}", reload.body);
    assert!(reload.body.contains("\"generation\":2"), "{}", reload.body);

    // The old cache entry is generation-stale: recomputed, not served.
    let after = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(after.body.starts_with("{\"cached\":false,"), "{}", after.body);
    assert!(after.body.contains("\"generation\":2"), "{}", after.body);
    // And the fresh entry caches again.
    let again = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(again.body.starts_with("{\"cached\":true,"), "{}", again.body);

    shutdown(addr, handle);
}

#[test]
fn concurrent_load_with_reloads_never_sees_5xx() {
    const THREADS: usize = 6;
    const REQUESTS: usize = 60;
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));

    let workers: Vec<_> = (0..THREADS)
        .map(|tid| {
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
                for i in 0..REQUESTS {
                    if tid == 0 && i % 10 == 5 {
                        let resp = client.post("/v1/reload", "").unwrap();
                        assert_eq!(resp.status, 200, "reload: {}", resp.body);
                        continue;
                    }
                    let body = format!(
                        "{{\"m\":{},\"n\":64,\"k\":64,\"mac_budget\":1024}}",
                        8 + (tid * REQUESTS + i) % 32
                    );
                    let resp = client.post("/v1/recommend/array", &body).unwrap();
                    assert!(
                        resp.status < 500,
                        "5xx under reload load: {} {}",
                        resp.status,
                        resp.body
                    );
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("load thread panicked");
    }

    shutdown(addr, handle);
}
