//! Integration: the full server over real sockets — routing, caching,
//! admission control, hot reload, and graceful shutdown.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::Duration;

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_nn::train::TrainConfig;
use airchitect_serve::client::HttpClient;
use airchitect_serve::{ServeConfig, ServeError, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Trains and persists one tiny model per case study, once per process.
fn model_file(case: CaseStudy) -> PathBuf {
    static FILES: OnceLock<[PathBuf; 3]> = OnceLock::new();
    let files = FILES.get_or_init(|| {
        // (feature_dim, classes): CS1 = the 2^5-budget space (30 labels),
        // CS2 = the paper's 1000-label grid, CS3 = the 1944-label space.
        let specs = [
            (CaseStudy::ArrayDataflow, 4usize, 30u32),
            (CaseStudy::BufferSizing, 8, 1000),
            (CaseStudy::MultiArrayScheduling, 12, 1944),
        ];
        specs.map(|(case, dim, classes)| {
            let mut ds = Dataset::new(dim, classes).unwrap();
            let mut row = vec![0f32; dim];
            for i in 0..240usize {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = ((i * 31 + j * 7) % 97) as f32;
                }
                ds.push(&row, (i as u32 * 13) % classes).unwrap();
            }
            let mut model = AirchitectModel::new(
                case,
                &AirchitectConfig {
                    num_classes: classes,
                    train: TrainConfig {
                        epochs: 2,
                        batch_size: 64,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            model.train(&ds).unwrap();
            let path = std::env::temp_dir().join(format!(
                "airchitect-serve-test-{}-{}.airm",
                std::process::id(),
                case.name().replace(' ', "-")
            ));
            persist::save(&model, &path).unwrap();
            path
        })
    });
    match case {
        CaseStudy::ArrayDataflow => files[0].clone(),
        CaseStudy::BufferSizing => files[1].clone(),
        CaseStudy::MultiArrayScheduling => files[2].clone(),
    }
}

fn all_models() -> Vec<PathBuf> {
    CaseStudy::ALL.iter().map(|&c| model_file(c)).collect()
}

type ServerHandle = JoinHandle<Result<(), ServeError>>;

fn start(config: ServeConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(&config).expect("server binds");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn default_config(models: Vec<PathBuf>) -> ServeConfig {
    ServeConfig {
        model_paths: models,
        read_timeout_secs: 30,
        ..ServeConfig::default()
    }
}

fn shutdown(addr: SocketAddr, handle: ServerHandle) {
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    handle
        .join()
        .expect("server thread must not panic")
        .expect("graceful shutdown must return Ok");
}

const ARRAY_BODY: &str = r#"{"m":128,"n":64,"k":256,"mac_budget":1024}"#;
const BUFFERS_BODY: &str = r#"{"m":256,"n":256,"k":256,"rows":32,"cols":32,"limit_kb":1500}"#;
const SCHEDULE_BODY: &str = r#"{"workloads":[{"m":64,"n":64,"k":64},{"m":128,"n":128,"k":128},{"m":256,"n":64,"k":32},{"m":96,"n":96,"k":96}]}"#;

#[test]
fn healthz_and_every_endpoint_answer() {
    let (addr, handle) = start(default_config(all_models()));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    for case in ["array", "buffers", "schedule"] {
        assert!(health.body.contains(case), "healthz lists `{case}`: {}", health.body);
    }

    for (path, body, expect) in [
        ("/v1/recommend/array", ARRAY_BODY, "\"dataflow\""),
        ("/v1/recommend/buffers", BUFFERS_BODY, "\"ifmap_kb\""),
        ("/v1/recommend/schedule", SCHEDULE_BODY, "\"assignments\""),
    ] {
        let resp = client.post(path, body).unwrap();
        assert_eq!(resp.status, 200, "{path}: {}", resp.body);
        assert!(resp.body.starts_with("{\"cached\":false,"), "{path}: {}", resp.body);
        assert!(resp.body.contains("\"result\":"), "{path}: {}", resp.body);
        assert!(resp.body.contains(expect), "{path}: {}", resp.body);
    }

    // Top-k returns a ranked list with scores.
    let body = r#"{"m":128,"n":64,"k":256,"mac_budget":1024,"topk":3}"#;
    let resp = client.post("/v1/recommend/array", body).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"results\":["), "{}", resp.body);
    assert!(resp.body.contains("\"score\":"), "{}", resp.body);

    shutdown(addr, handle);
}

#[test]
fn repeat_queries_hit_the_cache_and_metrics_show_it() {
    let (addr, handle) = start(default_config(all_models()));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let first = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(first.body.starts_with("{\"cached\":false,"), "{}", first.body);
    // Same query, different JSON formatting: still a cache hit.
    let reordered = r#"{ "mac_budget": 1024, "k": 256, "n": 64, "m": 128 }"#;
    let second = client.post("/v1/recommend/array", reordered).unwrap();
    assert!(second.body.starts_with("{\"cached\":true,"), "{}", second.body);
    // Identical payload after the flag.
    assert_eq!(
        first.body.trim_start_matches("{\"cached\":false,"),
        second.body.trim_start_matches("{\"cached\":true,"),
    );

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(k, v)| k == "serve.cache_hits" && v.parse::<u64>().unwrap_or(0) > 0)
        }),
        "metrics must report cache hits:\n{}",
        metrics.body
    );

    shutdown(addr, handle);
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // Depth 0 = every uncached request is rejected at admission. The
    // single-query bypass would answer inline without touching the queue,
    // so it is disabled to exercise the admission-control path.
    let config = ServeConfig {
        queue_depth: 0,
        cache_capacity: 0,
        single_query_bypass: false,
        ..default_config(vec![model_file(CaseStudy::ArrayDataflow)])
    };
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 429);
    assert_eq!(resp.retry_after, Some(1), "429 must carry Retry-After");
    shutdown(addr, handle);
}

#[test]
fn unloaded_case_answers_503() {
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/recommend/buffers", BUFFERS_BODY).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("model_not_loaded"), "{}", resp.body);
    shutdown(addr, handle);
}

#[test]
fn bad_requests_get_4xx_not_5xx() {
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    for (path, body, status) in [
        ("/v1/recommend/array", r#"{"m":0,"n":8,"k":8}"#, 400),
        ("/v1/recommend/array", "{not json", 400),
        ("/v1/recommend/array", r#"{"m":8,"n":8,"k":8,"oops":1}"#, 400),
        // A 2-MAC budget admits no array: domain-infeasible is 422.
        ("/v1/recommend/array", r#"{"m":8,"n":8,"k":8,"mac_budget":2}"#, 422),
        ("/v1/nope", "{}", 404),
    ] {
        let resp = client.post(path, body).unwrap();
        assert_eq!(resp.status, status, "{path} {body}: {}", resp.body);
    }
    let resp = client.get("/v1/reload").unwrap();
    assert_eq!(resp.status, 405);

    shutdown(addr, handle);
}

#[test]
fn reload_bumps_the_generation_and_invalidates_the_cache() {
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let first = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(first.body.contains("\"generation\":1"), "{}", first.body);
    let cached = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(cached.body.starts_with("{\"cached\":true,"), "{}", cached.body);

    let reload = client.post("/v1/reload", "").unwrap();
    assert_eq!(reload.status, 200, "{}", reload.body);
    assert!(reload.body.contains("\"generation\":2"), "{}", reload.body);

    // The old cache entry is generation-stale: recomputed, not served.
    let after = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(after.body.starts_with("{\"cached\":false,"), "{}", after.body);
    assert!(after.body.contains("\"generation\":2"), "{}", after.body);
    // And the fresh entry caches again.
    let again = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert!(again.body.starts_with("{\"cached\":true,"), "{}", again.body);

    shutdown(addr, handle);
}

#[test]
fn expired_deadline_answers_504_before_any_work() {
    // `X-Deadline-Ms: 0` is an already-expired budget: deterministic 504
    // at admission, no queueing, no inference.
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client
        .post_with_deadline("/v1/recommend/array", ARRAY_BODY, 0)
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert!(resp.body.contains("deadline_exceeded"), "{}", resp.body);

    // A generous budget answers normally and reports the metric.
    let resp = client
        .post_with_deadline("/v1/recommend/array", ARRAY_BODY, 30_000)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let metrics = client.get("/metrics").unwrap();
    assert!(
        metrics.body.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(k, v)| k == "serve.deadline_exceeded" && v.parse::<u64>().unwrap_or(0) > 0)
        }),
        "metrics must count deadline_exceeded:\n{}",
        metrics.body
    );
    shutdown(addr, handle);
}

#[test]
fn draining_server_answers_503_with_retry_after() {
    let config = ServeConfig {
        read_timeout_secs: 5,
        ..default_config(vec![model_file(CaseStudy::ArrayDataflow)])
    };
    let (addr, handle) = start(config);
    // B's connection is accepted *before* the drain starts; its request
    // lands while the server is shutting down.
    let mut drainer = HttpClient::connect(addr, TIMEOUT).unwrap();
    let mut late = HttpClient::connect(addr, TIMEOUT).unwrap();
    // Make sure `late` is fully established (thread spawned) first.
    let health = late.get("/healthz").unwrap();
    assert_eq!(health.status, 200);

    let resp = drainer.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    let resp = late.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("draining"), "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1), "503 draining must carry Retry-After");
    handle.join().unwrap().unwrap();
}

#[test]
fn slow_reader_cannot_wedge_the_server_or_shutdown() {
    // Short socket timeouts: a client that sends one request and then
    // neither reads nor writes must not hold a connection thread (and
    // therefore graceful shutdown) hostage.
    let config = ServeConfig {
        read_timeout_secs: 1,
        write_timeout_secs: 1,
        ..default_config(vec![model_file(CaseStudy::ArrayDataflow)])
    };
    let (addr, handle) = start(config);

    let raw = std::net::TcpStream::connect(addr).unwrap();
    {
        use std::io::Write;
        let mut w = raw.try_clone().unwrap();
        let req = format!(
            "POST /v1/recommend/array HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{ARRAY_BODY}",
            ARRAY_BODY.len()
        );
        w.write_all(req.as_bytes()).unwrap();
        w.flush().unwrap();
    }
    // Never read the response; keep the socket open while other clients
    // are served.
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    for _ in 0..3 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    // Graceful shutdown must complete despite the silent connection: the
    // 1s read timeout reclaims its thread.
    shutdown(addr, handle);
    drop(raw);
}

#[test]
fn fallback_serves_the_search_answer_for_a_missing_model() {
    use airchitect_dse::case2::{Case2Problem, Case2Query};
    use airchitect_sim::{ArrayConfig, Dataflow};
    use airchitect_workload::GemmWorkload;

    // Register a CS1 model plus a path that does not exist; tolerant
    // (fallback) startup serves anyway.
    let bogus = std::env::temp_dir().join(format!(
        "airchitect-serve-test-{}-missing.airm",
        std::process::id()
    ));
    let config = ServeConfig {
        fallback_search: true,
        ..default_config(vec![model_file(CaseStudy::ArrayDataflow), bogus])
    };
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    // Degraded is visible before any traffic: the registered model is
    // missing.
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"status\":\"degraded\""), "{}", health.body);
    assert!(health.body.contains("\"load_errors\":[\""), "{}", health.body);

    // The loaded CS1 model answers normally, stamped source=model.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"source\":\"model\""), "{}", resp.body);
    assert!(resp.warning.is_none());

    // The unloaded CS2 case falls back to exhaustive search: 200 with
    // source=search and a Warning header, and the answer matches the DSE
    // oracle exactly.
    let resp = client.post("/v1/recommend/buffers", BUFFERS_BODY).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"source\":\"search\""), "{}", resp.body);
    assert!(resp.warning.is_some(), "fallback must carry a Warning header");

    let oracle = Case2Problem::new();
    let expect = oracle.search(&Case2Query {
        workload: GemmWorkload::new(256, 256, 256).unwrap(),
        array: ArrayConfig::new(32, 32).unwrap(),
        dataflow: Dataflow::Os,
        bandwidth: 16,
        limit_kb: 1500,
    });
    let (i, f, o) = oracle.space().decode(expect.label).unwrap();
    let rendered = format!("\"ifmap_kb\":{i},\"filter_kb\":{f},\"ofmap_kb\":{o}");
    assert!(resp.body.contains(&rendered), "{} !~ {rendered}", resp.body);

    // Fallback answers are never cached.
    let again = client.post("/v1/recommend/buffers", BUFFERS_BODY).unwrap();
    assert!(again.body.starts_with("{\"cached\":false,"), "{}", again.body);

    shutdown(addr, handle);
}

#[test]
fn degradation_ladder_is_table_driven() {
    // Each rung of the degradation ladder, from least to most degraded,
    // with the exact status + code contract a client can program against.
    struct Case {
        name: &'static str,
        config: ServeConfig,
        deadline_ms: Option<u64>,
        status: u16,
        marker: &'static str,
        retry_after: Option<u64>,
    }
    let cases = [
        Case {
            name: "healthy",
            config: default_config(vec![model_file(CaseStudy::ArrayDataflow)]),
            deadline_ms: None,
            status: 200,
            marker: "\"source\":\"model\"",
            retry_after: None,
        },
        Case {
            name: "queue-full",
            // Bypass disabled: this rung is about queue admission, which
            // an inline answer would never reach.
            config: ServeConfig {
                queue_depth: 0,
                cache_capacity: 0,
                single_query_bypass: false,
                ..default_config(vec![model_file(CaseStudy::ArrayDataflow)])
            },
            deadline_ms: None,
            status: 429,
            marker: "queue_full",
            retry_after: Some(1),
        },
        Case {
            name: "deadline-expired",
            config: default_config(vec![model_file(CaseStudy::ArrayDataflow)]),
            deadline_ms: Some(0),
            status: 504,
            marker: "deadline_exceeded",
            retry_after: None,
        },
        Case {
            name: "missing-model-without-fallback",
            config: default_config(vec![model_file(CaseStudy::BufferSizing)]),
            deadline_ms: None,
            status: 503,
            marker: "model_not_loaded",
            retry_after: None,
        },
        Case {
            name: "missing-model-with-fallback",
            config: ServeConfig {
                fallback_search: true,
                ..default_config(vec![model_file(CaseStudy::BufferSizing)])
            },
            deadline_ms: None,
            status: 200,
            marker: "\"source\":\"search\"",
            retry_after: None,
        },
    ];
    for case in cases {
        let (addr, handle) = start(case.config);
        let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
        let resp = match case.deadline_ms {
            Some(ms) => client
                .post_with_deadline("/v1/recommend/array", ARRAY_BODY, ms)
                .unwrap(),
            None => client.post("/v1/recommend/array", ARRAY_BODY).unwrap(),
        };
        assert_eq!(resp.status, case.status, "{}: {}", case.name, resp.body);
        assert!(
            resp.body.contains(case.marker),
            "{}: expected `{}` in {}",
            case.name,
            case.marker,
            resp.body
        );
        assert_eq!(resp.retry_after, case.retry_after, "{}", case.name);
        shutdown(addr, handle);
    }
}

#[test]
fn reload_swaps_the_quantized_model_and_bypass_answers_from_it() {
    use airchitect::Recommender;
    use airchitect_dse::case1::Case1Problem;
    use airchitect_dse::space::Case1Space;
    use airchitect_workload::GemmWorkload;

    fn train_cs1(label_mul: u32, seed: u64) -> AirchitectModel {
        let mut ds = Dataset::new(4, 30).unwrap();
        let mut row = [0f32; 4];
        for i in 0..240usize {
            for (j, v) in row.iter_mut().enumerate() {
                *v = ((i * 31 + j * 7) % 97) as f32;
            }
            ds.push(&row, (i as u32 * label_mul) % 30).unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: 30,
                seed,
                train: TrainConfig {
                    epochs: 2,
                    batch_size: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).unwrap();
        model
    }

    let path = std::env::temp_dir().join(format!(
        "airchitect-serve-quant-reload-{}.airm",
        std::process::id()
    ));
    persist::save(&train_cs1(13, 0), &path).unwrap();
    let (addr, handle) = start(default_config(vec![path.clone()]));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let first = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.contains("\"generation\":1"), "{}", first.body);

    // Swap a differently-trained model onto the same path and hot-reload:
    // the quantized artifact must be rebuilt, and the embedding memo's
    // id-stamping must make every old row miss.
    let model_b = train_cs1(7, 99);
    persist::save(&model_b, &path).unwrap();
    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // Compute model B's own int8 fast answer in-process; the served body
    // must match it exactly — an answer from A's quantized weights (a
    // stale memo row or an unswapped artifact) would not.
    let rec = Recommender::new(model_b).unwrap();
    assert!(rec.quantized().is_some(), "embedding MLP must quantize");
    let space = Case1Space::from_len(30).expect("30-label CS1 space");
    let problem = Case1Problem::new(space.mac_budget());
    let wl = GemmWorkload::new(128, 64, 256).unwrap();
    let (array, df) = rec.recommend_array_fast(&problem, &wl, 1024).unwrap();
    let expected = format!(
        "\"rows\":{},\"cols\":{},\"macs\":{},\"dataflow\":\"{df}\"",
        array.rows(),
        array.cols(),
        array.macs()
    );
    let after = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    assert!(after.body.contains("\"cached\":false"), "reload must invalidate the cache: {}", after.body);
    assert!(after.body.contains("\"generation\":2"), "{}", after.body);
    assert!(after.body.contains(&expected), "{} !~ {expected}", after.body);

    // The inline path actually served these: the bypass counter moved and
    // the quantized pass touched the embedding memo.
    let metrics = client.get("/metrics").unwrap();
    let counter = |name: &str| {
        metrics
            .body
            .lines()
            .find_map(|l| {
                l.split_once(' ')
                    .filter(|(k, _)| *k == name)
                    .and_then(|(_, v)| v.parse::<u64>().ok())
            })
            .unwrap_or(0)
    };
    assert!(counter("serve.bypass") > 0, "{}", metrics.body);
    assert!(counter("quant.memo_misses") > 0, "{}", metrics.body);

    shutdown(addr, handle);
}

#[test]
fn concurrent_load_with_reloads_never_sees_5xx() {
    const THREADS: usize = 6;
    const REQUESTS: usize = 60;
    let (addr, handle) = start(default_config(vec![model_file(CaseStudy::ArrayDataflow)]));

    let workers: Vec<_> = (0..THREADS)
        .map(|tid| {
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
                for i in 0..REQUESTS {
                    if tid == 0 && i % 10 == 5 {
                        let resp = client.post("/v1/reload", "").unwrap();
                        assert_eq!(resp.status, 200, "reload: {}", resp.body);
                        continue;
                    }
                    let body = format!(
                        "{{\"m\":{},\"n\":64,\"k\":64,\"mac_budget\":1024}}",
                        8 + (tid * REQUESTS + i) % 32
                    );
                    let resp = client.post("/v1/recommend/array", &body).unwrap();
                    assert!(
                        resp.status < 500,
                        "5xx under reload load: {} {}",
                        resp.status,
                        resp.body
                    );
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("load thread panicked");
    }

    shutdown(addr, handle);
}

// --- Safe-rollout suite: registry mode, canary evaluation, rollback ---

fn train_cs1_variant(label_mul: u32, seed: u64) -> AirchitectModel {
    let mut ds = Dataset::new(4, 30).unwrap();
    let mut row = [0f32; 4];
    for i in 0..240usize {
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((i * 31 + j * 7) % 97) as f32;
        }
        ds.push(&row, (i as u32 * label_mul) % 30).unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: 30,
            seed,
            train: TrainConfig {
                epochs: 2,
                batch_size: 64,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).unwrap();
    model
}

/// Fresh registry dir + incumbent artifact for one rollout test.
fn rollout_fixture(name: &str, canary_split: f64) -> (PathBuf, ServeConfig) {
    let dir = std::env::temp_dir().join(format!(
        "airchitect-serve-rollout-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let seed_path = dir.join("seed.airm");
    persist::save(&train_cs1_variant(13, 0), &seed_path).unwrap();
    let config = ServeConfig {
        model_paths: vec![seed_path],
        model_dir: Some(dir.clone()),
        canary_split,
        canary_min_samples: 3,
        canary_min_agreement: 0.9,
        canary_max_p99_ratio: 1e9, // latency gate off: CI machines jitter
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };
    (dir, config)
}

/// Polls `/healthz` until the rollout state machine is idle, driving
/// sampled traffic between polls, and returns the final healthz body.
fn drive_until_idle(client: &mut HttpClient, traffic: &[String]) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        for body in traffic {
            let resp = client.post("/v1/recommend/array", body).unwrap();
            assert!(resp.status < 500, "{} {}", resp.status, resp.body);
        }
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        if health.body.contains("\"state\":\"idle\"") {
            return health.body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "rollout never settled: {}",
            health.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Satellite regression: the reload acknowledgement must carry the loaded
/// model version, the new generation, and the rollout state object — and
/// `/healthz` must expose the same rollout state.
#[test]
fn reload_ack_reports_version_generation_and_rollout_state() {
    let (dir, config) = rollout_fixture("ack", 0.0);
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"reloaded\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"generation\":2"), "{}", resp.body);
    assert!(resp.body.contains("\"version\":1"), "{}", resp.body);
    assert!(resp.body.contains("\"rollout\":{"), "{}", resp.body);
    assert!(resp.body.contains("\"state\":\"idle\""), "{}", resp.body);
    assert!(resp.body.contains("\"registry\":true"), "{}", resp.body);

    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"rollout\":{"), "{}", health.body);
    assert!(health.body.contains("\"version\":1"), "{}", health.body);
    assert!(health.body.contains("\"last\":\"none\""), "{}", health.body);

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a canary split, a reload body naming an explicit candidate —
/// what the rolling cluster coordinator sends each replica — must swap to
/// exactly that artifact and report `last: "promoted"` so the
/// coordinator's verdict poll advances. A candidate that cannot load
/// answers 409 and keeps the incumbent serving.
#[test]
fn immediate_reload_honors_explicit_candidate_path() {
    let (dir, config) = rollout_fixture("immediate", 0.0);
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let candidate = dir.join("candidate.airm");
    persist::save(&train_cs1_variant(17, 9), &candidate).unwrap();
    let body = format!("{{\"path\":{:?},\"version\":2}}", candidate.display().to_string());
    let resp = client.post("/v1/reload", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"reloaded\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"generation\":2"), "{}", resp.body);

    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"last\":\"promoted\""), "{}", health.body);
    assert!(health.body.contains("\"state\":\"idle\""), "{}", health.body);

    // A corrupt explicit candidate is rejected; the swapped model stays.
    let bad = dir.join("bad.airm");
    std::fs::write(&bad, b"definitely not a model artifact").unwrap();
    let body = format!("{{\"path\":{:?},\"version\":3}}", bad.display().to_string());
    let resp = client.post("/v1/reload", &body).unwrap();
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(resp.body.contains("reload_failed"), "{}", resp.body);
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"generation\":2"), "{}", health.body);

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A staged candidate that agrees with the incumbent must promote after
/// the sample quota: disk registry first (MANIFEST + current.airm), then
/// the in-memory swap, with `/healthz` reporting the new version.
#[test]
fn canary_promotes_an_agreeing_candidate_and_persists_it() {
    use airchitect_serve::registry::Registry;

    let (dir, config) = rollout_fixture("promote", 1.0);
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    // Register the identical artifact as v2 out-of-process, the way
    // `train --from-log --model-dir` stages a fine-tune.
    {
        let bytes = std::fs::read(dir.join("seed.airm")).unwrap();
        let mut reg = Registry::open(&dir, 3).unwrap();
        assert_eq!(reg.add_version(&bytes).unwrap(), 2);
    }

    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"staged\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"reloaded\":false"), "{}", resp.body);
    assert!(resp.body.contains("\"state\":\"evaluating\""), "{}", resp.body);
    assert!(resp.body.contains("\"version\":2"), "{}", resp.body);

    // A second reload during evaluation is refused.
    let dup = client.post("/v1/reload", "").unwrap();
    assert_eq!(dup.status, 409, "{}", dup.body);
    assert!(dup.body.contains("rollout_in_progress"), "{}", dup.body);

    // Identical weights agree on every sampled query: 3 samples promote.
    let traffic: Vec<String> = (0..4)
        .map(|i| format!("{{\"m\":{},\"n\":64,\"k\":256,\"mac_budget\":1024}}", 64 + i * 32))
        .collect();
    let health = drive_until_idle(&mut client, &traffic);
    assert!(health.contains("\"last\":\"promoted\""), "{health}");
    assert!(health.contains("\"version\":2"), "{health}");

    // Disk agrees: the MANIFEST promoted v2 and current.airm was rewritten.
    let reg = Registry::open(&dir, 3).unwrap();
    assert_eq!(reg.manifest().active, Some(2));
    assert!(reg.current_path().exists());

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A candidate that disagrees with the incumbent must lose the vote:
/// automatic rollback, version quarantined in the MANIFEST, incumbent
/// still serving, and the same artifact refused on re-registration.
#[test]
fn canary_rolls_back_and_quarantines_a_disagreeing_candidate() {
    use airchitect::Recommender;
    use airchitect_dse::case1::Case1Problem;
    use airchitect_dse::space::Case1Space;
    use airchitect_serve::registry::{Registry, RegistryError};
    use airchitect_workload::GemmWorkload;

    let (dir, config) = rollout_fixture("rollback", 1.0);

    // Find a query where the two trainings actually disagree, so the
    // agreement gate trips deterministically.
    let model_a = train_cs1_variant(13, 0);
    let model_b = train_cs1_variant(7, 99);
    let rec_a = Recommender::new(model_a).unwrap();
    let rec_b = Recommender::new(model_b).unwrap();
    let space = Case1Space::from_len(30).expect("30-label CS1 space");
    let problem = Case1Problem::new(space.mac_budget());
    let disagreeing_m = (1..=32u64)
        .map(|i| i * 16)
        .find(|&m| {
            let wl = GemmWorkload::new(m, 64, 256).unwrap();
            rec_a.recommend_array_fast(&problem, &wl, 1024).unwrap()
                != rec_b.recommend_array_fast(&problem, &wl, 1024).unwrap()
        })
        .expect("differently-trained models must disagree somewhere");

    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    {
        let bytes = persist::to_bytes(rec_b.model());
        let mut reg = Registry::open(&dir, 3).unwrap();
        assert_eq!(reg.add_version(&bytes).unwrap(), 2);
    }
    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"staged\":true"), "{}", resp.body);

    let traffic = vec![format!(
        "{{\"m\":{disagreeing_m},\"n\":64,\"k\":256,\"mac_budget\":1024}}"
    )];
    let health = drive_until_idle(&mut client, &traffic);
    assert!(health.contains("\"last\":\"rolled_back\""), "{health}");
    assert!(health.contains("\"version\":1"), "incumbent must survive: {health}");

    // The MANIFEST quarantined v2 and re-registering the identical
    // artifact is refused — known-bad weights cannot re-enter the pipe.
    let mut reg = Registry::open(&dir, 3).unwrap();
    assert_eq!(reg.manifest().active, Some(1));
    let entry = reg.manifest().entries.iter().find(|e| e.version == 2).unwrap();
    assert!(entry.quarantined, "{:?}", reg.manifest());
    assert!(matches!(
        reg.add_version(&persist::to_bytes(rec_b.model())),
        Err(RegistryError::Quarantined { version: 2, .. })
    ));

    // With the only candidate quarantined, another reload has nothing to
    // stage; `/v1/rollback` with nothing in flight is an idempotent no-op.
    let none = client.post("/v1/reload", "").unwrap();
    assert_eq!(none.status, 409, "{}", none.body);
    assert!(none.body.contains("no_candidate"), "{}", none.body);
    let rb = client.post("/v1/rollback", "").unwrap();
    assert_eq!(rb.status, 200, "{}", rb.body);
    assert!(rb.body.contains("\"rolled_back\":false"), "{}", rb.body);

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An artifact that cannot even load (corrupt bytes) must fail at the
/// staging step: 409, immediate quarantine, incumbent untouched.
#[test]
fn corrupt_candidate_fails_staging_and_is_quarantined() {
    use airchitect_serve::registry::Registry;

    let (dir, config) = rollout_fixture("corrupt", 1.0);
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    {
        let mut reg = Registry::open(&dir, 3).unwrap();
        assert_eq!(reg.add_version(b"not a model at all").unwrap(), 2);
    }
    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(resp.body.contains("stage_failed"), "{}", resp.body);

    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"last\":\"rolled_back\""), "{}", health.body);
    assert!(health.body.contains("\"version\":1"), "{}", health.body);

    // Serving is unaffected and the bad version is quarantined on disk.
    let ok = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);
    let reg = Registry::open(&dir, 3).unwrap();
    assert_eq!(reg.manifest().active, Some(1));
    assert!(reg.manifest().entries.iter().any(|e| e.version == 2 && e.quarantined));

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
