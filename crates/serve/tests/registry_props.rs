//! Property-based tests for the model-registry MANIFEST codec: the
//! checksum must catch arbitrary corruption, the ordering and
//! active-pointer invariants must hold for arbitrary version sets, and a
//! well-formed manifest must roundtrip through parse exactly.

use airchitect_data::integrity::append_crc_footer;
use airchitect_serve::registry::{Manifest, RegistryError, VersionEntry};
use proptest::prelude::*;

/// Renders manifest text the way the registry does (header, optional
/// `active` line, one `version` line per entry, CRC32 footer). Kept
/// independent of the private `Manifest::render` so the tests pin the
/// on-disk format, not the implementation.
fn render(active: Option<u64>, entries: &[(u64, u32, bool)]) -> Vec<u8> {
    let mut out = String::from("AIRREG 1\n");
    if let Some(v) = active {
        out.push_str(&format!("active {v}\n"));
    }
    for &(version, fp, quarantined) in entries {
        out.push_str(&format!(
            "version {version} fp {fp:#010x} {}\n",
            if quarantined { "quarantined" } else { "ok" }
        ));
    }
    let mut bytes = out.into_bytes();
    append_crc_footer(&mut bytes);
    bytes
}

/// Strictly increasing distinct versions with arbitrary fingerprints and
/// quarantine flags.
fn entries_strategy() -> impl Strategy<Value = Vec<(u64, u32, bool)>> {
    proptest::collection::vec((1u64..50, any::<u32>(), any::<bool>()), 1..8).prop_map(|mut v| {
        v.sort_by_key(|e| e.0);
        v.dedup_by_key(|e| e.0);
        v
    })
}

proptest! {
    /// A well-formed manifest roundtrips through parse with every field
    /// intact.
    #[test]
    fn valid_manifest_roundtrips(
        entries in entries_strategy(),
        pick_active in any::<bool>(),
        active_idx in 0usize..8,
    ) {
        // Point active at a non-quarantined entry when one was picked.
        let ok: Vec<u64> = entries
            .iter()
            .filter(|e| !e.2)
            .map(|e| e.0)
            .collect();
        let active = (pick_active && !ok.is_empty()).then(|| ok[active_idx % ok.len()]);
        let parsed = Manifest::parse(&render(active, &entries)).unwrap();
        prop_assert_eq!(parsed.active, active);
        prop_assert_eq!(parsed.entries.len(), entries.len());
        for (got, want) in parsed.entries.iter().zip(&entries) {
            let expect = VersionEntry {
                version: want.0,
                fingerprint: want.1,
                quarantined: want.2,
            };
            prop_assert_eq!(*got, expect);
        }
    }

    /// Flipping any single bit anywhere in the file — header, body, or
    /// footer — is rejected. CRC32 detects every single-bit error, so
    /// this holds deterministically, not probabilistically.
    #[test]
    fn any_single_bit_flip_is_rejected(
        entries in entries_strategy(),
        bit in any::<usize>(),
    ) {
        let mut bytes = render(None, &entries);
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(Manifest::parse(&bytes).is_err());
    }

    /// Truncating the file from the end is rejected: either the footer is
    /// gone or the checksum no longer matches.
    #[test]
    fn truncation_is_rejected(
        entries in entries_strategy(),
        cut in 1usize..64,
    ) {
        let bytes = render(None, &entries);
        let cut = 1 + cut % (bytes.len() - 1);
        prop_assert!(Manifest::parse(&bytes[..bytes.len() - cut]).is_err());
    }

    /// Version lines out of strictly increasing order are rejected even
    /// when the checksum is valid (re-rendered after the swap).
    #[test]
    fn out_of_order_versions_are_rejected(
        entries in entries_strategy(),
        i in any::<usize>(),
    ) {
        prop_assume!(entries.len() >= 2);
        let mut shuffled = entries;
        let i = i % (shuffled.len() - 1);
        shuffled.swap(i, i + 1);
        let err = Manifest::parse(&render(None, &shuffled)).unwrap_err();
        prop_assert!(matches!(err, RegistryError::Corrupt(_)), "got {err:?}");
    }

    /// Duplicate version numbers are rejected (strictly increasing means
    /// no repeats either).
    #[test]
    fn duplicate_versions_are_rejected(
        entries in entries_strategy(),
        i in any::<usize>(),
    ) {
        let mut dup = entries;
        let i = i % dup.len();
        let copy = dup[i];
        dup.insert(i + 1, copy);
        prop_assert!(Manifest::parse(&render(None, &dup)).is_err());
    }

    /// An active pointer naming a quarantined or absent version is
    /// rejected: the fleet must never boot a rolled-back artifact.
    #[test]
    fn active_must_name_an_ok_entry(
        entries in entries_strategy(),
        idx in any::<usize>(),
        missing in 100u64..200,
    ) {
        // Active pointing at a version with no entry at all.
        prop_assert!(Manifest::parse(&render(Some(missing), &entries)).is_err());
        // Active pointing at a quarantined entry.
        let mut poisoned = entries;
        let i = idx % poisoned.len();
        poisoned[i].2 = true;
        let victim = poisoned[i].0;
        prop_assert!(Manifest::parse(&render(Some(victim), &poisoned)).is_err());
    }
}
