//! Chaos integration: the server under injected faults — breaker trips and
//! half-open recovery, deadlines under injected latency, reload corruption,
//! accept-loop fault retry, and the degraded-mode fallback when a circuit
//! is open. Compiled only with `--features chaos`.

#![cfg(feature = "chaos")]

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_nn::train::TrainConfig;
use airchitect_serve::client::HttpClient;
use airchitect_serve::{ServeConfig, ServeError, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

/// The chaos registry is process-global; serialize every test and always
/// leave the registry clean.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        airchitect_chaos::reset();
    }
}

fn chaos(cfg: &str) -> ChaosGuard {
    let guard = chaos_lock();
    airchitect_chaos::reset();
    airchitect_chaos::configure_str(cfg).expect("valid chaos config");
    ChaosGuard { _lock: guard }
}

fn cs1_model_file() -> PathBuf {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let mut ds = Dataset::new(4, 30).unwrap();
        let mut row = [0f32; 4];
        for i in 0..240usize {
            for (j, v) in row.iter_mut().enumerate() {
                *v = ((i * 31 + j * 7) % 97) as f32;
            }
            ds.push(&row, (i as u32 * 13) % 30).unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: 30,
                train: TrainConfig {
                    epochs: 2,
                    batch_size: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).unwrap();
        let path = std::env::temp_dir().join(format!(
            "airchitect-serve-chaos-{}.airm",
            std::process::id()
        ));
        persist::save(&model, &path).unwrap();
        path
    })
    .clone()
}

type ServerHandle = JoinHandle<Result<(), ServeError>>;

fn start(config: ServeConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(&config).expect("server binds");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn config(breaker_threshold: u32, cooldown_ms: u64, fallback: bool) -> ServeConfig {
    ServeConfig {
        model_paths: vec![cs1_model_file()],
        read_timeout_secs: 30,
        cache_capacity: 0, // no caching: every request must reach a worker
        breaker_threshold,
        breaker_cooldown_ms: cooldown_ms,
        fallback_search: fallback,
        ..ServeConfig::default()
    }
}

fn shutdown(addr: SocketAddr, handle: ServerHandle) {
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    handle.join().unwrap().unwrap();
}

const ARRAY_BODY: &str = r#"{"m":128,"n":64,"k":256,"mac_budget":1024}"#;

#[test]
fn breaker_opens_after_injected_failures_and_half_open_recovers() {
    let _guard = chaos("serve.infer=err(other):1:3");
    let (addr, handle) = start(config(3, 150, false));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    // Three injected inference failures: each surfaces as a 500 and counts
    // against the breaker.
    for i in 0..3 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 500, "request {i}: {}", resp.body);
        assert!(resp.body.contains("inference_failed"), "{}", resp.body);
    }
    // The circuit is now open: fail-fast 503 without touching the model.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("circuit_open"), "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1));

    // Open circuits degrade /healthz and are visible in /metrics.
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"status\":\"degraded\""), "{}", health.body);
    assert!(health.body.contains("\"array\":\"open\""), "{}", health.body);
    let metrics = client.get("/metrics").unwrap();
    assert!(
        metrics.body.contains("serve.breaker_state.array 1"),
        "{}",
        metrics.body
    );
    // Counters are process-global and cumulative across tests: assert
    // presence and positivity, not an exact value.
    assert!(
        metrics.body.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(k, v)| k == "serve.breaker_opens" && v.parse::<u64>().unwrap_or(0) > 0)
        }),
        "{}",
        metrics.body
    );

    // After the cooldown the next request is the half-open probe; the
    // failpoint is exhausted, so it succeeds and closes the circuit.
    std::thread::sleep(Duration::from_millis(200));
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 200, "probe must recover: {}", resp.body);
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    assert!(health.body.contains("\"array\":\"closed\""), "{}", health.body);

    shutdown(addr, handle);
}

#[test]
fn open_circuit_with_fallback_serves_the_search_answer() {
    let _guard = chaos("serve.infer=err(other):1:2");
    let (addr, handle) = start(config(2, 60_000, true));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    for _ in 0..2 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 500, "{}", resp.body);
    }
    // Circuit open + fallback configured: degraded 200, not a 503.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"source\":\"search\""), "{}", resp.body);
    assert!(resp.warning.is_some(), "fallback must carry Warning");

    // The search answer is the exhaustive optimum for this workload.
    use airchitect_dse::case1::Case1Problem;
    use airchitect_workload::GemmWorkload;
    let problem = Case1Problem::new(1 << 18);
    let found = problem.search(&GemmWorkload::new(128, 64, 256).unwrap(), 1024);
    let (array, df) = problem.space().decode(found.label).unwrap();
    let rendered = format!(
        "\"rows\":{},\"cols\":{},\"macs\":{},\"dataflow\":\"{df}\"",
        array.rows(),
        array.cols(),
        array.macs()
    );
    assert!(resp.body.contains(&rendered), "{} !~ {rendered}", resp.body);

    shutdown(addr, handle);
}

#[test]
fn injected_worker_stall_turns_into_a_timely_504() {
    let _guard = chaos("serve.batch.dispatch=delay(600):1:1");
    // Bypass disabled: the stall is injected on the *worker* dispatch
    // path, and the 504-at-deadline contract is about a connection thread
    // abandoning a stuck worker.
    let (addr, handle) = start(ServeConfig {
        deadline_ms: 150,
        single_query_bypass: false,
        ..config(0, 0, false)
    });
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let started = std::time::Instant::now();
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert!(resp.body.contains("deadline_exceeded"), "{}", resp.body);
    // The 504 must be answered at the deadline, not after the stall ends.
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "504 answered after {}ms",
        started.elapsed().as_millis()
    );

    // Once the injected stall drains, the server answers normally.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    shutdown(addr, handle);
}

#[test]
fn injected_worker_panic_is_isolated_to_one_500() {
    let _guard = chaos("serve.batch.dispatch=panic:1:1");
    // Bypass disabled: the panic is injected on the worker dispatch path.
    let (addr, handle) = start(ServeConfig {
        single_query_bypass: false,
        ..config(0, 0, false)
    });
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("inference_panic"), "{}", resp.body);
    // The worker survived; later requests are answered.
    for _ in 0..3 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    shutdown(addr, handle);
}

#[test]
fn injected_panic_on_the_bypass_is_isolated_to_one_500() {
    // `serve.infer` fires inside `execute_fast`, so with the bypass
    // enabled (the default) the panic lands on the *connection* thread —
    // it must be caught there exactly like the worker catches its own.
    let _guard = chaos("serve.infer=panic:1:1");
    let (addr, handle) = start(config(0, 0, false));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("inference_panic"), "{}", resp.body);
    // The connection (and server) survived; later requests are answered.
    for _ in 0..3 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    shutdown(addr, handle);
}

#[test]
fn reload_faults_409_then_trip_the_reload_breaker() {
    // Start clean so the initial load at bind time succeeds, then inject
    // read faults that only the reload path will hit.
    let _guard = chaos("");
    let (addr, handle) = start(config(2, 60_000, false));
    airchitect_chaos::configure_str("serve.reload.read=err(other):1:2").unwrap();
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    // Two injected read failures: each reload answers 409 and the old
    // model keeps serving.
    for _ in 0..2 {
        let resp = client.post("/v1/reload", "").unwrap();
        assert_eq!(resp.status, 409, "{}", resp.body);
        assert!(resp.body.contains("reload_failed"), "{}", resp.body);
        let ok = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(ok.status, 200, "old model must keep serving");
    }
    // The reload circuit is now open: fail fast without touching disk.
    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("circuit_open"), "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1));
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"reload\":\"open\""), "{}", health.body);

    shutdown(addr, handle);
}

#[test]
fn injected_accept_errors_are_retried_not_fatal() {
    let _guard = chaos("serve.listener.accept=err(other):1:5");
    let (addr, handle) = start(config(0, 0, false));
    // Every connection still gets through: the accept loop backs off and
    // retries, and pending sockets wait in the kernel backlog.
    for _ in 0..3 {
        let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    assert!(airchitect_chaos::fired("serve.listener.accept") >= 1);
    shutdown(addr, handle);
}

// --- Safe-rollout chaos: injected faults on the registry persist paths ---

/// Fresh registry dir + canary config for one chaos rollout test.
fn rollout_config(name: &str) -> (PathBuf, ServeConfig) {
    let dir = std::env::temp_dir().join(format!(
        "airchitect-chaos-rollout-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    (
        dir.clone(),
        ServeConfig {
            model_paths: vec![cs1_model_file()],
            model_dir: Some(dir),
            canary_split: 1.0,
            canary_min_samples: 2,
            canary_min_agreement: 0.9,
            canary_max_p99_ratio: 1e9,
            read_timeout_secs: 30,
            ..ServeConfig::default()
        },
    )
}

/// Drives sampled traffic until the rollout settles, returning healthz.
fn settle(client: &mut HttpClient) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        for m in [64u64, 96, 128] {
            let body = format!("{{\"m\":{m},\"n\":64,\"k\":256,\"mac_budget\":1024}}");
            let resp = client.post("/v1/recommend/array", &body).unwrap();
            assert!(resp.status < 500, "{} {}", resp.status, resp.body);
        }
        let health = client.get("/healthz").unwrap();
        if health.body.contains("\"state\":\"idle\"") {
            return health.body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "rollout never settled: {}",
            health.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A promote that cannot persist must fail the rollout — incumbent keeps
/// serving, registry state unchanged, candidate NOT quarantined (the
/// artifact was fine) — and a retry after the fault clears promotes.
#[test]
fn injected_promote_persist_failure_fails_the_rollout_then_recovers() {
    use airchitect_serve::registry::Registry;

    let _guard = chaos(""); // clean: bind-time seeding must succeed
    let (dir, config) = rollout_config("promote-fault");
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    {
        let bytes = std::fs::read(dir.join("current.airm")).unwrap();
        let mut reg = Registry::open(&dir, 3).unwrap();
        assert_eq!(reg.add_version(&bytes).unwrap(), 2);
    }
    airchitect_chaos::configure_str("registry.promote=err(other):1:1").unwrap();

    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"staged\":true"), "{}", resp.body);
    let health = settle(&mut client);
    assert!(health.contains("\"last\":\"rolled_back\""), "{health}");
    assert!(health.contains("\"version\":1"), "{health}");

    // The artifact itself was fine: not quarantined, so the retry (fault
    // exhausted) stages the same version again and promotes cleanly.
    {
        let reg = Registry::open(&dir, 3).unwrap();
        assert_eq!(reg.manifest().active, Some(1));
        assert!(reg.manifest().entries.iter().any(|e| e.version == 2 && !e.quarantined));
    }
    let retry = client.post("/v1/reload", "").unwrap();
    assert_eq!(retry.status, 200, "{}", retry.body);
    let health = settle(&mut client);
    assert!(health.contains("\"last\":\"promoted\""), "{health}");
    assert!(health.contains("\"version\":2"), "{health}");
    assert_eq!(Registry::open(&dir, 3).unwrap().manifest().active, Some(2));

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A quarantine whose MANIFEST write fails must not take the server down:
/// the stage failure still answers 409, serving continues, and the
/// persist error is surfaced through /healthz load_errors.
#[test]
fn injected_quarantine_persist_failure_is_surfaced_not_fatal() {
    use airchitect_serve::registry::Registry;

    let _guard = chaos("");
    let (dir, config) = rollout_config("quarantine-fault");
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    {
        let mut reg = Registry::open(&dir, 3).unwrap();
        assert_eq!(reg.add_version(b"corrupt artifact bytes").unwrap(), 2);
    }
    airchitect_chaos::configure_str("registry.quarantine=err(other):1:1").unwrap();

    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(resp.body.contains("stage_failed"), "{}", resp.body);
    let ok = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(ok.status, 200, "incumbent must keep serving");
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("quarantine"), "persist failure must surface: {}", health.body);
    // The failed quarantine left the entry promotable on disk — and the
    // next stage attempt (fault exhausted) quarantines it for real.
    let retry = client.post("/v1/reload", "").unwrap();
    assert_eq!(retry.status, 409, "{}", retry.body);
    let reg = Registry::open(&dir, 3).unwrap();
    assert!(reg.manifest().entries.iter().any(|e| e.version == 2 && e.quarantined));

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Clone-mutate-store-commit: a MANIFEST write fault mid-promote leaves
/// both the on-disk file and the in-memory registry on the old state.
#[test]
fn injected_manifest_write_failure_keeps_registry_atomic() {
    use airchitect_serve::registry::Registry;

    let _guard = chaos("");
    let dir = std::env::temp_dir().join(format!(
        "airchitect-chaos-manifest-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut reg = Registry::open(&dir, 3).unwrap();
    let v1 = reg.add_version(b"one").unwrap();
    reg.promote(v1).unwrap();
    let v2 = reg.add_version(b"two").unwrap();

    airchitect_chaos::configure_str("registry.manifest.write=err(other):1:1").unwrap();
    assert!(reg.promote(v2).is_err(), "injected write fault must surface");
    // `current.airm` is written before the MANIFEST, so it may already
    // hold v2's bytes — the manifest pointer is what must not tear.
    assert_eq!(reg.manifest().active, Some(v1), "memory keeps old state");
    let reopened = Registry::open(&dir, 3).unwrap();
    assert_eq!(reopened.manifest().active, Some(v1), "disk keeps old state");

    // Fault exhausted: the same promote now lands.
    reg.promote(v2).unwrap();
    assert_eq!(reg.manifest().active, Some(v2));
    assert_eq!(std::fs::read(dir.join("current.airm")).unwrap(), b"two");
    let _ = std::fs::remove_dir_all(&dir);
}
