//! Chaos integration: the server under injected faults — breaker trips and
//! half-open recovery, deadlines under injected latency, reload corruption,
//! accept-loop fault retry, and the degraded-mode fallback when a circuit
//! is open. Compiled only with `--features chaos`.

#![cfg(feature = "chaos")]

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_nn::train::TrainConfig;
use airchitect_serve::client::HttpClient;
use airchitect_serve::{ServeConfig, ServeError, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

/// The chaos registry is process-global; serialize every test and always
/// leave the registry clean.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        airchitect_chaos::reset();
    }
}

fn chaos(cfg: &str) -> ChaosGuard {
    let guard = chaos_lock();
    airchitect_chaos::reset();
    airchitect_chaos::configure_str(cfg).expect("valid chaos config");
    ChaosGuard { _lock: guard }
}

fn cs1_model_file() -> PathBuf {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let mut ds = Dataset::new(4, 30).unwrap();
        let mut row = [0f32; 4];
        for i in 0..240usize {
            for (j, v) in row.iter_mut().enumerate() {
                *v = ((i * 31 + j * 7) % 97) as f32;
            }
            ds.push(&row, (i as u32 * 13) % 30).unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: 30,
                train: TrainConfig {
                    epochs: 2,
                    batch_size: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).unwrap();
        let path = std::env::temp_dir().join(format!(
            "airchitect-serve-chaos-{}.airm",
            std::process::id()
        ));
        persist::save(&model, &path).unwrap();
        path
    })
    .clone()
}

type ServerHandle = JoinHandle<Result<(), ServeError>>;

fn start(config: ServeConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(&config).expect("server binds");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn config(breaker_threshold: u32, cooldown_ms: u64, fallback: bool) -> ServeConfig {
    ServeConfig {
        model_paths: vec![cs1_model_file()],
        read_timeout_secs: 30,
        cache_capacity: 0, // no caching: every request must reach a worker
        breaker_threshold,
        breaker_cooldown_ms: cooldown_ms,
        fallback_search: fallback,
        ..ServeConfig::default()
    }
}

fn shutdown(addr: SocketAddr, handle: ServerHandle) {
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    handle.join().unwrap().unwrap();
}

const ARRAY_BODY: &str = r#"{"m":128,"n":64,"k":256,"mac_budget":1024}"#;

#[test]
fn breaker_opens_after_injected_failures_and_half_open_recovers() {
    let _guard = chaos("serve.infer=err(other):1:3");
    let (addr, handle) = start(config(3, 150, false));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    // Three injected inference failures: each surfaces as a 500 and counts
    // against the breaker.
    for i in 0..3 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 500, "request {i}: {}", resp.body);
        assert!(resp.body.contains("inference_failed"), "{}", resp.body);
    }
    // The circuit is now open: fail-fast 503 without touching the model.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("circuit_open"), "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1));

    // Open circuits degrade /healthz and are visible in /metrics.
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"status\":\"degraded\""), "{}", health.body);
    assert!(health.body.contains("\"array\":\"open\""), "{}", health.body);
    let metrics = client.get("/metrics").unwrap();
    assert!(
        metrics.body.contains("serve.breaker_state.array 1"),
        "{}",
        metrics.body
    );
    // Counters are process-global and cumulative across tests: assert
    // presence and positivity, not an exact value.
    assert!(
        metrics.body.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(k, v)| k == "serve.breaker_opens" && v.parse::<u64>().unwrap_or(0) > 0)
        }),
        "{}",
        metrics.body
    );

    // After the cooldown the next request is the half-open probe; the
    // failpoint is exhausted, so it succeeds and closes the circuit.
    std::thread::sleep(Duration::from_millis(200));
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 200, "probe must recover: {}", resp.body);
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    assert!(health.body.contains("\"array\":\"closed\""), "{}", health.body);

    shutdown(addr, handle);
}

#[test]
fn open_circuit_with_fallback_serves_the_search_answer() {
    let _guard = chaos("serve.infer=err(other):1:2");
    let (addr, handle) = start(config(2, 60_000, true));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    for _ in 0..2 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 500, "{}", resp.body);
    }
    // Circuit open + fallback configured: degraded 200, not a 503.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"source\":\"search\""), "{}", resp.body);
    assert!(resp.warning.is_some(), "fallback must carry Warning");

    // The search answer is the exhaustive optimum for this workload.
    use airchitect_dse::case1::Case1Problem;
    use airchitect_workload::GemmWorkload;
    let problem = Case1Problem::new(1 << 18);
    let found = problem.search(&GemmWorkload::new(128, 64, 256).unwrap(), 1024);
    let (array, df) = problem.space().decode(found.label).unwrap();
    let rendered = format!(
        "\"rows\":{},\"cols\":{},\"macs\":{},\"dataflow\":\"{df}\"",
        array.rows(),
        array.cols(),
        array.macs()
    );
    assert!(resp.body.contains(&rendered), "{} !~ {rendered}", resp.body);

    shutdown(addr, handle);
}

#[test]
fn injected_worker_stall_turns_into_a_timely_504() {
    let _guard = chaos("serve.batch.dispatch=delay(600):1:1");
    // Bypass disabled: the stall is injected on the *worker* dispatch
    // path, and the 504-at-deadline contract is about a connection thread
    // abandoning a stuck worker.
    let (addr, handle) = start(ServeConfig {
        deadline_ms: 150,
        single_query_bypass: false,
        ..config(0, 0, false)
    });
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let started = std::time::Instant::now();
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert!(resp.body.contains("deadline_exceeded"), "{}", resp.body);
    // The 504 must be answered at the deadline, not after the stall ends.
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "504 answered after {}ms",
        started.elapsed().as_millis()
    );

    // Once the injected stall drains, the server answers normally.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    shutdown(addr, handle);
}

#[test]
fn injected_worker_panic_is_isolated_to_one_500() {
    let _guard = chaos("serve.batch.dispatch=panic:1:1");
    // Bypass disabled: the panic is injected on the worker dispatch path.
    let (addr, handle) = start(ServeConfig {
        single_query_bypass: false,
        ..config(0, 0, false)
    });
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("inference_panic"), "{}", resp.body);
    // The worker survived; later requests are answered.
    for _ in 0..3 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    shutdown(addr, handle);
}

#[test]
fn injected_panic_on_the_bypass_is_isolated_to_one_500() {
    // `serve.infer` fires inside `execute_fast`, so with the bypass
    // enabled (the default) the panic lands on the *connection* thread —
    // it must be caught there exactly like the worker catches its own.
    let _guard = chaos("serve.infer=panic:1:1");
    let (addr, handle) = start(config(0, 0, false));
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("inference_panic"), "{}", resp.body);
    // The connection (and server) survived; later requests are answered.
    for _ in 0..3 {
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    shutdown(addr, handle);
}

#[test]
fn reload_faults_409_then_trip_the_reload_breaker() {
    // Start clean so the initial load at bind time succeeds, then inject
    // read faults that only the reload path will hit.
    let _guard = chaos("");
    let (addr, handle) = start(config(2, 60_000, false));
    airchitect_chaos::configure_str("serve.reload.read=err(other):1:2").unwrap();
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    // Two injected read failures: each reload answers 409 and the old
    // model keeps serving.
    for _ in 0..2 {
        let resp = client.post("/v1/reload", "").unwrap();
        assert_eq!(resp.status, 409, "{}", resp.body);
        assert!(resp.body.contains("reload_failed"), "{}", resp.body);
        let ok = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(ok.status, 200, "old model must keep serving");
    }
    // The reload circuit is now open: fail fast without touching disk.
    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("circuit_open"), "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1));
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"reload\":\"open\""), "{}", health.body);

    shutdown(addr, handle);
}

#[test]
fn injected_accept_errors_are_retried_not_fatal() {
    let _guard = chaos("serve.listener.accept=err(other):1:5");
    let (addr, handle) = start(config(0, 0, false));
    // Every connection still gets through: the accept loop backs off and
    // retries, and pending sockets wait in the kernel backlog.
    for _ in 0..3 {
        let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
        let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    assert!(airchitect_chaos::fired("serve.listener.accept") >= 1);
    shutdown(addr, handle);
}
