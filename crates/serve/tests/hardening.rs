//! Integration: serving-core hardening — the timer-based connection-thread
//! reaper, request-latency accounting on every terminal path, per-shard
//! reactor telemetry, and socket-level parser robustness (dribbled bytes,
//! pipelining, unbounded heads).
//!
//! Lives in its own binary so its metric assertions see a registry no
//! other suite is writing to (telemetry statics are per-process).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_nn::train::TrainConfig;
use airchitect_serve::client::HttpClient;
use airchitect_serve::{ServeConfig, ServeError, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Trains and persists one tiny CS1 model, once per process.
fn model_file() -> PathBuf {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let (dim, classes) = (4usize, 30u32);
        let mut ds = Dataset::new(dim, classes).unwrap();
        let mut row = vec![0f32; dim];
        for i in 0..240usize {
            for (j, v) in row.iter_mut().enumerate() {
                *v = ((i * 31 + j * 7) % 97) as f32;
            }
            ds.push(&row, (i as u32 * 13) % classes).unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: classes,
                train: TrainConfig {
                    epochs: 2,
                    batch_size: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).unwrap();
        let path = std::env::temp_dir().join(format!(
            "airchitect-hardening-test-{}.airm",
            std::process::id()
        ));
        persist::save(&model, &path).unwrap();
        path
    })
    .clone()
}

type ServerHandle = JoinHandle<Result<(), ServeError>>;

fn start(config: ServeConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(&config).expect("server binds");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr, handle: ServerHandle) {
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    handle
        .join()
        .expect("server thread must not panic")
        .expect("graceful shutdown must return Ok");
}

const ARRAY_BODY: &str = r#"{"m":128,"n":64,"k":256,"mac_budget":1024}"#;

/// Reads a metric value (`name value`) out of a `/metrics` scrape.
fn metric(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|l| {
        l.split_once(' ')
            .and_then(|(k, v)| (k == name).then(|| v.parse().ok()).flatten())
    })
}

/// The threaded listener used to release finished connection threads only
/// when the *next* accept arrived; after a burst against an idle server
/// they all lingered. The timer reaper must return the handle count to
/// baseline with no further traffic.
#[test]
fn conn_thread_count_returns_to_baseline_after_a_burst() {
    let config = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 30,
        threaded: true,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);

    // Burst: 8 concurrent connections, one request each, then hang up.
    {
        let clients: Vec<HttpClient> = (0..8)
            .map(|_| {
                let mut c = HttpClient::connect(addr, TIMEOUT).unwrap();
                assert_eq!(c.get("/healthz").unwrap().status, 200);
                c
            })
            .collect();
        drop(clients);
    }

    // No accepts happen while we wait: the reaper alone must notice the
    // burst threads finishing. One persistent scraper connection polls,
    // so the floor is that single live thread.
    let mut scraper = HttpClient::connect(addr, TIMEOUT).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut last = f64::MAX;
    while Instant::now() < deadline {
        let scrape = scraper.get("/metrics").unwrap();
        assert_eq!(scrape.status, 200);
        last = metric(&scrape.body, "serve.conn_threads").unwrap_or(f64::MAX);
        if last <= 1.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        last <= 1.0,
        "burst connection threads were not reaped without a new accept \
         (serve.conn_threads stuck at {last})"
    );
    shutdown(addr, handle);
}

/// `serve.request_us` must observe *every* terminal path — 504s from an
/// expired budget, 429s from a full queue, and parse rejections — not
/// just successful answers, or the histogram lies about tail latency
/// exactly when the server is struggling.
#[test]
fn latency_histogram_counts_rejected_and_expired_requests() {
    let config = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 30,
        queue_depth: 0,            // every queued push answers 429
        single_query_bypass: false, // force the queue path
        cache_capacity: 0,         // no cache hits short-circuiting
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    let before = {
        let scrape = client.get("/metrics").unwrap();
        metric(&scrape.body, "serve.request_us_count").unwrap_or(0.0)
    };

    // 504: the budget is already spent at admission.
    let resp = client
        .post_with_deadline("/v1/recommend/array", ARRAY_BODY, 0)
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body);
    // 429: queue depth zero.
    let resp = client.post("/v1/recommend/array", ARRAY_BODY).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    // 400: parse rejection.
    let resp = client.post("/v1/recommend/array", "{\"m\":-1}").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    let after = {
        let scrape = client.get("/metrics").unwrap();
        metric(&scrape.body, "serve.request_us_count").unwrap_or(0.0)
    };
    assert!(
        after >= before + 3.0,
        "504/429/400 terminal paths must all record serve.request_us \
         (count went {before} -> {after})"
    );
    shutdown(addr, handle);
}

/// The evented listener publishes per-shard gauges; the aggregate
/// connection gauge must cover the scraping connection itself.
#[cfg(target_os = "linux")]
#[test]
fn evented_listener_exposes_per_shard_metrics() {
    if ServeConfig::default().threaded {
        return; // threaded CI leg: no shards to inspect
    }
    let config = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 30,
        event_loops: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    assert_eq!(client.post("/v1/recommend/array", ARRAY_BODY).unwrap().status, 200);

    let scrape = client.get("/metrics").unwrap();
    for shard in 0..2 {
        for series in ["open_connections", "ready_depth", "wakeups", "accepted"] {
            let name = format!("serve.shard.{shard}.{series}");
            assert!(
                metric(&scrape.body, &name).is_some(),
                "missing {name} in:\n{}",
                scrape.body
            );
        }
    }
    let open = metric(&scrape.body, "serve.open_connections").unwrap();
    assert!(open >= 1.0, "the scraping connection must be counted ({open})");
    let accepted: f64 = (0..2)
        .map(|s| metric(&scrape.body, &format!("serve.shard.{s}.accepted")).unwrap())
        .sum();
    assert!(accepted >= 1.0, "accept counters must move ({accepted})");
    shutdown(addr, handle);
}

/// A request trickled in over many small writes (slow client, tiny MTU)
/// must parse exactly like one delivered whole, and two requests sent
/// back-to-back in one segment must both be answered, in order.
#[test]
fn dribbled_and_pipelined_requests_are_served() {
    let config = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);

    // Dribble: a few bytes at a time with pauses.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "POST /v1/recommend/array HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{ARRAY_BODY}",
        ARRAY_BODY.len()
    );
    for chunk in request.as_bytes().chunks(7) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") || !body_complete(&buf) {
        let n = stream.read(&mut tmp).unwrap();
        assert!(n > 0, "connection closed before a full response");
        buf.extend_from_slice(&tmp[..n]);
    }
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("\"dataflow\""), "{text}");

    // Pipeline: two requests in one write on the same connection.
    let two = format!("{request}{request}");
    stream.write_all(two.as_bytes()).unwrap();
    let mut buf = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while count_responses(&buf) < 2 && Instant::now() < deadline {
        let n = stream.read(&mut tmp).unwrap();
        assert!(n > 0, "connection closed after {} responses", count_responses(&buf));
        buf.extend_from_slice(&tmp[..n]);
    }
    assert_eq!(count_responses(&buf), 2, "{}", String::from_utf8_lossy(&buf));
    shutdown(addr, handle);
}

fn body_complete(buf: &[u8]) -> bool {
    response_len(buf).is_some()
}

/// Bytes of one complete response at the front of `buf`.
fn response_len(buf: &[u8]) -> Option<usize> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let len: usize = head.split("\r\n").find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("content-length")
            .then(|| value.trim().parse().ok())
            .flatten()
    })?;
    (buf.len() >= head_end + len).then_some(head_end + len)
}

fn count_responses(buf: &[u8]) -> usize {
    let mut rest = buf;
    let mut n = 0;
    while let Some(len) = response_len(rest) {
        rest = &rest[len..];
        n += 1;
    }
    n
}

/// A newline-free megabyte "head" must be rejected at the cap with a 413
/// while the flood is still arriving — not buffered to completion.
#[test]
fn newline_free_megabyte_head_is_answered_413_mid_flood() {
    let config = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Read on a second thread so the 413 is captured the moment it is
    // sent; the server closes right after and further flood writes may
    // RST the socket.
    let reader = {
        let mut r = stream.try_clone().unwrap();
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            let mut tmp = [0u8; 4096];
            loop {
                match r.read(&mut tmp) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => buf.extend_from_slice(&tmp[..n]),
                }
            }
            buf
        })
    };
    let flood = vec![b'A'; 1024 * 1024];
    let mut w = stream;
    for chunk in flood.chunks(8 * 1024) {
        if w.write_all(chunk).is_err() {
            break; // server already rejected and closed
        }
    }
    let _ = w.shutdown(std::net::Shutdown::Write);
    let buf = reader.join().unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(
        text.starts_with("HTTP/1.1 413"),
        "flooded head must answer 413, got: {:?}",
        &text[..text.len().min(120)]
    );
    shutdown(addr, handle);
}

/// `--nodelay` is opt-in and mode-independent: with it set, both listener
/// modes keep answering identically (TCP_NODELAY must never change
/// observable semantics, only latency).
#[test]
fn nodelay_keeps_listener_parity() {
    if !cfg!(target_os = "linux") {
        return; // only one listener exists off-Linux
    }
    let base = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 30,
        cache_capacity: 0,
        nodelay: true,
        ..ServeConfig::default()
    };
    let threaded = ServeConfig {
        threaded: true,
        ..base.clone()
    };
    let evented = ServeConfig {
        threaded: false,
        ..base
    };
    let (addr_a, handle_a) = start(threaded);
    let (addr_b, handle_b) = start(evented);
    let mut a = HttpClient::connect(addr_a, TIMEOUT).unwrap();
    let mut b = HttpClient::connect(addr_b, TIMEOUT).unwrap();
    for _ in 0..4 {
        let ra = a.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        let rb = b.post("/v1/recommend/array", ARRAY_BODY).unwrap();
        assert_eq!(ra.status, 200, "{}", ra.body);
        assert_eq!(ra.status, rb.status);
        assert_eq!(ra.body, rb.body);
    }
    shutdown(addr_a, handle_a);
    shutdown(addr_b, handle_b);
}

/// Both listeners answer the same requests with the same statuses and
/// body shapes — the mode flag must not change observable semantics.
#[test]
fn threaded_and_evented_listeners_answer_identically() {
    let base = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 30,
        cache_capacity: 0, // identical `cached` flags on both servers
        ..ServeConfig::default()
    };
    let threaded = ServeConfig {
        threaded: true,
        ..base.clone()
    };
    let evented = ServeConfig {
        threaded: false,
        ..base
    };
    if !cfg!(target_os = "linux") {
        return; // only one listener exists off-Linux
    }
    let (addr_a, handle_a) = start(threaded);
    let (addr_b, handle_b) = start(evented);
    let mut a = HttpClient::connect(addr_a, TIMEOUT).unwrap();
    let mut b = HttpClient::connect(addr_b, TIMEOUT).unwrap();

    for (method_post, path, body) in [
        (true, "/v1/recommend/array", ARRAY_BODY),
        (true, "/v1/recommend/array", "{\"m\":-1}"),
        (true, "/v1/recommend/buffers", ARRAY_BODY),
        (false, "/healthz", ""),
        (true, "/nope", ""),
    ] {
        let (ra, rb) = if method_post {
            (a.post(path, body).unwrap(), b.post(path, body).unwrap())
        } else {
            (a.get(path).unwrap(), b.get(path).unwrap())
        };
        assert_eq!(ra.status, rb.status, "{path}: {} vs {}", ra.body, rb.body);
        if path.starts_with("/v1/recommend") && ra.status == 200 {
            assert_eq!(ra.body, rb.body, "{path}");
        }
    }
    shutdown(addr_a, handle_a);
    shutdown(addr_b, handle_b);
}

/// A slowloris client trickles header bytes forever, refreshing the
/// per-chunk activity clock on every byte so the idle timeout never
/// fires. The evented core's header-phase deadline must answer 408 and
/// reap the connection once a request head has been incomplete for a
/// whole read-timeout window, and count the reap in
/// `serve.slowloris_reaped`.
#[test]
fn slowloris_header_trickle_is_reaped_with_408() {
    if !cfg!(target_os = "linux") {
        return; // the evented core is Linux-only
    }
    let config = ServeConfig {
        model_paths: vec![model_file()],
        read_timeout_secs: 1,
        event_loops: 1,
        threaded: false,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reader = {
        let mut r = stream.try_clone().unwrap();
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            let mut tmp = [0u8; 4096];
            loop {
                match r.read(&mut tmp) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => buf.extend_from_slice(&tmp[..n]),
                }
            }
            buf
        })
    };
    // Never idle, never complete: one header byte every 200ms keeps
    // `last_activity` fresh while the head stays unparsable.
    let mut w = stream;
    let _ = w.write_all(b"GET /healthz HTTP/1.1\r\nHost:");
    for _ in 0..15 {
        std::thread::sleep(Duration::from_millis(200));
        if w.write_all(b"x").is_err() {
            break; // already reaped
        }
    }
    let buf = reader.join().unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "trickled head must answer 408, got: {:?}",
        &text[..text.len().min(120)]
    );

    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let scrape = client.get("/metrics").unwrap();
    assert!(
        metric(&scrape.body, "serve.slowloris_reaped").unwrap_or(0.0) >= 1.0,
        "reap must be counted:\n{}",
        scrape.body
    );
    shutdown(addr, handle);
}
