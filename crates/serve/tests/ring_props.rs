//! Property-based tests for the consistent-hash ring: the consistency
//! guarantee (membership changes only remap keys owned by the changed
//! member) must hold for arbitrary member sets and keys, not just the
//! hand-picked cases in the unit tests.

use airchitect_serve::ring::{Ring, DEFAULT_VNODES};
use proptest::prelude::*;

fn build(members: &[u32], vnodes: usize) -> Ring {
    let mut ring = Ring::new(vnodes);
    for &id in members {
        ring.add(id);
    }
    ring
}

proptest! {
    /// Removing one member never remaps a key owned by anyone else.
    #[test]
    fn removal_is_minimal(
        members in proptest::collection::vec(0u32..32, 2..8),
        victim_idx in 0usize..8,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 1..64),
    ) {
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        prop_assume!(members.len() >= 2);
        let victim = members[victim_idx % members.len()];
        let mut ring = build(&members, DEFAULT_VNODES);
        let before: Vec<u32> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        ring.remove(victim);
        for (key, owner) in keys.iter().zip(before) {
            let now = ring.primary(key).unwrap();
            if owner == victim {
                prop_assert_ne!(now, victim);
            } else {
                prop_assert_eq!(now, owner);
            }
        }
    }

    /// Adding a member only steals keys for itself; everyone else's keys
    /// keep their owner.
    #[test]
    fn addition_is_minimal(
        members in proptest::collection::vec(0u32..32, 1..7),
        newcomer in 32u32..40,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 1..64),
    ) {
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        let mut ring = build(&members, DEFAULT_VNODES);
        let before: Vec<u32> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        ring.add(newcomer);
        for (key, owner) in keys.iter().zip(before) {
            let now = ring.primary(key).unwrap();
            prop_assert!(
                now == owner || now == newcomer,
                "key moved to {} which is neither its old owner {} nor the newcomer {}",
                now, owner, newcomer
            );
        }
    }

    /// Remove-then-re-add is a no-op for every key (vnode points are a
    /// pure function of the member id).
    #[test]
    fn readd_roundtrips(
        members in proptest::collection::vec(0u32..16, 2..6),
        victim_idx in 0usize..6,
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 1..32),
    ) {
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        let victim = members[victim_idx % members.len()];
        let mut ring = build(&members, DEFAULT_VNODES);
        let before: Vec<Option<u32>> = keys.iter().map(|k| ring.primary(k)).collect();
        ring.remove(victim);
        ring.add(victim);
        let after: Vec<Option<u32>> = keys.iter().map(|k| ring.primary(k)).collect();
        prop_assert_eq!(before, after);
    }

    /// The failover order is a permutation prefix: distinct members,
    /// primary first, and stable under repetition.
    #[test]
    fn ordered_is_distinct_and_deterministic(
        members in proptest::collection::vec(0u32..32, 1..8),
        key in proptest::collection::vec(any::<u8>(), 1..40),
        n in 1usize..8,
    ) {
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        let ring = build(&members, DEFAULT_VNODES);
        let order = ring.ordered(&key, n);
        prop_assert_eq!(order.len(), n.min(members.len()));
        let mut dedup = order.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), order.len());
        prop_assert_eq!(order.first().copied(), ring.primary(&key));
        prop_assert_eq!(&ring.ordered(&key, n), &order);
        for id in &order {
            prop_assert!(members.contains(id));
        }
    }
}
