//! Integration: the closed online-learning loop against a live server —
//! shadow sampling writes versioned records, concurrent hot-reloads stamp
//! each record with the generation it was scored against, and
//! [`fine_tune`] replays the log while skipping cross-version records.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_dse::case1::Case1Problem;
use airchitect_dse::space::Case1Space;
use airchitect_nn::train::TrainConfig;
use airchitect_online::{fine_tune, read_dir, FineTuneOptions, LogScan};
use airchitect_serve::client::HttpClient;
use airchitect_serve::{ServeConfig, ServeError, Server};
use airchitect_workload::GemmWorkload;

const TIMEOUT: Duration = Duration::from_secs(30);

/// The tiny CS1 space the tests serve: 2^5 MAC budget, 30 labels.
const BUDGET: u64 = 1 << 5;

/// Trains a tiny CS1 model on oracle-labeled rows and persists it.
fn oracle_model_file(tag: &str) -> PathBuf {
    let space = Case1Space::new(BUDGET);
    let problem = Case1Problem::new(BUDGET);
    let mut ds = Dataset::new(4, space.len() as u32).unwrap();
    for m in [8u64, 16, 32, 64, 128, 256] {
        let wl = GemmWorkload::new(m, 16, 32).unwrap();
        ds.push(
            &Case1Problem::features(&wl, BUDGET),
            problem.search(&wl, BUDGET).label,
        )
        .unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: space.len() as u32,
            train: TrainConfig {
                epochs: 2,
                batch_size: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).unwrap();
    let path = std::env::temp_dir().join(format!(
        "airchitect-online-loop-{}-{tag}.airm",
        std::process::id()
    ));
    persist::save(&model, &path).unwrap();
    path
}

fn start(config: ServeConfig) -> (SocketAddr, JoinHandle<Result<(), ServeError>>) {
    let server = Server::bind(&config).expect("server binds");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<Result<(), ServeError>>) {
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    handle.join().unwrap().unwrap();
}

fn body(m: u64) -> String {
    format!("{{\"m\":{m},\"n\":16,\"k\":32,\"mac_budget\":{BUDGET}}}")
}

/// Polls the misprediction log until it holds `n` records (the shadow pool
/// scores asynchronously) or panics after 10 s.
fn wait_for_records(dir: &Path, n: usize) -> LogScan {
    let t0 = Instant::now();
    loop {
        let scan = read_dir(dir).unwrap();
        if scan.records.len() >= n {
            return scan;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "only {} of {n} shadow records after 10s",
            scan.records.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The tentpole loop, under reload pressure: records written before a
/// hot-reload carry generation 1, records written after carry the bumped
/// generation even while further reloads race the shadow pool, and a
/// fine-tune replay targets only the newest generation.
#[test]
fn shadow_records_survive_concurrent_reloads_with_correct_versions() {
    let model_path = oracle_model_file("reload");
    let dir = std::env::temp_dir().join(format!(
        "airchitect-online-loop-log-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        model_paths: vec![model_path.clone()],
        read_timeout_secs: 30,
        shadow_rate: 1.0,
        shadow_dir: Some(dir.clone()),
        shadow_queue_depth: 256,
        shadow_threads: 1,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();

    // Phase 1: distinct queries scored against generation 1.
    let phase1 = 6usize;
    for i in 0..phase1 {
        let resp = client
            .post("/v1/recommend/array", &body(8 + i as u64 * 8))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    wait_for_records(&dir, phase1);

    // Bump the generation, then keep reloading *while* phase 2 flows so
    // sampling races in-flight generation swaps.
    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let stop = Arc::new(AtomicBool::new(false));
    let reloader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = HttpClient::connect(addr, TIMEOUT).unwrap();
            while !stop.load(Ordering::Acquire) {
                let resp = c.post("/v1/reload", "").unwrap();
                assert_eq!(resp.status, 200);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let phase2 = 6usize;
    for i in 0..phase2 {
        let resp = client
            .post("/v1/recommend/array", &body(1000 + i as u64 * 8))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    stop.store(true, Ordering::Release);
    reloader.join().unwrap();
    wait_for_records(&dir, phase1 + phase2);
    shutdown(addr, handle);

    // The closed log replays completely: no torn lines, no junk, one
    // record per sampled request.
    let scan = read_dir(&dir).unwrap();
    assert_eq!(scan.records.len(), phase1 + phase2);
    assert_eq!(scan.torn_segments, 0);
    assert_eq!(scan.skipped_lines, 0);
    let versions: BTreeSet<u64> =
        scan.records.iter().map(|r| r.model_version).collect();
    assert!(
        versions.contains(&1),
        "phase-1 records must carry generation 1, got {versions:?}"
    );
    assert!(
        versions.iter().any(|v| *v >= 2),
        "phase-2 records must carry a post-reload generation, got {versions:?}"
    );

    // Replay targets the newest generation; everything scored against an
    // older one is skipped, never trained on.
    let newest = *versions.iter().max().unwrap();
    let stale = scan
        .records
        .iter()
        .filter(|r| r.model_version != newest)
        .count() as u64;
    let mut model = persist::load(&model_path).unwrap();
    let outcome =
        fine_tune(&mut model, &scan.records, &FineTuneOptions::default()).unwrap();
    assert_eq!(outcome.target_version, newest);
    assert_eq!(outcome.skipped_cross_version, stale);
    assert!(
        stale >= phase1 as u64,
        "all phase-1 records are stale after the reloads"
    );

    let _ = std::fs::remove_file(&model_path);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rate 0 (the default) must leave no trace: no log directory, no shadow
/// machinery on the request path.
#[test]
fn shadow_disabled_by_default_writes_no_log() {
    let model_path = oracle_model_file("off");
    let dir = std::env::temp_dir().join(format!(
        "airchitect-online-loop-off-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        model_paths: vec![model_path.clone()],
        read_timeout_secs: 30,
        shadow_dir: Some(dir.clone()), // dir configured but rate is 0.0
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);
    let mut client = HttpClient::connect(addr, TIMEOUT).unwrap();
    let resp = client.post("/v1/recommend/array", &body(64)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    shutdown(addr, handle);
    assert!(!dir.exists(), "rate 0 must not create a log directory");
    let _ = std::fs::remove_file(&model_path);
}

/// Shadow sampling with a rate but no directory is a configuration error
/// at bind time, not a silent no-op.
#[test]
fn shadow_rate_without_dir_is_a_config_error() {
    let model_path = oracle_model_file("nodir");
    let config = ServeConfig {
        model_paths: vec![model_path.clone()],
        shadow_rate: 0.5,
        shadow_dir: None,
        ..ServeConfig::default()
    };
    match Server::bind(&config) {
        Err(ServeError::Config(msg)) => {
            assert!(msg.contains("log directory"), "{msg}");
        }
        Err(other) => panic!("expected a config error, got: {other}"),
        Ok(_) => panic!("bind must fail without a shadow log directory"),
    }
    let _ = std::fs::remove_file(&model_path);
}
