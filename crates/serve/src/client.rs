//! A minimal blocking HTTP/1.1 client, just capable enough to drive the
//! server from the loadgen bench and the integration tests (keep-alive,
//! `Content-Length` bodies, no redirects, no TLS).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body text (responses from this server are UTF-8).
    pub body: String,
    /// Parsed `Retry-After` header, if present.
    pub retry_after: Option<u64>,
    /// Raw `Warning` header, if present (degraded-mode responses).
    pub warning: Option<String>,
}

impl ClientResponse {
    /// Whether the status is a success (2xx).
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects, with a read timeout so tests cannot hang forever.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issues a `GET` and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, "", None)
    }

    /// Issues a `POST` with a JSON body and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body, None)
    }

    /// Issues a `POST` carrying an `X-Deadline-Ms` request budget.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post_with_deadline(
        &mut self,
        path: &str,
        body: &str,
        deadline_ms: u64,
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body, Some(deadline_ms))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: airchitect\r\nConnection: keep-alive\r\nContent-Length: {}\r\n",
            body.len()
        );
        if let Some(ms) = deadline_ms {
            head.push_str(&format!("X-Deadline-Ms: {ms}\r\n"));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("bad status line `{}`", line.trim_end())))?;

        let mut content_length = 0usize;
        let mut retry_after = None;
        let mut warning = None;
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .parse()
                        .map_err(|_| bad(format!("bad Content-Length `{value}`")))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.parse().ok();
                } else if name.eq_ignore_ascii_case("warning") {
                    warning = Some(value.to_string());
                }
            }
        }

        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body".into()))?,
            retry_after,
            warning,
        })
    }
}
