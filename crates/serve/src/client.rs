//! A minimal blocking HTTP/1.1 client, just capable enough to drive the
//! server from the loadgen bench and the integration tests (keep-alive,
//! `Content-Length` bodies, no redirects, no TLS).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body text (responses from this server are UTF-8).
    pub body: String,
    /// Parsed `Retry-After` header, if present.
    pub retry_after: Option<u64>,
    /// Raw `Warning` header, if present (degraded-mode responses).
    pub warning: Option<String>,
}

impl ClientResponse {
    /// Whether the status is a success (2xx).
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects, with the same budget applied as the connect, read, *and*
    /// write timeout so neither tests nor the loadgen can hang forever on
    /// a stalled connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issues a `GET` and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, "", None)
    }

    /// Issues a `POST` with a JSON body and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body, None)
    }

    /// Issues a `POST` carrying an `X-Deadline-Ms` request budget.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post_with_deadline(
        &mut self,
        path: &str,
        body: &str,
        deadline_ms: u64,
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body, Some(deadline_ms))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: airchitect\r\nConnection: keep-alive\r\nContent-Length: {}\r\n",
            body.len()
        );
        if let Some(ms) = deadline_ms {
            head.push_str(&format!("X-Deadline-Ms: {ms}\r\n"));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("bad status line `{}`", line.trim_end())))?;

        let mut content_length = 0usize;
        let mut retry_after = None;
        let mut warning = None;
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .parse()
                        .map_err(|_| bad(format!("bad Content-Length `{value}`")))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.parse().ok();
                } else if name.eq_ignore_ascii_case("warning") {
                    warning = Some(value.to_string());
                }
            }
        }

        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body".into()))?,
            retry_after,
            warning,
        })
    }
}

/// A self-healing client: keeps one keep-alive connection, reconnects
/// lazily, and retries a request (with linear backoff) when the transport
/// fails mid-flight. Only I/O errors are retried — an HTTP error status
/// is a *delivered* answer and is returned as-is, so this is safe for the
/// idempotent endpoints it is meant for (recommends, healthz, metrics).
///
/// Used by the loadgen bench (a replica being killed mid-run must not
/// fail the client) and by the cluster router's control-plane calls.
pub struct RetryClient {
    addr: SocketAddr,
    timeout: Duration,
    attempts: u32,
    backoff: Duration,
    conn: Option<HttpClient>,
}

impl RetryClient {
    /// A disconnected client for `addr`; `attempts` is the total number
    /// of tries per request (clamped to at least 1), `backoff` the sleep
    /// added before each retry (linearly scaled by the attempt number).
    #[must_use]
    pub fn new(addr: SocketAddr, timeout: Duration, attempts: u32, backoff: Duration) -> Self {
        Self {
            addr,
            timeout,
            attempts: attempts.max(1),
            backoff,
            conn: None,
        }
    }

    /// Drops the pooled connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Issues a `GET`, reconnecting and retrying on transport failure.
    ///
    /// # Errors
    ///
    /// Returns the last I/O error once every attempt is exhausted.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, "", None)
    }

    /// Issues a `POST`, reconnecting and retrying on transport failure.
    ///
    /// # Errors
    ///
    /// Returns the last I/O error once every attempt is exhausted.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body, None)
    }

    /// Issues a request with retry-on-transport-failure.
    ///
    /// # Errors
    ///
    /// Returns the last I/O error once every attempt is exhausted.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<ClientResponse> {
        let mut last = None;
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff * attempt);
            }
            let conn = match self.conn.as_mut() {
                Some(c) => c,
                None => match HttpClient::connect(self.addr, self.timeout) {
                    Ok(c) => self.conn.insert(c),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                },
            };
            match conn.request(method, path, body, deadline_ms) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // The connection is in an unknown state (possibly a
                    // half-written request or half-read response): drop
                    // it and retry on a fresh one.
                    self.conn = None;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no attempts made")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    /// A server whose first `drop_first` connections are closed without a
    /// response; later connections get one canned 200 per request.
    fn flaky_server(drop_first: usize) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(mut stream) = stream else { break };
                if i < drop_first {
                    drop(stream); // immediate close: client sees EOF
                    continue;
                }
                std::thread::spawn(move || {
                    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                    while crate::http::read_request(&mut reader).is_ok() {
                        let _ = stream.write_all(
                            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
                        );
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn retry_client_survives_dropped_connections() {
        let addr = flaky_server(2);
        let mut client =
            RetryClient::new(addr, Duration::from_secs(2), 4, Duration::from_millis(1));
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok");
        // The healed connection keeps serving without further retries.
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    }

    #[test]
    fn retry_client_gives_up_after_its_attempts() {
        let addr = flaky_server(usize::MAX);
        let mut client =
            RetryClient::new(addr, Duration::from_secs(2), 2, Duration::from_millis(1));
        assert!(client.get("/healthz").is_err());
    }
}
