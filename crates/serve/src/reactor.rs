//! Thin, std-only Linux readiness primitives for the evented listener:
//! an epoll poller, an eventfd waker, `SO_REUSEPORT` listener binding, a
//! source-bound nonblocking `connect` (for the c10k loadgen), and
//! `RLIMIT_NOFILE` introspection.
//!
//! The workspace is hermetic (no external crates), so the handful of
//! syscalls std does not expose are declared here as `extern "C"` against
//! the system libc that every Rust binary already links. Everything is
//! wrapped in owned-fd types immediately; no raw fd escapes unmanaged.

#![allow(clippy::missing_errors_doc)]

use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

mod ffi {
    pub type CInt = i32;

    pub const EPOLL_CLOEXEC: CInt = 0x80000;
    pub const EPOLL_CTL_ADD: CInt = 1;
    pub const EPOLL_CTL_DEL: CInt = 2;
    pub const EPOLL_CTL_MOD: CInt = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EFD_CLOEXEC: CInt = 0x80000;
    pub const EFD_NONBLOCK: CInt = 0x800;

    pub const AF_INET: CInt = 2;
    pub const AF_INET6: CInt = 10;
    pub const SOCK_STREAM: CInt = 1;
    pub const SOCK_NONBLOCK: CInt = 0x800;
    pub const SOCK_CLOEXEC: CInt = 0x80000;
    pub const SOL_SOCKET: CInt = 1;
    pub const SO_REUSEADDR: CInt = 2;
    pub const SO_ERROR: CInt = 4;
    pub const SO_REUSEPORT: CInt = 15;

    pub const RLIMIT_NOFILE: CInt = 7;

    // x86_64 packs epoll_event (no alignment padding between the 32-bit
    // mask and the 64-bit payload); this layout matches the kernel ABI.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    #[repr(C)]
    pub struct SockaddrIn {
        pub family: u16,
        pub port: u16,
        pub addr: u32,
        pub zero: [u8; 8],
    }

    #[repr(C)]
    pub struct SockaddrIn6 {
        pub family: u16,
        pub port: u16,
        pub flowinfo: u32,
        pub addr: [u8; 16],
        pub scope_id: u32,
    }

    extern "C" {
        pub fn epoll_create1(flags: CInt) -> CInt;
        pub fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
        pub fn epoll_wait(
            epfd: CInt,
            events: *mut EpollEvent,
            maxevents: CInt,
            timeout_ms: CInt,
        ) -> CInt;
        pub fn eventfd(initval: u32, flags: CInt) -> CInt;
        pub fn read(fd: CInt, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: CInt, buf: *const u8, count: usize) -> isize;
        pub fn socket(domain: CInt, ty: CInt, protocol: CInt) -> CInt;
        pub fn setsockopt(
            fd: CInt,
            level: CInt,
            optname: CInt,
            optval: *const u8,
            optlen: u32,
        ) -> CInt;
        pub fn getsockopt(
            fd: CInt,
            level: CInt,
            optname: CInt,
            optval: *mut u8,
            optlen: *mut u32,
        ) -> CInt;
        pub fn bind(fd: CInt, addr: *const u8, len: u32) -> CInt;
        pub fn connect(fd: CInt, addr: *const u8, len: u32) -> CInt;
        pub fn listen(fd: CInt, backlog: CInt) -> CInt;
        pub fn getrlimit(resource: CInt, rlim: *mut Rlimit) -> CInt;
        pub fn setrlimit(resource: CInt, rlim: *const Rlimit) -> CInt;
    }
}

fn cvt(ret: ffi::CInt) -> io::Result<ffi::CInt> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Which readiness events a registration asks for. Level-triggered;
/// `EPOLLERR`/`EPOLLHUP` are always reported regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would not block.
    pub readable: bool,
    /// Report when a write would not block.
    pub writable: bool,
}

impl Interest {
    /// Read-readiness only.
    pub const READ: Self = Self {
        readable: true,
        writable: false,
    };
    /// Read and write readiness.
    pub const READ_WRITE: Self = Self {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= ffi::EPOLLIN;
        }
        if self.writable {
            m |= ffi::EPOLLOUT;
        }
        m
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `u64` registered with the fd.
    pub token: u64,
    /// Read would not block (or the peer half-closed).
    pub readable: bool,
    /// Write would not block.
    pub writable: bool,
    /// Error or hangup condition on the fd.
    pub failed: bool,
}

/// Reusable buffer for [`Poller::wait`] results.
pub struct Events {
    buf: Vec<ffi::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: vec![
                ffi::EpollEvent { events: 0, data: 0 };
                cap.clamp(1, 4096)
            ],
            len: 0,
        }
    }

    /// The events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy packed fields out by value; never take references into
            // a packed struct.
            let events = { raw.events };
            let data = { raw.data };
            Event {
                token: data,
                readable: events & (ffi::EPOLLIN | ffi::EPOLLHUP) != 0,
                writable: events & ffi::EPOLLOUT != 0,
                failed: events & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
            }
        })
    }
}

/// A level-triggered epoll instance.
pub struct Poller {
    ep: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) })?;
        Ok(Self {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: ffi::CInt, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = ffi::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        cvt(unsafe { ffi::epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Closing the fd also removes it; this exists for
    /// deregistering without closing (e.g. a drained listener).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = ffi::EpollEvent { events: 0, data: 0 };
        cvt(unsafe { ffi::epoll_ctl(self.ep.as_raw_fd(), ffi::EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Waits for readiness, filling `events`. Returns the event count; an
    /// interrupted wait (`EINTR`) returns 0 instead of erroring so callers
    /// simply loop.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: ffi::CInt = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as ffi::CInt,
        };
        let n = unsafe {
            ffi::epoll_wait(
                self.ep.as_raw_fd(),
                events.buf.as_mut_ptr(),
                events.buf.len() as ffi::CInt,
                ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

/// A nonblocking eventfd used to wake an event loop from another thread.
#[derive(Debug)]
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates the eventfd (`EFD_CLOEXEC | EFD_NONBLOCK`).
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) })?;
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The fd to register for read-readiness in the loop's poller.
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wakes the loop. A full counter (`EAGAIN`) already means "a wake is
    /// pending", so that is success too.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            let _ = ffi::write(self.fd.as_raw_fd(), (&raw const one).cast(), 8);
        }
    }

    /// Consumes all pending wakes (called by the loop after readiness).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            let _ = ffi::read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8);
        }
    }
}

fn sockaddr_bytes(addr: SocketAddr) -> (Vec<u8>, ffi::CInt) {
    match addr {
        SocketAddr::V4(v4) => {
            let sa = ffi::SockaddrIn {
                family: ffi::AF_INET as u16,
                port: v4.port().to_be(),
                addr: u32::from(*v4.ip()).to_be(),
                zero: [0; 8],
            };
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    (&raw const sa).cast::<u8>(),
                    std::mem::size_of::<ffi::SockaddrIn>(),
                )
            }
            .to_vec();
            (bytes, ffi::AF_INET)
        }
        SocketAddr::V6(v6) => {
            let sa = ffi::SockaddrIn6 {
                family: ffi::AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    (&raw const sa).cast::<u8>(),
                    std::mem::size_of::<ffi::SockaddrIn6>(),
                )
            }
            .to_vec();
            (bytes, ffi::AF_INET6)
        }
    }
}

fn setsockopt_one(fd: RawFd, opt: ffi::CInt) -> io::Result<()> {
    let one: ffi::CInt = 1;
    cvt(unsafe {
        ffi::setsockopt(
            fd,
            ffi::SOL_SOCKET,
            opt,
            (&raw const one).cast(),
            std::mem::size_of::<ffi::CInt>() as u32,
        )
    })?;
    Ok(())
}

/// Binds a listener with `SO_REUSEPORT` (and `SO_REUSEADDR`) so N event
/// loops can each own an acceptor on the same address and let the kernel
/// spread incoming connections across them.
pub fn bind_reuseport(addr: SocketAddr, backlog: i32) -> io::Result<TcpListener> {
    let (sa, domain) = sockaddr_bytes(addr);
    let fd = cvt(unsafe { ffi::socket(domain, ffi::SOCK_STREAM | ffi::SOCK_CLOEXEC, 0) })?;
    let owned = unsafe { OwnedFd::from_raw_fd(fd) };
    setsockopt_one(fd, ffi::SO_REUSEADDR)?;
    setsockopt_one(fd, ffi::SO_REUSEPORT)?;
    cvt(unsafe { ffi::bind(fd, sa.as_ptr(), sa.len() as u32) })?;
    cvt(unsafe { ffi::listen(fd, backlog) })?;
    Ok(TcpListener::from(owned))
}

/// Starts a nonblocking connect to `dst`, optionally binding the source
/// address first (distinct loopback sources dodge the ~28k ephemeral-port
/// ceiling per (src, dst) pair in the c10k loadgen). Returns immediately;
/// completion is signalled by write-readiness, success by a clear
/// [`take_socket_error`].
pub fn connect_from(src: Option<Ipv4Addr>, dst: SocketAddrV4) -> io::Result<TcpStream> {
    let fd = cvt(unsafe {
        ffi::socket(
            ffi::AF_INET,
            ffi::SOCK_STREAM | ffi::SOCK_CLOEXEC | ffi::SOCK_NONBLOCK,
            0,
        )
    })?;
    let owned = unsafe { OwnedFd::from_raw_fd(fd) };
    if let Some(ip) = src {
        let (sa, _) = sockaddr_bytes(SocketAddr::V4(SocketAddrV4::new(ip, 0)));
        cvt(unsafe { ffi::bind(fd, sa.as_ptr(), sa.len() as u32) })?;
    }
    let (sa, _) = sockaddr_bytes(SocketAddr::V4(dst));
    let rc = unsafe { ffi::connect(fd, sa.as_ptr(), sa.len() as u32) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        // EINPROGRESS is the expected nonblocking-connect outcome.
        if err.raw_os_error() != Some(115) {
            return Err(err);
        }
    }
    Ok(TcpStream::from(owned))
}

/// Reads and clears `SO_ERROR` — the deferred result of a nonblocking
/// connect. `Ok(None)` means the connect succeeded.
pub fn take_socket_error(stream: &TcpStream) -> io::Result<Option<io::Error>> {
    let mut val: ffi::CInt = 0;
    let mut len = std::mem::size_of::<ffi::CInt>() as u32;
    cvt(unsafe {
        ffi::getsockopt(
            stream.as_raw_fd(),
            ffi::SOL_SOCKET,
            ffi::SO_ERROR,
            (&raw mut val).cast(),
            &mut len,
        )
    })?;
    if val == 0 {
        Ok(None)
    } else {
        Ok(Some(io::Error::from_raw_os_error(val)))
    }
}

/// The current `RLIMIT_NOFILE` (soft, hard) limits.
pub fn nofile_limit() -> (u64, u64) {
    let mut rl = ffi::Rlimit { cur: 0, max: 0 };
    if unsafe { ffi::getrlimit(ffi::RLIMIT_NOFILE, &mut rl) } != 0 {
        return (1024, 1024);
    }
    (rl.cur, rl.max)
}

/// Best-effort raise of the soft fd limit toward `want` (capped at the
/// hard limit — unprivileged processes cannot raise that). Returns the
/// effective soft limit afterwards; the c10k bench sizes its connection
/// target from this instead of failing on constrained machines.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let (soft, hard) = nofile_limit();
    if want <= soft {
        return soft;
    }
    let target = want.min(hard);
    let rl = ffi::Rlimit {
        cur: target,
        max: hard,
    };
    if unsafe { ffi::setrlimit(ffi::RLIMIT_NOFILE, &rl) } == 0 {
        target
    } else {
        soft
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn waker_wakes_a_polled_loop() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);
        // Nothing pending: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
        waker.wake();
        waker.wake(); // coalesces
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "drained waker is no longer readable");
    }

    #[test]
    fn reuseport_listeners_share_a_port_and_serve() {
        let first = bind_reuseport("127.0.0.1:0".parse().unwrap(), 64).unwrap();
        let addr = first.local_addr().unwrap();
        let second = bind_reuseport(addr, 64).unwrap();
        assert_eq!(second.local_addr().unwrap().port(), addr.port());

        // Each accepted connection lands on exactly one of the listeners.
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut served = false;
        while std::time::Instant::now() < deadline && !served {
            for l in [&first, &second] {
                if let Ok((mut s, _)) = l.accept() {
                    let mut buf = [0u8; 4];
                    s.set_nonblocking(false).unwrap();
                    s.read_exact(&mut buf).unwrap();
                    assert_eq!(&buf, b"ping");
                    served = true;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(served, "one of the reuseport listeners must accept");
    }

    #[test]
    fn nonblocking_connect_completes_against_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = match listener.local_addr().unwrap() {
            SocketAddr::V4(v4) => v4,
            SocketAddr::V6(_) => unreachable!(),
        };
        let stream = connect_from(None, addr).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(stream.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(take_socket_error(&stream).unwrap().is_none());
        let _ = listener.accept().unwrap();
    }

    #[test]
    fn nofile_limit_is_sane_and_raise_is_best_effort() {
        let (soft, hard) = nofile_limit();
        assert!(soft > 0 && hard >= soft);
        let effective = raise_nofile_limit(soft); // no-op
        assert_eq!(effective, soft);
        let effective = raise_nofile_limit(hard);
        assert!(effective <= hard && effective >= soft);
    }
}
