//! Degraded-mode serving: answer from exhaustive search when the model
//! cannot.
//!
//! When a case's inference circuit is open, or its model failed
//! checksum/load at startup (tolerated via `fallback: search`), the server
//! can still answer `POST /v1/recommend/*` from the DSE oracle — the same
//! exhaustive search that produced the training labels. Search answers are
//! slower but *exact*, so degraded mode trades latency for availability
//! without ever trading away correctness. Responses are stamped
//! `"source":"search"`, carry a `Warning` header, and are never cached
//! (the cache must only replay model answers at the model's generation).

use airchitect_dse::case1::Case1Problem;
use airchitect_dse::case2::Case2Problem;
use airchitect_dse::case3::Case3Problem;
use airchitect_sim::multi::Schedule;

use crate::batch::{render_array, render_buffers, render_schedule, Outcome, RecQuery, Source};
use crate::reload::case_name;

/// `Warning` header stamped on every fallback response.
pub const WARNING: &str = "199 - \"degraded: answered by exhaustive search, not the model\"";

/// Largest MAC budget the CS1 fallback space covers (the serving spaces
/// scale to the paper's largest configuration; bigger budgets simply see
/// every shape in this space).
const CS1_MAX_BUDGET: u64 = 1 << 18;

/// The exhaustive-search answer engine for all three case studies.
pub struct Oracle {
    case1: Case1Problem,
    case2: Case2Problem,
    case3: Case3Problem,
}

impl Oracle {
    /// Builds the three search problems over the paper's serving spaces.
    pub fn new() -> Self {
        Self {
            case1: Case1Problem::new(CS1_MAX_BUDGET),
            case2: Case2Problem::new(),
            case3: Case3Problem::new(),
        }
    }

    /// Answers one query by exhaustive search.
    ///
    /// The rendered tail mirrors the model path exactly (same field names
    /// and shapes) so clients need no degraded-mode special casing beyond
    /// reading `"source"`. `topk > 0` renders a single-entry `results`
    /// list: search has one optimum, not a ranked distribution.
    pub fn answer(&self, query: &RecQuery, topk: usize) -> Outcome {
        let mut tail = String::with_capacity(128);
        tail.push_str("\"generation\":0,\"case\":\"");
        tail.push_str(case_name(query.case()));
        tail.push_str("\",\"source\":\"search\",");
        tail.push_str(if topk == 0 { "\"result\":" } else { "\"results\":[" });

        match query {
            RecQuery::Array {
                workload,
                mac_budget,
            } => {
                // The space's smallest shape is 2x2: below 4 MACs nothing
                // fits and `search` would panic.
                if *mac_budget < 4 {
                    return Outcome::Err {
                        status: 422,
                        code: "infeasible",
                        message: format!("no array fits a budget of {mac_budget} MACs"),
                    };
                }
                let found = self.case1.search(workload, *mac_budget);
                let Some((array, dataflow)) = self.case1.space().decode(found.label) else {
                    return search_decode_error();
                };
                render_array(&mut tail, array.rows(), array.cols(), dataflow, None);
            }
            RecQuery::Buffers { query } => {
                // `stall_cycles` rejects zero bandwidth; the model path
                // never simulates so it tolerates it, the search cannot.
                if query.bandwidth == 0 {
                    return Outcome::Err {
                        status: 422,
                        code: "infeasible",
                        message: "search fallback requires bandwidth > 0".into(),
                    };
                }
                let found = self.case2.search(query);
                let Some((i, f, o)) = self.case2.space().decode(found.label) else {
                    return search_decode_error();
                };
                render_buffers(&mut tail, i, f, o, None);
            }
            RecQuery::Schedule { workloads } => {
                // The router guarantees exactly 4 workloads (the search
                // asserts it).
                let found = self.case3.search(workloads);
                let Some((perm, dfs)) = self.case3.space().decode(found.label) else {
                    return search_decode_error();
                };
                render_schedule(&mut tail, &Schedule::new(&perm, &dfs), None);
            }
        }

        if topk > 0 {
            tail.push(']');
        }
        tail.push_str("}\n");
        Outcome::Ok {
            body_tail: tail,
            generation: 0,
            source: Source::Search,
        }
    }
}

impl Default for Oracle {
    fn default() -> Self {
        Self::new()
    }
}

fn search_decode_error() -> Outcome {
    // Unreachable by construction: `search` only returns in-space labels.
    Outcome::Err {
        status: 500,
        code: "search_failed",
        message: "exhaustive search returned an undecodable label".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect_dse::case2::Case2Query;
    use airchitect_sim::{ArrayConfig, Dataflow};
    use airchitect_workload::GemmWorkload;

    fn tail_of(outcome: Outcome) -> String {
        match outcome {
            Outcome::Ok {
                body_tail,
                generation,
                source,
            } => {
                assert_eq!(generation, 0);
                assert_eq!(source, Source::Search);
                body_tail
            }
            Outcome::Err { status, code, .. } => panic!("expected Ok, got {status} {code}"),
        }
    }

    #[test]
    fn array_fallback_matches_the_search_oracle() {
        let oracle = Oracle::new();
        let workload = GemmWorkload::new(128, 64, 256).unwrap();
        let query = RecQuery::Array {
            workload,
            mac_budget: 1 << 10,
        };
        let tail = tail_of(oracle.answer(&query, 0));
        assert!(tail.contains("\"source\":\"search\""));
        assert!(tail.contains("\"case\":\"array\""));

        let expect = Case1Problem::new(1 << 18).search(&workload, 1 << 10);
        let (array, df) = Case1Problem::new(1 << 18)
            .space()
            .decode(expect.label)
            .unwrap();
        assert!(tail.contains(&format!("\"rows\":{}", array.rows())));
        assert!(tail.contains(&format!("\"cols\":{}", array.cols())));
        assert!(tail.contains(&format!("\"dataflow\":\"{df}\"")));
    }

    #[test]
    fn infeasible_guards_are_422_not_panics() {
        let oracle = Oracle::new();
        let q = RecQuery::Array {
            workload: GemmWorkload::new(8, 8, 8).unwrap(),
            mac_budget: 3,
        };
        assert!(matches!(
            oracle.answer(&q, 0),
            Outcome::Err { status: 422, .. }
        ));
        let q = RecQuery::Buffers {
            query: Case2Query {
                workload: GemmWorkload::new(8, 8, 8).unwrap(),
                array: ArrayConfig::new(8, 8).unwrap(),
                dataflow: Dataflow::Os,
                bandwidth: 0,
                limit_kb: 1500,
            },
        };
        assert!(matches!(
            oracle.answer(&q, 0),
            Outcome::Err { status: 422, .. }
        ));
    }

    #[test]
    fn topk_renders_a_single_entry_results_list() {
        let oracle = Oracle::new();
        let q = RecQuery::Buffers {
            query: Case2Query {
                workload: GemmWorkload::new(64, 64, 64).unwrap(),
                array: ArrayConfig::new(16, 16).unwrap(),
                dataflow: Dataflow::Ws,
                bandwidth: 16,
                limit_kb: 1500,
            },
        };
        let tail = tail_of(oracle.answer(&q, 3));
        assert!(tail.contains("\"results\":[{"));
        assert!(tail.ends_with("}]}\n"));
    }

    #[test]
    fn schedule_fallback_renders_four_assignments() {
        let oracle = Oracle::new();
        let workloads = vec![
            GemmWorkload::new(8, 8, 8).unwrap(),
            GemmWorkload::new(16, 16, 16).unwrap(),
            GemmWorkload::new(32, 32, 32).unwrap(),
            GemmWorkload::new(64, 64, 64).unwrap(),
        ];
        let tail = tail_of(oracle.answer(&RecQuery::Schedule { workloads }, 0));
        assert_eq!(tail.matches("\"array\":").count(), 4);
    }
}
