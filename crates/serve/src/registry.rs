//! Versioned on-disk model registry with atomic promote/rollback.
//!
//! Layout under `--model-dir`:
//!
//! ```text
//! DIR/
//!   MANIFEST        checksummed text manifest (CRC32 footer)
//!   current.airm    atomic copy of the active version's artifact
//!   v0001.airm …    immutable version artifacts
//! ```
//!
//! The `MANIFEST` names the active version, every retained prior version,
//! and the quarantine list — versions that failed a canary (or failed to
//! load at all) and must never be re-promoted, identified by the CRC32
//! fingerprint of their artifact bytes so a re-emitted identical
//! checkpoint is refused too. All mutations go through the same
//! atomic-write primitive as model persistence (temp file + fsync +
//! rename), and the in-memory state is only committed after the disk
//! write succeeds, so an injected fault mid-promote leaves both the file
//! and the `Registry` on the old state.
//!
//! `current.airm` exists so restarts land on the fleet-active version: a
//! replica (or single server) started with `--model DIR/current.airm`
//! always boots the artifact the last successful promote installed, even
//! if it was SIGKILLed mid-rollout.

use std::path::{Path, PathBuf};

use airchitect_data::integrity::{append_crc_footer, atomic_write, crc32, split_crc_footer};

/// Manifest schema magic + version line.
const HEADER: &str = "AIRREG 1";

/// Artifact fingerprint: CRC32 of the payload with a valid integrity
/// footer stripped. Hashing the whole file would be degenerate — CRC32 of
/// any `body || crc32(body)` is the same residue constant — so every
/// checksummed artifact would share one fingerprint and quarantining one
/// model would quarantine them all.
fn artifact_fingerprint(bytes: &[u8]) -> u32 {
    match split_crc_footer(bytes) {
        Some((body, stored)) if crc32(body) == stored => stored,
        _ => crc32(bytes),
    }
}
/// Default number of non-active, non-quarantined prior versions retained.
pub const DEFAULT_RETAIN: usize = 3;

/// Error produced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Filesystem error, stringified.
    Io(String),
    /// The MANIFEST failed its checksum or schema validation.
    Corrupt(String),
    /// The artifact's fingerprint matches a quarantined (rolled-back)
    /// version; re-registering it is refused.
    Quarantined {
        /// The quarantined version whose fingerprint matched.
        version: u64,
        /// The offending artifact fingerprint.
        fingerprint: u32,
    },
    /// The named version is not in the manifest (or is quarantined where
    /// an ok version is required).
    NotFound(u64),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(msg) => write!(f, "registry i/o: {msg}"),
            RegistryError::Corrupt(msg) => write!(f, "corrupt MANIFEST: {msg}"),
            RegistryError::Quarantined {
                version,
                fingerprint,
            } => write!(
                f,
                "artifact fingerprint {fingerprint:#010x} matches quarantined version v{version}; refusing"
            ),
            RegistryError::NotFound(v) => write!(f, "version v{v} not in the registry"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e.to_string())
    }
}

/// One versioned artifact named by the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionEntry {
    /// Monotonic version number (1-based).
    pub version: u64,
    /// CRC32 of the artifact bytes, doubling as the quarantine identity.
    pub fingerprint: u32,
    /// Rolled back by a failed canary; never promotable again.
    pub quarantined: bool,
}

/// The parsed MANIFEST contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// The promoted version, if any. Never a quarantined one.
    pub active: Option<u64>,
    /// Every known version, in strictly increasing version order.
    pub entries: Vec<VersionEntry>,
}

impl Manifest {
    fn entry(&self, version: u64) -> Option<&VersionEntry> {
        self.entries.iter().find(|e| e.version == version)
    }

    fn render(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        if let Some(v) = self.active {
            out.push_str(&format!("active {v}\n"));
        }
        for e in &self.entries {
            out.push_str(&format!(
                "version {} fp {:#010x} {}\n",
                e.version,
                e.fingerprint,
                if e.quarantined { "quarantined" } else { "ok" }
            ));
        }
        let mut bytes = out.into_bytes();
        append_crc_footer(&mut bytes);
        bytes
    }

    /// Parses and validates MANIFEST bytes: checksum, schema, strictly
    /// increasing version order, and an active pointer that names an
    /// existing non-quarantined entry.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Corrupt`] on any violation.
    pub fn parse(bytes: &[u8]) -> Result<Self, RegistryError> {
        let (body, stored) =
            split_crc_footer(bytes).ok_or(RegistryError::Corrupt("truncated file".into()))?;
        let computed = crc32(body);
        if computed != stored {
            return Err(RegistryError::Corrupt(format!(
                "checksum mismatch: file says {stored:#010x}, contents hash to {computed:#010x}"
            )));
        }
        let text = std::str::from_utf8(body)
            .map_err(|_| RegistryError::Corrupt("not UTF-8".into()))?;
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(RegistryError::Corrupt("bad header".into()));
        }
        let mut manifest = Manifest::default();
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("active") => {
                    if manifest.active.is_some() || !manifest.entries.is_empty() {
                        return Err(RegistryError::Corrupt(
                            "active line must appear once, before versions".into(),
                        ));
                    }
                    let v = parts
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or(RegistryError::Corrupt("bad active line".into()))?;
                    manifest.active = Some(v);
                }
                Some("version") => {
                    let v = parts
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or(RegistryError::Corrupt("bad version number".into()))?;
                    if parts.next() != Some("fp") {
                        return Err(RegistryError::Corrupt("missing fp field".into()));
                    }
                    let fp = parts
                        .next()
                        .and_then(|s| s.strip_prefix("0x"))
                        .and_then(|s| u32::from_str_radix(s, 16).ok())
                        .ok_or(RegistryError::Corrupt("bad fingerprint".into()))?;
                    let quarantined = match parts.next() {
                        Some("ok") => false,
                        Some("quarantined") => true,
                        _ => return Err(RegistryError::Corrupt("bad version state".into())),
                    };
                    if let Some(last) = manifest.entries.last() {
                        if v <= last.version {
                            return Err(RegistryError::Corrupt(format!(
                                "version v{v} out of order after v{}",
                                last.version
                            )));
                        }
                    }
                    manifest.entries.push(VersionEntry {
                        version: v,
                        fingerprint: fp,
                        quarantined,
                    });
                }
                Some(other) => {
                    return Err(RegistryError::Corrupt(format!("unknown line `{other}`")))
                }
                None => {} // blank line
            }
        }
        if let Some(active) = manifest.active {
            match manifest.entry(active) {
                Some(e) if !e.quarantined => {}
                Some(_) => {
                    return Err(RegistryError::Corrupt(format!(
                        "active version v{active} is quarantined"
                    )))
                }
                None => {
                    return Err(RegistryError::Corrupt(format!(
                        "active version v{active} has no entry"
                    )))
                }
            }
        }
        Ok(manifest)
    }
}

/// A versioned model store rooted at one directory.
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    retain: usize,
    manifest: Manifest,
}

impl Registry {
    /// Opens (or initializes) the registry at `dir`, creating the
    /// directory and an empty manifest if absent. `retain` bounds how many
    /// non-active prior versions [`Registry::promote`] keeps on disk.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Io`] on filesystem errors and
    /// [`RegistryError::Corrupt`] if an existing MANIFEST fails
    /// validation (a corrupt manifest is never silently reinitialized).
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, RegistryError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let manifest_path = dir.join("MANIFEST");
        let manifest = match std::fs::read(&manifest_path) {
            Ok(bytes) => Manifest::parse(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let m = Manifest::default();
                atomic_write(&manifest_path, &m.render())?;
                m
            }
            Err(e) => return Err(e.into()),
        };
        Ok(Self {
            dir,
            retain: retain.max(1),
            manifest,
        })
    }

    /// The current manifest state.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Re-reads the MANIFEST from disk, picking up versions registered by
    /// another process (`train --model-dir` staging into a live server's
    /// registry). On any error the in-memory state is left untouched.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the file is unreadable,
    /// [`RegistryError::Corrupt`] when it fails validation.
    pub fn refresh(&mut self) -> Result<(), RegistryError> {
        let bytes = std::fs::read(self.dir.join("MANIFEST"))?;
        self.manifest = Manifest::parse(&bytes)?;
        Ok(())
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Artifact path for a version.
    pub fn version_path(&self, version: u64) -> PathBuf {
        self.dir.join(format!("v{version:04}.airm"))
    }

    /// Stable path of the active artifact copy, rewritten atomically by
    /// every promote. Start servers against this path.
    pub fn current_path(&self) -> PathBuf {
        self.dir.join("current.airm")
    }

    /// Whether `fingerprint` matches any quarantined version.
    pub fn quarantined_fingerprint(&self, fingerprint: u32) -> Option<u64> {
        self.manifest
            .entries
            .iter()
            .find(|e| e.quarantined && e.fingerprint == fingerprint)
            .map(|e| e.version)
    }

    /// The newest non-quarantined version newer than the active one — the
    /// next reload's canary candidate.
    pub fn latest_candidate(&self) -> Option<VersionEntry> {
        let floor = self.manifest.active.unwrap_or(0);
        self.manifest
            .entries
            .iter()
            .rev()
            .find(|e| !e.quarantined && e.version > floor)
            .copied()
    }

    /// Registers `bytes` as a new version (without promoting it).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Quarantined`] when the bytes fingerprint a
    /// rolled-back version (a failed fine-tune re-emitted verbatim must
    /// not sneak back in), or [`RegistryError::Io`] on write failure.
    pub fn add_version(&mut self, bytes: &[u8]) -> Result<u64, RegistryError> {
        let fingerprint = artifact_fingerprint(bytes);
        if let Some(version) = self.quarantined_fingerprint(fingerprint) {
            return Err(RegistryError::Quarantined {
                version,
                fingerprint,
            });
        }
        let version = self.manifest.entries.last().map_or(1, |e| e.version + 1);
        atomic_write(self.version_path(version), bytes)?;
        let mut next = self.manifest.clone();
        next.entries.push(VersionEntry {
            version,
            fingerprint,
            quarantined: false,
        });
        self.store(next)?;
        Ok(version)
    }

    /// Promotes `version` to active: atomically rewrites `current.airm`
    /// with its artifact bytes, swaps the manifest pointer, and prunes
    /// non-quarantined prior versions beyond the retain budget.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] for unknown or quarantined versions;
    /// [`RegistryError::Io`] on write failure (the manifest — on disk and
    /// in memory — keeps its old state).
    pub fn promote(&mut self, version: u64) -> Result<PathBuf, RegistryError> {
        airchitect_chaos::fail_point!("registry.promote", |e: std::io::Error| Err(
            RegistryError::Io(e.to_string())
        ));
        match self.manifest.entry(version) {
            Some(e) if !e.quarantined => {}
            _ => return Err(RegistryError::NotFound(version)),
        }
        let bytes = std::fs::read(self.version_path(version))?;
        atomic_write(self.current_path(), &bytes)?;
        let mut next = self.manifest.clone();
        next.active = Some(version);
        // Retain the active version, every quarantined entry (the
        // do-not-repeat list), and the newest `retain` other versions.
        let mut keep_ok: Vec<u64> = next
            .entries
            .iter()
            .filter(|e| !e.quarantined && e.version != version)
            .map(|e| e.version)
            .collect();
        keep_ok.sort_unstable();
        let pruned: Vec<u64> = keep_ok
            .iter()
            .rev()
            .skip(self.retain)
            .copied()
            .collect();
        next.entries.retain(|e| !pruned.contains(&e.version));
        self.store(next)?;
        for v in pruned {
            let _ = std::fs::remove_file(self.version_path(v));
        }
        Ok(self.current_path())
    }

    /// Quarantines `version` after a failed canary (idempotent). The
    /// active pointer is moved off it if it was active (it should not be
    /// in the canary flow, where promotion happens last).
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] for unknown versions;
    /// [`RegistryError::Io`] on write failure (state unchanged).
    pub fn quarantine(&mut self, version: u64) -> Result<(), RegistryError> {
        airchitect_chaos::fail_point!("registry.quarantine", |e: std::io::Error| Err(
            RegistryError::Io(e.to_string())
        ));
        if self.manifest.entry(version).is_none() {
            return Err(RegistryError::NotFound(version));
        }
        let mut next = self.manifest.clone();
        for e in &mut next.entries {
            if e.version == version {
                e.quarantined = true;
            }
        }
        if next.active == Some(version) {
            next.active = next
                .entries
                .iter()
                .rev()
                .find(|e| !e.quarantined)
                .map(|e| e.version);
            // Keep the stable artifact copy pointing at the new active so
            // a restart after this rollback boots the right version.
            if let Some(fallback) = next.active {
                let bytes = std::fs::read(self.version_path(fallback))?;
                atomic_write(self.current_path(), &bytes)?;
            }
        }
        self.store(next)
    }

    /// Writes `next` to disk, committing it to memory only on success.
    fn store(&mut self, next: Manifest) -> Result<(), RegistryError> {
        airchitect_chaos::fail_point!("registry.manifest.write", |e: std::io::Error| Err(
            RegistryError::Io(e.to_string())
        ));
        atomic_write(self.dir.join("MANIFEST"), &next.render())?;
        self.manifest = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "airchitect-registry-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_add_promote_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut reg = Registry::open(&dir, 3).unwrap();
        assert_eq!(reg.manifest().active, None);
        let v1 = reg.add_version(b"model-one").unwrap();
        assert_eq!(v1, 1);
        assert_eq!(reg.latest_candidate().unwrap().version, 1);
        reg.promote(v1).unwrap();
        assert_eq!(reg.manifest().active, Some(1));
        assert_eq!(std::fs::read(reg.current_path()).unwrap(), b"model-one");
        assert!(reg.latest_candidate().is_none(), "nothing newer than active");

        // A reopened registry sees the same state.
        let back = Registry::open(&dir, 3).unwrap();
        assert_eq!(back.manifest(), reg.manifest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_fingerprint_is_refused() {
        let dir = temp_dir("quarantine");
        let mut reg = Registry::open(&dir, 3).unwrap();
        let v1 = reg.add_version(b"good").unwrap();
        reg.promote(v1).unwrap();
        let v2 = reg.add_version(b"bad-finetune").unwrap();
        reg.quarantine(v2).unwrap();
        assert_eq!(reg.manifest().active, Some(v1), "active untouched");
        // Re-emitting the identical artifact is refused...
        assert!(matches!(
            reg.add_version(b"bad-finetune"),
            Err(RegistryError::Quarantined { version, .. }) if version == v2
        ));
        // ...and the quarantined version cannot be promoted.
        assert!(matches!(reg.promote(v2), Err(RegistryError::NotFound(_))));
        // Different bytes are fine.
        assert_eq!(reg.add_version(b"better-finetune").unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_prunes_beyond_retain() {
        let dir = temp_dir("prune");
        let mut reg = Registry::open(&dir, 2).unwrap();
        for i in 0..6u8 {
            let v = reg.add_version(&[i; 8]).unwrap();
            reg.promote(v).unwrap();
        }
        let versions: Vec<u64> = reg.manifest().entries.iter().map(|e| e.version).collect();
        // active (6) + the 2 newest priors (4, 5).
        assert_eq!(versions, vec![4, 5, 6]);
        assert!(!reg.version_path(1).exists());
        assert!(reg.version_path(6).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksummed_artifacts_get_distinct_fingerprints() {
        // CRC32 of `body || crc32(body)` is a constant residue, so two
        // different footer-carrying artifacts would collide if the
        // fingerprint hashed the whole file. Quarantining one must not
        // refuse the other.
        let mut one = b"model-one".to_vec();
        append_crc_footer(&mut one);
        let mut two = b"model-two".to_vec();
        append_crc_footer(&mut two);
        assert_eq!(crc32(&one), crc32(&two), "residue premise");
        assert_ne!(artifact_fingerprint(&one), artifact_fingerprint(&two));

        let dir = temp_dir("fingerprint");
        let mut reg = Registry::open(&dir, 3).unwrap();
        let v1 = reg.add_version(&one).unwrap();
        let v2 = reg.add_version(&two).unwrap();
        reg.quarantine(v2).unwrap();
        // The quarantine must bind to `two` only...
        assert!(matches!(
            reg.add_version(&two),
            Err(RegistryError::Quarantined { version, .. }) if version == v2
        ));
        // ...not to every checksummed artifact.
        assert_eq!(reg.add_version(&one).unwrap(), 3);
        let _ = (v1, std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn corrupt_manifest_is_rejected_not_reinitialized() {
        let dir = temp_dir("corrupt");
        let mut reg = Registry::open(&dir, 3).unwrap();
        reg.add_version(b"x").unwrap();
        let path = dir.join("MANIFEST");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Registry::open(&dir, 3),
            Err(RegistryError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn active_must_reference_ok_entry() {
        let mut m = Manifest {
            active: Some(2),
            entries: vec![VersionEntry {
                version: 1,
                fingerprint: 7,
                quarantined: false,
            }],
        };
        assert!(matches!(
            Manifest::parse(&m.render()),
            Err(RegistryError::Corrupt(_))
        ));
        m.active = Some(1);
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
    }
}
