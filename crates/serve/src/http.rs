//! Minimal HTTP/1.1 message handling: enough of the protocol for a JSON
//! API behind `curl` and the loadgen bench — request-line + headers +
//! `Content-Length` bodies, keep-alive, and fixed-size limits. No chunked
//! encoding, no TLS, no multiplexing.

use std::io::{BufRead, Write};

/// Maximum accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are not split off; the API does
    /// not use them).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Client-requested end-to-end budget from `X-Deadline-Ms`, if sent.
    pub deadline_ms: Option<u64>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before a request started.
    Closed,
    /// The read timed out (idle keep-alive connection).
    TimedOut,
    /// Malformed or over-limit request; the server should answer with the
    /// given status and close.
    Bad {
        /// Status code to answer with (400 or 413).
        status: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// Any other socket error.
    Io(std::io::Error),
}

fn bad(status: u16, reason: impl Into<String>) -> ReadError {
    ReadError::Bad {
        status,
        reason: reason.into(),
    }
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// Returns [`ReadError`] on close, timeout, malformed input, or I/O
/// failure.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;

    // Request line. An immediate EOF here is a clean close, not an error.
    if read_crlf_line(reader, &mut line, &mut head_bytes)? == 0 {
        return Err(ReadError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad(400, "empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| bad(400, "request line has no target"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(bad(400, format!("unsupported version `{version}`")));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    let mut deadline_ms = None;
    loop {
        line.clear();
        read_crlf_line(reader, &mut line, &mut head_bytes)?;
        if line.is_empty() {
            break; // end of headers
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header `{line}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| bad(400, "bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(bad(400, "chunked bodies are not supported"));
        } else if name.eq_ignore_ascii_case("x-deadline-ms") {
            deadline_ms = Some(
                value
                    .parse::<u64>()
                    .map_err(|_| bad(400, "X-Deadline-Ms must be a non-negative integer"))?,
            );
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(bad(413, format!("body of {content_length} bytes")));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(map_io)?;
    }
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
        deadline_ms,
    })
}

/// Reads one `\r\n`-terminated line into `line` (terminator stripped),
/// returning the number of raw bytes consumed (0 only at EOF before any
/// byte).
fn read_crlf_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<usize, ReadError> {
    line.clear();
    let n = reader.read_line(line).map_err(map_io)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(bad(413, "request head too large"));
    }
    if n > 0 && !line.ends_with('\n') {
        return Err(bad(400, "truncated request"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(n)
}

fn map_io(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

/// One response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body text.
    pub body: String,
    /// Optional `Retry-After` header (seconds), set on 429s and retryable
    /// 503s (draining, circuit open).
    pub retry_after: Option<u64>,
    /// Optional `Warning` header value, set on degraded-mode responses
    /// (owned so a proxy can pass an upstream replica's warning through).
    pub warning: Option<String>,
    /// Additional response headers, written verbatim after the standard
    /// set. Used by the cluster router for passthrough annotation
    /// (`X-Replica`); names must be valid header tokens.
    pub extra: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
            warning: None,
            extra: Vec::new(),
        }
    }

    /// A JSON error body `{"error": ..., "code": ...}`.
    pub fn error(status: u16, code: &str, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        airchitect_telemetry::json::write_escaped(&mut body, message);
        body.push_str(",\"code\":");
        airchitect_telemetry::json::write_escaped(&mut body, code);
        body.push_str("}\n");
        Self::json(status, body)
    }

    /// A plain-text response (the `/metrics` endpoint).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
            warning: None,
            extra: Vec::new(),
        }
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes `resp` to `stream`, honoring `keep_alive`.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response<W: Write>(
    stream: &mut W,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    if let Some(warning) = &resp.warning {
        head.push_str(&format!("Warning: {warning}\r\n"));
    }
    for (name, value) in &resp.extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse("POST /v1/recommend/array HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/recommend/array");
        assert_eq!(r.body, b"{}");
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let r = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn eof_is_a_clean_close() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(&raw),
            Err(ReadError::Bad { status: 413, .. })
        ));
    }

    #[test]
    fn garbage_is_a_400() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(ReadError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn response_writing_round_trips() {
        let mut out = Vec::new();
        let mut resp = Response::json(429, "{}".into());
        resp.retry_after = Some(1);
        resp.extra.push(("X-Replica".into(), "2".into()));
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Replica: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
