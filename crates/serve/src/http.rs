//! Minimal HTTP/1.1 message handling: enough of the protocol for a JSON
//! API behind `curl` and the loadgen bench — request-line + headers +
//! `Content-Length` bodies, keep-alive, and fixed-size limits. No chunked
//! encoding, no TLS, no multiplexing.
//!
//! Two parsing front-ends share one grammar: [`read_request`] blocks on a
//! `BufRead` (threaded listener, cluster proxy, test clients) and
//! [`try_parse`] makes a resumable attempt over whatever bytes a
//! nonblocking socket has delivered so far (evented listener). Both route
//! every request line and header through the same `Head` builder, so the
//! two listeners cannot drift on protocol decisions.

use std::io::{BufRead, Write};

/// Maximum accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are not split off; the API does
    /// not use them).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Client-requested end-to-end budget from `X-Deadline-Ms`, if sent.
    pub deadline_ms: Option<u64>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before a request started.
    Closed,
    /// The read timed out (idle keep-alive connection).
    TimedOut,
    /// Malformed or over-limit request; the server should answer with the
    /// given status and close.
    Bad {
        /// Status code to answer with (400 or 413).
        status: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// Any other socket error.
    Io(std::io::Error),
}

fn bad(status: u16, reason: impl Into<String>) -> ReadError {
    ReadError::Bad {
        status,
        reason: reason.into(),
    }
}

/// Partially assembled request head, shared by the blocking and
/// incremental parsers.
struct Head {
    method: String,
    path: String,
    keep_alive: bool,
    content_length: Option<usize>,
    deadline_ms: Option<u64>,
}

impl Head {
    /// Parses the request line.
    fn start(line: &str) -> Result<Self, ReadError> {
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| bad(400, "empty request line"))?
            .to_ascii_uppercase();
        let path = parts
            .next()
            .ok_or_else(|| bad(400, "request line has no target"))?
            .to_string();
        let version = parts.next().unwrap_or("HTTP/1.1");
        if !version.starts_with("HTTP/1.") {
            return Err(bad(400, format!("unsupported version `{version}`")));
        }
        Ok(Self {
            method,
            path,
            // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
            keep_alive: version != "HTTP/1.0",
            content_length: None,
            deadline_ms: None,
        })
    }

    /// Applies one header line.
    fn header(&mut self, line: &str) -> Result<(), ReadError> {
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header `{line}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed = value
                .parse::<usize>()
                .map_err(|_| bad(400, "bad Content-Length"))?;
            // Conflicting duplicates are the classic request-smuggling
            // vector: two framings of the same stream. Reject outright;
            // repeated *identical* values are tolerated per RFC 9110.
            if let Some(prev) = self.content_length {
                if prev != parsed {
                    return Err(bad(400, "conflicting duplicate Content-Length headers"));
                }
            }
            self.content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("connection") {
            // `Connection` is a comma-separated token list
            // (`keep-alive, X-Custom`); whole-value equality would
            // misread every multi-token form. `close` wins over
            // `keep-alive` if a confused client sends both.
            let mut close = false;
            let mut keep = false;
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
            if close {
                self.keep_alive = false;
            } else if keep {
                self.keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(bad(400, "chunked bodies are not supported"));
        } else if name.eq_ignore_ascii_case("x-deadline-ms") {
            self.deadline_ms = Some(
                value
                    .parse::<u64>()
                    .map_err(|_| bad(400, "X-Deadline-Ms must be a non-negative integer"))?,
            );
        }
        Ok(())
    }

    /// Validates the body length once the header block is complete.
    fn body_length(&self) -> Result<usize, ReadError> {
        let len = self.content_length.unwrap_or(0);
        if len > MAX_BODY_BYTES {
            return Err(bad(413, format!("body of {len} bytes")));
        }
        Ok(len)
    }

    fn into_request(self, body: Vec<u8>) -> Request {
        Request {
            method: self.method,
            path: self.path,
            body,
            keep_alive: self.keep_alive,
            deadline_ms: self.deadline_ms,
        }
    }
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// Returns [`ReadError`] on close, timeout, malformed input, or I/O
/// failure.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;

    // Request line. An immediate EOF here is a clean close, not an error.
    if read_crlf_line(reader, &mut line, &mut head_bytes)? == 0 {
        return Err(ReadError::Closed);
    }
    let mut head = Head::start(&line)?;
    loop {
        read_crlf_line(reader, &mut line, &mut head_bytes)?;
        if line.is_empty() {
            break; // end of headers
        }
        head.header(&line)?;
    }

    let content_length = head.body_length()?;
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(map_io)?;
    }
    Ok(head.into_request(body))
}

/// Reads one `\r\n`-terminated line into `line` (terminator stripped),
/// returning the number of raw bytes consumed (0 only at EOF before any
/// byte).
///
/// The head limit is enforced *while* reading via `Read::take`: a client
/// streaming megabytes without a newline is cut off (and answered 413) at
/// the cap instead of having the whole flood buffered first.
fn read_crlf_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<usize, ReadError> {
    line.clear();
    // One byte past the cap is enough to distinguish "over the limit"
    // from "line ends exactly at it".
    let cap = (MAX_HEAD_BYTES + 1).saturating_sub(*head_bytes) as u64;
    let mut raw = Vec::new();
    let n = std::io::Read::take(&mut *reader, cap)
        .read_until(b'\n', &mut raw)
        .map_err(map_io)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(bad(413, "request head too large"));
    }
    if n > 0 && raw.last() != Some(&b'\n') {
        return Err(bad(400, "truncated request"));
    }
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    match std::str::from_utf8(&raw) {
        Ok(s) => line.push_str(s),
        Err(_) => return Err(bad(400, "request head is not valid UTF-8")),
    }
    Ok(n)
}

fn map_io(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

/// Result of one [`try_parse`] attempt over an accumulated buffer.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request; the first `consumed` buffer bytes belong to it
    /// and must be drained before the next attempt.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed (head + body).
        consumed: usize,
    },
    /// The buffer does not yet hold a complete request; read more bytes
    /// and try again.
    Partial,
}

/// Incremental request parser for the evented listener: makes one attempt
/// over everything a nonblocking socket has delivered so far. Stateless —
/// re-parsing a small head on each readiness event is cheaper than
/// carrying parser state, and the head cap bounds the work.
///
/// Limits are enforced on the spot: a buffer exceeding [`MAX_HEAD_BYTES`]
/// without a complete header block is rejected 413 immediately, exactly
/// like the blocking reader's capped line reads.
///
/// # Errors
///
/// Only [`ReadError::Bad`] is produced (there is no I/O here).
pub fn try_parse(buf: &[u8]) -> Result<Parsed, ReadError> {
    let mut pos = 0usize;
    let mut head: Option<Head> = None;
    loop {
        let Some(nl) = find_newline(buf, pos) else {
            // No complete line: everything buffered so far is head bytes.
            if buf.len() > MAX_HEAD_BYTES {
                return Err(bad(413, "request head too large"));
            }
            return Ok(Parsed::Partial);
        };
        let next = nl + 1;
        if next > MAX_HEAD_BYTES {
            return Err(bad(413, "request head too large"));
        }
        let mut line = &buf[pos..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let line = std::str::from_utf8(line)
            .map_err(|_| bad(400, "request head is not valid UTF-8"))?;
        pos = next;
        match head.as_mut() {
            None => head = Some(Head::start(line)?),
            Some(h) => {
                if line.is_empty() {
                    // End of headers: the body either is fully buffered or
                    // we wait for more bytes.
                    let h = head.take().expect("head present");
                    let content_length = h.body_length()?;
                    if buf.len() < pos + content_length {
                        return Ok(Parsed::Partial);
                    }
                    let body = buf[pos..pos + content_length].to_vec();
                    return Ok(Parsed::Complete {
                        request: h.into_request(body),
                        consumed: pos + content_length,
                    });
                }
                h.header(line)?;
            }
        }
    }
}

fn find_newline(buf: &[u8], from: usize) -> Option<usize> {
    buf.get(from..)?.iter().position(|&b| b == b'\n').map(|i| from + i)
}

/// One response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body text.
    pub body: String,
    /// Optional `Retry-After` header (seconds), set on 429s and retryable
    /// 503s (draining, circuit open).
    pub retry_after: Option<u64>,
    /// Optional `Warning` header value, set on degraded-mode responses
    /// (owned so a proxy can pass an upstream replica's warning through).
    pub warning: Option<String>,
    /// Additional response headers, written verbatim after the standard
    /// set. Used by the cluster router for passthrough annotation
    /// (`X-Replica`); names must be valid header tokens.
    pub extra: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
            warning: None,
            extra: Vec::new(),
        }
    }

    /// A JSON error body `{"error": ..., "code": ...}`.
    pub fn error(status: u16, code: &str, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        airchitect_telemetry::json::write_escaped(&mut body, message);
        body.push_str(",\"code\":");
        airchitect_telemetry::json::write_escaped(&mut body, code);
        body.push_str("}\n");
        Self::json(status, body)
    }

    /// A plain-text response (the `/metrics` endpoint).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
            warning: None,
            extra: Vec::new(),
        }
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes `resp` to `stream`, honoring `keep_alive`.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response<W: Write>(
    stream: &mut W,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    if let Some(warning) = &resp.warning {
        head.push_str(&format!("Warning: {warning}\r\n"));
    }
    for (name, value) in &resp.extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse("POST /v1/recommend/array HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/recommend/array");
        assert_eq!(r.body, b"{}");
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let r = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn connection_header_is_a_token_list() {
        // Multi-token values used to fail whole-value equality and be
        // ignored entirely.
        let r = parse("GET /healthz HTTP/1.0\r\nConnection: keep-alive, X-Custom\r\n\r\n").unwrap();
        assert!(r.keep_alive, "keep-alive token recognised inside a list");
        let r = parse("GET /healthz HTTP/1.1\r\nConnection: foo , close\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "close token recognised inside a list");
        // `close` wins when both appear.
        let r = parse("GET /healthz HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        let raw =
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}";
        assert!(matches!(
            parse(raw),
            Err(ReadError::Bad { status: 400, .. })
        ));
        // Identical duplicates are harmless and tolerated.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse(raw).unwrap();
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn eof_is_a_clean_close() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(&raw),
            Err(ReadError::Bad { status: 413, .. })
        ));
    }

    #[test]
    fn newline_free_megabyte_head_is_cut_off_at_the_cap() {
        // Regression: `read_line` used to buffer the entire flood before
        // the head-size check ran. The capped reader must stop at
        // MAX_HEAD_BYTES + 1 and answer 413.
        let raw = vec![b'a'; 1024 * 1024];
        let mut reader = BufReader::new(&raw[..]);
        match read_request(&mut reader) {
            Err(ReadError::Bad { status: 413, .. }) => {}
            other => panic!("expected 413, got {other:?}"),
        }
        // The reader stopped just past the cap instead of draining 1 MiB.
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut rest).unwrap();
        assert!(
            rest.len() >= raw.len() - (MAX_HEAD_BYTES + 1),
            "flood must not be buffered past the cap (left: {})",
            rest.len()
        );
    }

    #[test]
    fn garbage_is_a_400() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(ReadError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn incremental_parser_matches_the_blocking_one() {
        let raw = "POST /v1/recommend/array HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nX-Deadline-Ms: 250\r\n\r\n{}";
        // Byte-at-a-time: Partial until the last byte, then Complete.
        for cut in 0..raw.len() {
            let parsed = try_parse(&raw.as_bytes()[..cut]).unwrap();
            assert!(matches!(parsed, Parsed::Partial), "cut at {cut}");
        }
        match try_parse(raw.as_bytes()).unwrap() {
            Parsed::Complete { request, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.body, b"{}");
                assert_eq!(request.deadline_ms, Some(250));
                assert!(request.keep_alive);
            }
            Parsed::Partial => panic!("full buffer must parse"),
        }
    }

    #[test]
    fn incremental_parser_handles_pipelined_requests() {
        let one = "GET /healthz HTTP/1.1\r\n\r\n";
        let two = "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let buf = format!("{one}{two}");
        let Parsed::Complete { request, consumed } = try_parse(buf.as_bytes()).unwrap() else {
            panic!("first request must parse");
        };
        assert_eq!(request.path, "/healthz");
        assert_eq!(consumed, one.len());
        let Parsed::Complete { request, consumed } = try_parse(&buf.as_bytes()[one.len()..]).unwrap()
        else {
            panic!("second request must parse");
        };
        assert_eq!(request.body, b"abc");
        assert_eq!(consumed, two.len());
    }

    #[test]
    fn incremental_parser_enforces_the_head_cap() {
        let flood = vec![b'a'; MAX_HEAD_BYTES + 2];
        assert!(matches!(
            try_parse(&flood),
            Err(ReadError::Bad { status: 413, .. })
        ));
        // A valid head that simply runs long is also cut off.
        let mut long = b"GET / HTTP/1.1\r\n".to_vec();
        while long.len() <= MAX_HEAD_BYTES + 2 {
            long.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert!(matches!(
            try_parse(&long),
            Err(ReadError::Bad { status: 413, .. })
        ));
    }

    #[test]
    fn incremental_parser_rejects_conflicting_content_length() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}";
        assert!(matches!(
            try_parse(raw.as_bytes()),
            Err(ReadError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn response_writing_round_trips() {
        let mut out = Vec::new();
        let mut resp = Response::json(429, "{}".into());
        resp.retry_after = Some(1);
        resp.extra.push(("X-Replica".into(), "2".into()));
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Replica: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
