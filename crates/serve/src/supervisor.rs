//! Replica fleet supervision: child-process lifecycle, health probing,
//! ring membership, and crash-restart with exponential backoff.
//!
//! `serve --cluster` runs one supervisor in the router process. For each
//! replica slot it spawns the single-process server binary (`--port 0`,
//! the bound port is read back from the child's `listening on http://...`
//! stdout line), then drives the slot through a small state machine:
//!
//! ```text
//!            spawn                 1 ok probe (first admission)
//!   Down ───────────▶ Starting ──────────────────────────────▶ Healthy
//!    ▲                   │                                       │  ▲
//!    │   crash / hang    │            degraded healthz, or       │  │
//!    ├───────────────────┘            eject_after failed probes  │  │
//!    │                                                           ▼  │
//!    │                 crash                                  Ejected
//!    └────────────────────────────────────────────────────────┘  │
//!                               readmit_after consecutive ok ────┘
//! ```
//!
//! Only `Healthy` slots are on the routing [`Ring`]. A crash schedules a
//! respawn after an exponential, jittered backoff; a restart storm (more
//! than `storm_cap` crashes inside `storm_window_ms`) degrades to one
//! respawn attempt per window instead of hot-looping a broken binary.
//! [`RestartBackoff`] takes explicit millisecond timestamps so the policy
//! is unit-testable without sleeping.

use std::collections::VecDeque;
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use airchitect_telemetry::metrics::{self, Gauge};

use crate::breaker::Breaker;
use crate::client::HttpClient;
use crate::ring::{Ring, DEFAULT_VNODES};
use crate::ServeError;

/// Configuration of a replica fleet (supervisor + router).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Router bind address, e.g. `127.0.0.1:8080` (`:0` for ephemeral).
    pub addr: String,
    /// Replica command line: program followed by its arguments. The
    /// supervisor appends `--port 0` itself, so the argv must not already
    /// carry a `--port`.
    pub replica_argv: Vec<String>,
    /// Number of replica child processes to supervise.
    pub replicas: usize,
    /// Milliseconds between health-probe sweeps.
    pub probe_interval_ms: u64,
    /// Connect + read timeout for one `/healthz` probe, milliseconds.
    pub probe_timeout_ms: u64,
    /// Consecutive *unreachable* probes before a healthy replica is
    /// ejected (a `degraded` healthz ejects immediately).
    pub eject_after: u32,
    /// Consecutive ok probes before an ejected/restarted replica rejoins
    /// the ring. The very first admission needs only one ok probe.
    pub readmit_after: u32,
    /// First-crash restart delay, milliseconds (doubles per attempt).
    pub restart_base_ms: u64,
    /// Upper bound on the exponential restart delay, milliseconds.
    pub restart_cap_ms: u64,
    /// Restart-storm window, milliseconds.
    pub storm_window_ms: u64,
    /// Crashes tolerated inside the storm window before restarts degrade
    /// to one attempt per window. Zero disables the cap.
    pub storm_cap: u32,
    /// How long a spawned child may go without printing its bound address
    /// before it is treated as hung and restarted, milliseconds.
    pub startup_timeout_ms: u64,
    /// Fixed hedging delay, milliseconds; `0` derives the delay from the
    /// rolling p99 backend latency.
    pub hedge_ms: u64,
    /// Maximum in-flight proxied requests per replica; excess spills to
    /// the next replica on the ring.
    pub max_inflight: u64,
    /// Total per-request backend budget at the router, milliseconds.
    pub backend_timeout_ms: u64,
    /// Outbound (router→replica) breaker threshold; zero disables.
    pub breaker_threshold: u32,
    /// Outbound breaker cooldown, milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Virtual nodes per replica on the consistent-hash ring.
    pub vnodes: usize,
    /// Router-side client connection read timeout, seconds.
    pub read_timeout_secs: u64,
    /// Router-side client connection write timeout, seconds.
    pub write_timeout_secs: u64,
    /// Versioned model registry shared by the fleet (`--model-dir`). When
    /// set, `/v1/reload` becomes a rolling one-replica-at-a-time rollout
    /// driven through each replica's canary state machine.
    pub model_dir: Option<std::path::PathBuf>,
    /// How long the router waits for one replica's canary verdict before
    /// declaring the rollout failed and rolling the fleet back.
    pub rollout_timeout_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            replica_argv: Vec::new(),
            replicas: 3,
            probe_interval_ms: 200,
            probe_timeout_ms: 1000,
            eject_after: 2,
            readmit_after: 2,
            restart_base_ms: 100,
            restart_cap_ms: 5000,
            storm_window_ms: 30_000,
            storm_cap: 5,
            startup_timeout_ms: 30_000,
            hedge_ms: 0,
            max_inflight: 256,
            backend_timeout_ms: 10_000,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1000,
            vnodes: DEFAULT_VNODES,
            read_timeout_secs: 5,
            write_timeout_secs: 5,
            model_dir: None,
            rollout_timeout_ms: 30_000,
        }
    }
}

/// What the backoff policy decided after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartDecision {
    /// Respawn after this many milliseconds (exponential + jitter).
    Backoff(u64),
    /// The storm cap tripped: respawn only after this (window-length)
    /// quarantine delay.
    Quarantine(u64),
}

impl RestartDecision {
    /// The delay in milliseconds, whichever variant.
    #[must_use]
    pub fn delay_ms(self) -> u64 {
        match self {
            RestartDecision::Backoff(ms) | RestartDecision::Quarantine(ms) => ms,
        }
    }
}

/// Exponential restart backoff with jitter and a restart-storm cap,
/// driven by explicit millisecond timestamps (no hidden clock).
#[derive(Debug)]
pub struct RestartBackoff {
    base_ms: u64,
    cap_ms: u64,
    storm_window_ms: u64,
    storm_cap: u32,
    attempt: u32,
    rng: u64,
    history: VecDeque<u64>,
}

impl RestartBackoff {
    /// A fresh policy. `seed` decorrelates jitter between replicas.
    #[must_use]
    pub fn new(
        base_ms: u64,
        cap_ms: u64,
        storm_window_ms: u64,
        storm_cap: u32,
        seed: u64,
    ) -> Self {
        Self {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            storm_window_ms: storm_window_ms.max(1),
            storm_cap,
            attempt: 0,
            rng: seed | 1,
            history: VecDeque::new(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*, same family the chaos crate uses.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Records a crash at `now_ms` and returns when to respawn.
    ///
    /// The backoff delay for attempt *n* is drawn uniformly from
    /// `[ceil(d/2), d]` where `d = min(cap, base << n)` — jitter keeps a
    /// correlated fleet crash from producing a synchronized respawn
    /// thundering herd.
    pub fn on_crash(&mut self, now_ms: u64) -> RestartDecision {
        self.history.push_back(now_ms);
        while self
            .history
            .front()
            .is_some_and(|&t| t + self.storm_window_ms <= now_ms)
        {
            self.history.pop_front();
        }
        if self.storm_cap > 0 && self.history.len() as u32 > self.storm_cap {
            return RestartDecision::Quarantine(self.storm_window_ms.max(self.cap_ms));
        }
        let exp = self.attempt.min(20);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base_ms
            .checked_shl(exp)
            .unwrap_or(u64::MAX)
            .min(self.cap_ms);
        let span = raw / 2;
        let jitter = if span == 0 { 0 } else { self.next_rand() % (span + 1) };
        RestartDecision::Backoff(raw - span + jitter)
    }

    /// Resets the exponential attempt counter after the replica proved
    /// stable (re-admitted to the ring). The storm history is *not*
    /// cleared: flapping — crash, recover, crash — still hits the cap.
    pub fn on_stable(&mut self) {
        self.attempt = 0;
    }
}

/// Replica lifecycle phase (see the module diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Spawned; waiting for the bound address and the first ok probe.
    Starting,
    /// On the ring, taking traffic.
    Healthy,
    /// Alive but off the ring (degraded or unresponsive); probing toward
    /// re-admission.
    Ejected,
    /// Process dead; waiting out the restart backoff.
    Down,
}

impl Phase {
    /// Lowercase name for `/healthz` rendering.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Starting => "starting",
            Phase::Healthy => "healthy",
            Phase::Ejected => "ejected",
            Phase::Down => "down",
        }
    }
}

struct SlotInner {
    phase: Phase,
    child: Option<Child>,
    addr: Option<SocketAddr>,
    pid: Option<u32>,
    /// Bumped on every spawn so stale stdout-watcher threads from a dead
    /// child cannot publish an address into the new incarnation.
    spawn_seq: u64,
    spawned_at_ms: u64,
    next_restart_ms: u64,
    ok_streak: u32,
    fail_streak: u32,
    ever_admitted: bool,
    ever_spawned: bool,
    backoff: RestartBackoff,
}

/// One supervised replica: process state plus the router-side counters
/// the proxy updates as it forwards traffic.
pub struct ReplicaSlot {
    id: u32,
    inner: Mutex<SlotInner>,
    /// Times this slot's child was respawned after a crash.
    pub restarts_total: AtomicU64,
    /// Requests retried away from this replica after it failed or was
    /// skipped (breaker open, in-flight cap).
    pub failovers_total: AtomicU64,
    /// Hedged duplicates fired because this replica was slow.
    pub hedges_fired: AtomicU64,
    /// Proxied requests currently in flight to this replica.
    pub inflight: AtomicU64,
    /// Outbound router→replica circuit breaker.
    pub breaker: Breaker,
}

impl ReplicaSlot {
    fn new(id: u32, cfg: &ClusterConfig) -> Self {
        // Per-replica breaker gauges are created at fleet construction
        // and leaked: the `Breaker` API wants `&'static Gauge`, and a
        // fleet's slot count is small and fixed for the process lifetime.
        let name: &'static str =
            Box::leak(format!("cluster.breaker_state.replica_{id}").into_boxed_str());
        let gauge: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
        Self {
            id,
            inner: Mutex::new(SlotInner {
                phase: Phase::Down,
                child: None,
                addr: None,
                pid: None,
                spawn_seq: 0,
                spawned_at_ms: 0,
                next_restart_ms: 0,
                ok_streak: 0,
                fail_streak: 0,
                ever_admitted: false,
                ever_spawned: false,
                backoff: RestartBackoff::new(
                    cfg.restart_base_ms,
                    cfg.restart_cap_ms,
                    cfg.storm_window_ms,
                    cfg.storm_cap,
                    0x9e37_79b9_7f4a_7c15 ^ u64::from(id),
                ),
            }),
            restarts_total: AtomicU64::new(0),
            failovers_total: AtomicU64::new(0),
            hedges_fired: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            breaker: Breaker::new(
                cfg.breaker_threshold,
                Duration::from_millis(cfg.breaker_cooldown_ms),
                gauge,
            ),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotInner> {
        self.inner.lock().expect("replica slot lock poisoned")
    }

    /// This slot's replica id.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The replica's bound address, once known.
    #[must_use]
    pub fn addr(&self) -> Option<SocketAddr> {
        self.lock().addr
    }
}

/// Point-in-time view of one replica for `/healthz` and `/metrics`.
#[derive(Debug, Clone)]
pub struct ReplicaView {
    /// Replica id (slot index).
    pub id: u32,
    /// Child process id, if running.
    pub pid: Option<u32>,
    /// Bound address, once discovered.
    pub addr: Option<SocketAddr>,
    /// Lifecycle phase name.
    pub phase: &'static str,
    /// Times the child was respawned after a crash.
    pub restarts_total: u64,
    /// Requests failed over away from this replica.
    pub failovers_total: u64,
    /// Hedged duplicates fired against this replica's slowness.
    pub hedges_fired: u64,
    /// Proxied requests currently in flight.
    pub inflight: u64,
    /// Outbound breaker phase name.
    pub breaker: &'static str,
}

/// Fleet-level status from the healthy-replica quorum: `ok` when every
/// replica is on the ring, `degraded` while at least half (rounded up)
/// are, `critical` below that.
#[must_use]
pub fn fleet_status(total: usize, healthy: usize) -> &'static str {
    if total > 0 && healthy >= total {
        "ok"
    } else if healthy > 0 && healthy >= total.div_ceil(2) {
        "degraded"
    } else {
        "critical"
    }
}

/// Shared fleet state: the slots and the routing ring. The supervisor
/// mutates it from the probe thread; the proxy reads it per request.
pub struct Fleet {
    slots: Vec<Arc<ReplicaSlot>>,
    ring: RwLock<Ring>,
    epoch: Instant,
}

impl Fleet {
    fn new(cfg: &ClusterConfig) -> Arc<Self> {
        let slots = (0..cfg.replicas)
            .map(|id| Arc::new(ReplicaSlot::new(id as u32, cfg)))
            .collect();
        metrics::CLUSTER_HEALTHY_REPLICAS.set(0.0);
        Arc::new(Self {
            slots,
            ring: RwLock::new(Ring::new(cfg.vnodes)),
            epoch: Instant::now(),
        })
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Total replica slots.
    #[must_use]
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Replicas currently on the ring.
    #[must_use]
    pub fn healthy(&self) -> usize {
        self.ring.read().expect("ring lock poisoned").len()
    }

    /// The slot for `id`.
    #[must_use]
    pub fn slot(&self, id: u32) -> Option<&Arc<ReplicaSlot>> {
        self.slots.get(id as usize)
    }

    /// Up to `n` healthy replicas for `key`, primary first (failover
    /// order). See [`Ring::ordered`].
    #[must_use]
    pub fn ordered(&self, key: &[u8], n: usize) -> Vec<u32> {
        self.ring.read().expect("ring lock poisoned").ordered(key, n)
    }

    /// The bound address of replica `id`, if known.
    #[must_use]
    pub fn replica_addr(&self, id: u32) -> Option<SocketAddr> {
        self.slot(id).and_then(|s| s.addr())
    }

    /// Per-replica views for `/healthz` and `/metrics` rendering.
    #[must_use]
    pub fn views(&self) -> Vec<ReplicaView> {
        let on_ring = {
            let ring = self.ring.read().expect("ring lock poisoned");
            self.slots.iter().map(|s| ring.contains(s.id)).collect::<Vec<_>>()
        };
        self.slots
            .iter()
            .zip(on_ring)
            .map(|(slot, ringed)| {
                let g = slot.lock();
                ReplicaView {
                    id: slot.id,
                    pid: g.pid,
                    addr: g.addr,
                    // The ring is the source of truth for "healthy".
                    phase: if ringed { Phase::Healthy.name() } else { g.phase.name() },
                    restarts_total: slot.restarts_total.load(Ordering::Relaxed),
                    failovers_total: slot.failovers_total.load(Ordering::Relaxed),
                    hedges_fired: slot.hedges_fired.load(Ordering::Relaxed),
                    inflight: slot.inflight.load(Ordering::Relaxed),
                    breaker: slot.breaker.phase_name(),
                }
            })
            .collect()
    }

    /// SIGKILLs replica `id`'s child process (test/bench hook; the
    /// supervisor notices the death on its next probe sweep and walks the
    /// slot through restart). Returns whether a process was killed.
    pub fn kill_replica(&self, id: u32) -> bool {
        let Some(slot) = self.slot(id) else {
            return false;
        };
        let mut g = slot.lock();
        match g.child.as_mut() {
            Some(child) => child.kill().is_ok(),
            None => false,
        }
    }

    fn set_membership(&self, id: u32, healthy: bool) {
        let mut ring = self.ring.write().expect("ring lock poisoned");
        if healthy {
            ring.add(id);
        } else {
            ring.remove(id);
        }
        metrics::CLUSTER_HEALTHY_REPLICAS.set(ring.len() as f64);
    }
}

/// What one `/healthz` probe concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeOutcome {
    Ok,
    Degraded,
    Unreachable,
}

fn probe_replica(addr: SocketAddr, timeout: Duration) -> ProbeOutcome {
    metrics::CLUSTER_PROBES.inc();
    // The closure gives the failpoint's injected error an early return
    // target that doesn't skip the rest of the probe accounting.
    #[allow(clippy::redundant_closure_call)]
    let injected = (|| {
        airchitect_chaos::fail_point!("cluster.probe", Err);
        Ok::<(), std::io::Error>(())
    })();
    let outcome = if injected.is_err() {
        ProbeOutcome::Unreachable
    } else {
        match HttpClient::connect(addr, timeout).and_then(|mut c| c.get("/healthz")) {
            Ok(resp) if resp.status == 200 && resp.body.contains("\"status\":\"ok\"") => {
                ProbeOutcome::Ok
            }
            Ok(resp) if resp.status == 200 => ProbeOutcome::Degraded,
            _ => ProbeOutcome::Unreachable,
        }
    };
    if outcome != ProbeOutcome::Ok {
        metrics::CLUSTER_PROBE_FAILURES.inc();
    }
    outcome
}

fn spawn_child(argv: &[String]) -> std::io::Result<Child> {
    airchitect_chaos::fail_point!("cluster.spawn", Err);
    Command::new(&argv[0])
        .args(&argv[1..])
        .arg("--port")
        .arg("0")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
}

/// Watches a child's stdout for its `listening on http://ADDR` line,
/// publishes the address into the slot, then keeps draining so the child
/// never blocks on a full pipe.
fn watch_stdout(slot: Arc<ReplicaSlot>, seq: u64, stdout: std::process::ChildStdout) {
    let _ = std::thread::Builder::new()
        .name(format!("replica-{}-stdout", slot.id))
        .spawn(move || {
            let reader = std::io::BufReader::new(stdout);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.trim().strip_prefix("listening on http://") {
                    if let Ok(addr) = rest.trim().parse::<SocketAddr>() {
                        let mut g = slot.lock();
                        if g.spawn_seq == seq && g.addr.is_none() {
                            g.addr = Some(addr);
                        }
                    }
                }
            }
        });
}

/// The fleet supervisor: owns the probe thread and the children.
pub struct Supervisor {
    fleet: Arc<Fleet>,
    stop: Arc<AtomicBool>,
    probe: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns the initial replicas and starts the probe thread.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an empty argv or zero replicas,
    /// and [`ServeError::Io`] when the very first spawn of a replica
    /// fails (a broken binary path should fail startup loudly, not spin
    /// in the restart loop).
    pub fn start(cfg: ClusterConfig) -> Result<(Self, Arc<Fleet>), ServeError> {
        if cfg.replica_argv.is_empty() {
            return Err(ServeError::Config("cluster replica argv is empty".into()));
        }
        if cfg.replicas == 0 {
            return Err(ServeError::Config("cluster needs at least 1 replica".into()));
        }
        let fleet = Fleet::new(&cfg);
        for slot in &fleet.slots {
            let child = spawn_child(&cfg.replica_argv)
                .map_err(|e| ServeError::Io(format!("spawn replica {}: {e}", slot.id)))?;
            attach_child(slot, child, fleet.now_ms(), false);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let probe = {
            let fleet = Arc::clone(&fleet);
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("cluster-probe".into())
                .spawn(move || probe_loop(&fleet, &cfg, &stop))
                .expect("spawn probe thread")
        };
        Ok((
            Self {
                fleet: Arc::clone(&fleet),
                stop,
                probe: Some(probe),
            },
            fleet,
        ))
    }

    /// The shared fleet state.
    #[must_use]
    pub fn fleet(&self) -> Arc<Fleet> {
        Arc::clone(&self.fleet)
    }

    /// Stops probing, asks every child to drain (`POST /v1/shutdown`),
    /// and reaps them — escalating to SIGKILL after a bounded wait.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.probe.take() {
            let _ = h.join();
        }
        // Ask everyone to drain first, then wait: replica drains overlap.
        let mut draining = Vec::new();
        for slot in &self.fleet.slots {
            let mut g = slot.lock();
            let child = g.child.take();
            let addr = g.addr.take();
            g.phase = Phase::Down;
            g.pid = None;
            drop(g);
            let Some(child) = child else { continue };
            if let Some(addr) = addr {
                if let Ok(mut c) = HttpClient::connect(addr, Duration::from_millis(500)) {
                    let _ = c.post("/v1/shutdown", "");
                }
            }
            draining.push(child);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for mut child in draining {
            loop {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    break;
                }
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        metrics::CLUSTER_HEALTHY_REPLICAS.set(0.0);
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // Belt and braces for the non-`shutdown` path (panic, early
        // return): never leave orphan children running.
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.probe.take() {
            let _ = h.join();
        }
        for slot in &self.fleet.slots {
            let mut g = slot.lock();
            if let Some(mut child) = g.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn attach_child(slot: &Arc<ReplicaSlot>, mut child: Child, now_ms: u64, is_restart: bool) {
    let mut g = slot.lock();
    g.spawn_seq += 1;
    g.phase = Phase::Starting;
    g.addr = None;
    g.pid = Some(child.id());
    g.spawned_at_ms = now_ms;
    g.ok_streak = 0;
    g.fail_streak = 0;
    if is_restart && g.ever_spawned {
        slot.restarts_total.fetch_add(1, Ordering::Relaxed);
        metrics::CLUSTER_RESTARTS.inc();
    }
    g.ever_spawned = true;
    let seq = g.spawn_seq;
    let stdout = child.stdout.take();
    g.child = Some(child);
    drop(g);
    if let Some(stdout) = stdout {
        watch_stdout(Arc::clone(slot), seq, stdout);
    }
}

fn probe_loop(fleet: &Arc<Fleet>, cfg: &ClusterConfig, stop: &AtomicBool) {
    let interval = Duration::from_millis(cfg.probe_interval_ms.max(10));
    while !stop.load(Ordering::Acquire) {
        for slot in &fleet.slots {
            step_slot(fleet, slot, cfg);
            if stop.load(Ordering::Acquire) {
                return;
            }
        }
        // Sleep in short slices so shutdown is prompt even with a long
        // probe interval.
        let until = Instant::now() + interval;
        while Instant::now() < until {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn step_slot(fleet: &Arc<Fleet>, slot: &Arc<ReplicaSlot>, cfg: &ClusterConfig) {
    let now = fleet.now_ms();
    let mut g = slot.lock();
    if g.phase == Phase::Down {
        if now < g.next_restart_ms {
            return;
        }
        match spawn_child(&cfg.replica_argv) {
            Ok(child) => {
                drop(g);
                attach_child(slot, child, now, true);
            }
            Err(_) => {
                // A failed spawn is a crash at time zero: back off again.
                let decision = g.backoff.on_crash(now);
                g.next_restart_ms = now + decision.delay_ms();
            }
        }
        return;
    }

    // Dead child? `try_wait` also reaps the zombie.
    let dead = match g.child.as_mut() {
        None => true,
        Some(child) => matches!(child.try_wait(), Ok(Some(_))),
    };
    if dead {
        on_crash(fleet, slot, g, now);
        return;
    }

    if g.addr.is_none() {
        if now.saturating_sub(g.spawned_at_ms) > cfg.startup_timeout_ms {
            // Hung startup: never printed its address. Kill and restart.
            if let Some(child) = g.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            g.child = None;
            on_crash(fleet, slot, g, now);
        }
        return;
    }
    let addr = g.addr.expect("checked above");
    let seq = g.spawn_seq;
    // Probe without holding the slot lock: a slow replica must not block
    // `kill_replica`, `/healthz` rendering, or the proxy.
    drop(g);
    let outcome = probe_replica(addr, Duration::from_millis(cfg.probe_timeout_ms.max(1)));
    let g = slot.lock();
    if g.spawn_seq != seq || g.phase == Phase::Down {
        return; // the slot moved on while we probed
    }
    apply_probe(fleet, slot, g, cfg, outcome);
}

fn on_crash(
    fleet: &Arc<Fleet>,
    slot: &Arc<ReplicaSlot>,
    mut g: MutexGuard<'_, SlotInner>,
    now: u64,
) {
    let was_healthy = g.phase == Phase::Healthy;
    g.phase = Phase::Down;
    g.child = None;
    g.addr = None;
    g.pid = None;
    g.ok_streak = 0;
    g.fail_streak = 0;
    let decision = g.backoff.on_crash(now);
    g.next_restart_ms = now + decision.delay_ms();
    drop(g);
    if was_healthy {
        metrics::CLUSTER_EJECTIONS.inc();
    }
    fleet.set_membership(slot.id, false);
}

fn apply_probe(
    fleet: &Arc<Fleet>,
    slot: &Arc<ReplicaSlot>,
    mut g: MutexGuard<'_, SlotInner>,
    cfg: &ClusterConfig,
    outcome: ProbeOutcome,
) {
    match outcome {
        ProbeOutcome::Ok => {
            g.fail_streak = 0;
            g.ok_streak = g.ok_streak.saturating_add(1);
            if g.phase != Phase::Healthy {
                // First admission is eager (one ok probe); re-admission
                // after an ejection waits for a consecutive streak.
                let required = if g.ever_admitted {
                    cfg.readmit_after.max(1)
                } else {
                    1
                };
                if g.ok_streak >= required {
                    let readmitted = g.ever_admitted;
                    g.phase = Phase::Healthy;
                    g.ever_admitted = true;
                    g.backoff.on_stable();
                    drop(g);
                    fleet.set_membership(slot.id, true);
                    if readmitted {
                        metrics::CLUSTER_READMISSIONS.inc();
                    }
                }
            }
        }
        ProbeOutcome::Degraded => {
            g.ok_streak = 0;
            g.fail_streak = g.fail_streak.saturating_add(1);
            if g.phase == Phase::Healthy {
                // The replica itself says it is degraded: eject now.
                g.phase = Phase::Ejected;
                drop(g);
                fleet.set_membership(slot.id, false);
                metrics::CLUSTER_EJECTIONS.inc();
            }
        }
        ProbeOutcome::Unreachable => {
            g.ok_streak = 0;
            g.fail_streak = g.fail_streak.saturating_add(1);
            if g.phase == Phase::Healthy && g.fail_streak >= cfg.eject_after.max(1) {
                g.phase = Phase::Ejected;
                drop(g);
                fleet.set_membership(slot.id, false);
                metrics::CLUSTER_EJECTIONS.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backoff() -> RestartBackoff {
        RestartBackoff::new(100, 5000, 30_000, 5, 42)
    }

    #[test]
    fn backoff_delays_grow_exponentially_within_jitter_bounds() {
        let mut b = backoff();
        let mut now = 0u64;
        for attempt in 0..6u32 {
            let raw = (100u64 << attempt).min(5000);
            match b.on_crash(now) {
                RestartDecision::Backoff(d) => {
                    assert!(
                        d >= raw - raw / 2 && d <= raw,
                        "attempt {attempt}: delay {d} outside [{}, {raw}]",
                        raw - raw / 2
                    );
                }
                RestartDecision::Quarantine(_) => panic!("storm cap too eager"),
            }
            // Space the crashes out so the storm window never fills.
            now += 40_000;
        }
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let mut a = RestartBackoff::new(100, 5000, 30_000, 5, 7);
        let mut b = RestartBackoff::new(100, 5000, 30_000, 5, 7);
        for i in 0..8u64 {
            assert_eq!(a.on_crash(i * 60_000), b.on_crash(i * 60_000));
        }
    }

    #[test]
    fn stability_resets_the_exponent_but_not_the_storm_history() {
        let mut b = backoff();
        let d1 = b.on_crash(0).delay_ms();
        let _ = b.on_crash(40_000);
        b.on_stable();
        // Attempt counter is back to zero: same bounds as the first crash.
        let d3 = b.on_crash(80_000).delay_ms();
        assert!(d1 <= 100 && d3 <= 100, "reset delays: {d1} {d3}");
    }

    #[test]
    fn restart_storm_degrades_to_one_attempt_per_window() {
        let mut b = backoff(); // cap 5 crashes / 30s window
        for i in 0..5 {
            assert!(
                matches!(b.on_crash(i * 10), RestartDecision::Backoff(_)),
                "crash {i} should still back off"
            );
        }
        assert!(
            matches!(b.on_crash(50), RestartDecision::Quarantine(_)),
            "6th crash in the window must quarantine"
        );
        // Once the window slides past the burst, normal backoff resumes.
        assert!(matches!(b.on_crash(100_000), RestartDecision::Backoff(_)));
    }

    #[test]
    fn storm_cap_zero_disables_the_cap() {
        let mut b = RestartBackoff::new(1, 10, 1000, 0, 3);
        for i in 0..50 {
            assert!(matches!(b.on_crash(i), RestartDecision::Backoff(_)));
        }
    }

    #[test]
    fn fleet_status_quorum_ladder() {
        assert_eq!(fleet_status(3, 3), "ok");
        assert_eq!(fleet_status(3, 2), "degraded");
        assert_eq!(fleet_status(3, 1), "critical");
        assert_eq!(fleet_status(3, 0), "critical");
        assert_eq!(fleet_status(2, 1), "degraded");
        assert_eq!(fleet_status(1, 1), "ok");
        assert_eq!(fleet_status(1, 0), "critical");
        assert_eq!(fleet_status(0, 0), "critical");
    }

    #[test]
    fn supervisor_rejects_bad_config() {
        let cfg = ClusterConfig::default(); // empty argv
        assert!(matches!(
            Supervisor::start(cfg),
            Err(ServeError::Config(_))
        ));
        let cfg = ClusterConfig {
            replica_argv: vec!["/bin/true".into()],
            replicas: 0,
            ..ClusterConfig::default()
        };
        assert!(matches!(
            Supervisor::start(cfg),
            Err(ServeError::Config(_))
        ));
    }
}
