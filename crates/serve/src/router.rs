//! Route dispatch, JSON request decoding, and the non-worker endpoints
//! (`/healthz`, `/metrics`, reload/shutdown acknowledgements).
//!
//! Request bodies mirror the `airchitect recommend` CLI flags — same field
//! names (underscored), same defaults — so a curl quickstart reads like the
//! CLI invocation it replaces. Validation failures are always `400` with a
//! machine-readable `code`; unknown body fields are rejected (typos should
//! fail loudly, exactly like the CLI's `expect_only`).

use airchitect::model::CaseStudy;
use airchitect_dse::case2::Case2Query;
use airchitect_sim::{ArrayConfig, Dataflow};
use airchitect_telemetry::json::{self, Value};
use airchitect_telemetry::metrics;
use airchitect_workload::GemmWorkload;

use crate::batch::RecQuery;
use crate::breaker::Breakers;
use crate::http::Response;
use crate::reload::{case_name, ModelHub};

/// Largest accepted `topk` (bounds response size; every space has far
/// fewer *useful* candidates than this).
pub const MAX_TOPK: usize = 64;

/// The server's route table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/recommend/{array|buffers|schedule}`.
    Recommend(CaseStudy),
    /// `POST /v1/reload`.
    Reload,
    /// `POST /v1/rollback`.
    Rollback,
    /// `POST /v1/shutdown`.
    Shutdown,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
}

/// Maps a method + path to a route.
///
/// # Errors
///
/// Returns a ready-to-send `404` for unknown paths and `405` for known
/// paths with the wrong method.
pub fn route(method: &str, path: &str) -> Result<Route, Response> {
    let (want_post, r) = match path {
        "/v1/recommend/array" => (true, Route::Recommend(CaseStudy::ArrayDataflow)),
        "/v1/recommend/buffers" => (true, Route::Recommend(CaseStudy::BufferSizing)),
        "/v1/recommend/schedule" => (true, Route::Recommend(CaseStudy::MultiArrayScheduling)),
        "/v1/reload" => (true, Route::Reload),
        "/v1/rollback" => (true, Route::Rollback),
        "/v1/shutdown" => (true, Route::Shutdown),
        "/healthz" => (false, Route::Healthz),
        "/metrics" => (false, Route::Metrics),
        _ => {
            return Err(Response::error(
                404,
                "not_found",
                &format!("no route for `{path}`"),
            ))
        }
    };
    let ok = if want_post {
        method == "POST"
    } else {
        method == "GET" || method == "HEAD"
    };
    if !ok {
        return Err(Response::error(
            405,
            "method_not_allowed",
            &format!(
                "`{path}` requires {}",
                if want_post { "POST" } else { "GET" }
            ),
        ));
    }
    Ok(r)
}

/// A decoded recommendation request: the validated query, the requested
/// ranked-list size (`0` = top-1), and the canonical cache key.
#[derive(Debug)]
pub struct ParsedQuery {
    /// Validated domain query.
    pub query: RecQuery,
    /// Ranked-list size; `0` means top-1.
    pub topk: usize,
    /// Canonical bytes identifying the query semantically (exact integer
    /// parameters, not JSON text).
    pub cache_key: Vec<u8>,
}

fn bad(code: &str, message: &str) -> Response {
    Response::error(400, code, message)
}

fn body_obj(body: &[u8]) -> Result<Vec<(String, Value)>, Response> {
    if body.iter().all(u8::is_ascii_whitespace) {
        return Ok(Vec::new());
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| bad("bad_encoding", "request body is not UTF-8"))?;
    match json::parse(text) {
        Ok(Value::Obj(members)) => Ok(members),
        Ok(_) => Err(bad("bad_request", "request body must be a JSON object")),
        Err(e) => Err(bad("bad_json", &format!("malformed JSON: {e}"))),
    }
}

fn check_fields(members: &[(String, Value)], allowed: &[&str]) -> Result<(), Response> {
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(bad(
                "unknown_field",
                &format!("unknown field `{key}` (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn get<'a>(members: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req_u64(members: &[(String, Value)], key: &str) -> Result<u64, Response> {
    get(members, key)
        .ok_or_else(|| bad("missing_field", &format!("`{key}` is required")))?
        .as_u64()
        .ok_or_else(|| bad("bad_field", &format!("`{key}` must be a non-negative integer")))
}

fn opt_u64(members: &[(String, Value)], key: &str, default: u64) -> Result<u64, Response> {
    match get(members, key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad("bad_field", &format!("`{key}` must be a non-negative integer"))),
    }
}

fn parse_topk(members: &[(String, Value)]) -> Result<usize, Response> {
    let k = opt_u64(members, "topk", 0)?;
    if k as usize > MAX_TOPK {
        return Err(bad(
            "bad_field",
            &format!("`topk` is capped at {MAX_TOPK}"),
        ));
    }
    Ok(k as usize)
}

fn workload(m: u64, n: u64, k: u64) -> Result<GemmWorkload, Response> {
    GemmWorkload::new(m, n, k).map_err(|e| bad("bad_workload", &e.to_string()))
}

/// Canonical cache key: case tag, topk, then the exact integer parameters
/// in a fixed order, all little-endian. Built from the *decoded* values, so
/// two JSON bodies differing only in field order or formatting share a key.
fn key_begin(tag: u8, topk: usize) -> Vec<u8> {
    let mut key = Vec::with_capacity(64);
    key.push(tag);
    key.extend_from_slice(&(topk as u32).to_le_bytes());
    key
}

fn key_push(key: &mut Vec<u8>, v: u64) {
    key.extend_from_slice(&v.to_le_bytes());
}

/// Decodes and validates one recommendation body for `case`.
///
/// # Errors
///
/// Returns a ready-to-send `400` response describing the first problem.
pub fn parse_recommend(case: CaseStudy, body: &[u8]) -> Result<ParsedQuery, Response> {
    let members = body_obj(body)?;
    match case {
        CaseStudy::ArrayDataflow => {
            check_fields(&members, &["m", "n", "k", "mac_budget", "topk"])?;
            let topk = parse_topk(&members)?;
            let (m, n, k) = (
                req_u64(&members, "m")?,
                req_u64(&members, "n")?,
                req_u64(&members, "k")?,
            );
            // Same default as the CLI's `--budget-log2 15`.
            let mac_budget = opt_u64(&members, "mac_budget", 1 << 15)?;
            let mut cache_key = key_begin(1, topk);
            for v in [m, n, k, mac_budget] {
                key_push(&mut cache_key, v);
            }
            Ok(ParsedQuery {
                query: RecQuery::Array {
                    workload: workload(m, n, k)?,
                    mac_budget,
                },
                topk,
                cache_key,
            })
        }
        CaseStudy::BufferSizing => {
            check_fields(
                &members,
                &["m", "n", "k", "rows", "cols", "dataflow", "bandwidth", "limit_kb", "topk"],
            )?;
            let topk = parse_topk(&members)?;
            let (m, n, k) = (
                req_u64(&members, "m")?,
                req_u64(&members, "n")?,
                req_u64(&members, "k")?,
            );
            let (rows, cols) = (req_u64(&members, "rows")?, req_u64(&members, "cols")?);
            let dataflow = match get(&members, "dataflow") {
                None => Dataflow::Os,
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| bad("bad_field", "`dataflow` must be a string"))?
                    .parse::<Dataflow>()
                    .map_err(|e| bad("bad_field", &e.to_string()))?,
            };
            let bandwidth = opt_u64(&members, "bandwidth", 16)?;
            let limit_kb = opt_u64(&members, "limit_kb", 1500)?;
            let array = ArrayConfig::new(rows, cols)
                .map_err(|e| bad("bad_array", &e.to_string()))?;
            let mut cache_key = key_begin(2, topk);
            for v in [m, n, k, rows, cols, dataflow.index() as u64, bandwidth, limit_kb] {
                key_push(&mut cache_key, v);
            }
            Ok(ParsedQuery {
                query: RecQuery::Buffers {
                    query: Case2Query {
                        workload: workload(m, n, k)?,
                        array,
                        dataflow,
                        bandwidth,
                        limit_kb,
                    },
                },
                topk,
                cache_key,
            })
        }
        CaseStudy::MultiArrayScheduling => {
            check_fields(&members, &["workloads", "topk"])?;
            let topk = parse_topk(&members)?;
            let items = get(&members, "workloads")
                .ok_or_else(|| bad("missing_field", "`workloads` is required"))?
                .as_arr()
                .ok_or_else(|| bad("bad_field", "`workloads` must be an array"))?;
            if items.len() != 4 {
                return Err(bad(
                    "bad_field",
                    &format!("`workloads` needs exactly 4 entries (got {})", items.len()),
                ));
            }
            let mut cache_key = key_begin(3, topk);
            let mut workloads = Vec::with_capacity(4);
            for item in items {
                let Value::Obj(fields) = item else {
                    return Err(bad(
                        "bad_field",
                        "each workload must be an object {\"m\":..,\"n\":..,\"k\":..}",
                    ));
                };
                check_fields(fields, &["m", "n", "k"])?;
                let (m, n, k) = (
                    req_u64(fields, "m")?,
                    req_u64(fields, "n")?,
                    req_u64(fields, "k")?,
                );
                for v in [m, n, k] {
                    key_push(&mut cache_key, v);
                }
                workloads.push(workload(m, n, k)?);
            }
            Ok(ParsedQuery {
                query: RecQuery::Schedule { workloads },
                topk,
                cache_key,
            })
        }
    }
}

/// Renders `GET /healthz`: liveness, hub generation, loaded models,
/// breaker phases, rollout state, and any tolerated startup load errors.
/// The status is `degraded` (not `ok`) while any circuit is open or a
/// registered model is missing — load balancers doing string matches see
/// the difference. A canary in flight does *not* flip the status: the
/// incumbent still answers all non-canary traffic, and the cluster
/// supervisor's probe must keep seeing a healthy replica mid-rollout.
pub fn render_healthz(
    hub: &ModelHub,
    breakers: &Breakers,
    rollout: Option<&crate::canary::Rollout>,
) -> Response {
    let load_errors = hub.load_errors();
    let degraded = breakers.any_tripped() || !load_errors.is_empty();
    let mut body = String::from("{\"status\":\"");
    body.push_str(if degraded { "degraded" } else { "ok" });
    body.push_str("\",\"generation\":");
    body.push_str(&hub.generation().to_string());
    body.push_str(",\"models\":[");
    for (i, model) in hub.all().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"case\":");
        json::write_escaped(&mut body, case_name(model.case));
        body.push_str(",\"path\":");
        json::write_escaped(&mut body, &model.path.display().to_string());
        body.push_str(",\"generation\":");
        body.push_str(&model.generation.to_string());
        body.push('}');
    }
    body.push_str("],\"breakers\":{");
    for (i, (name, phase)) in breakers.phases().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        json::write_escaped(&mut body, name);
        body.push(':');
        json::write_escaped(&mut body, phase);
    }
    body.push_str("},\"load_errors\":[");
    for (i, err) in load_errors.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        json::write_escaped(&mut body, err);
    }
    body.push(']');
    if let Some(rollout) = rollout {
        body.push_str(",\"rollout\":");
        rollout.write_status(&mut body);
        if let Some(version) = rollout.active_version() {
            body.push_str(",\"version\":");
            body.push_str(&version.to_string());
        }
    }
    body.push_str("}\n");
    Response::json(200, body)
}

/// Renders `GET /metrics` as plain `name value` lines (greppable; the
/// format the repo's JSONL sink also flattens to).
pub fn render_metrics() -> Response {
    let snap = metrics::snapshot();
    let mut body = String::new();
    for (name, value) in &snap.counters {
        body.push_str(&format!("{name} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        body.push_str(&format!("{name} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        body.push_str(&format!("{name}_count {}\n", h.count));
        body.push_str(&format!("{name}_sum {}\n", h.sum));
        body.push_str(&format!("{name}_min {}\n", h.min));
        body.push_str(&format!("{name}_max {}\n", h.max));
    }
    Response::text(200, body)
}

/// Renders the `POST /v1/reload` success acknowledgement (the immediate
/// swap path — a canary-mode reload answers from the rollout controller
/// instead). Reports the loaded generation and, when a registry is
/// attached, the active model version and rollout state.
pub fn render_reloaded(hub: &ModelHub, rollout: Option<&crate::canary::Rollout>) -> Response {
    let mut body = String::from("{\"reloaded\":true,\"generation\":");
    body.push_str(&hub.generation().to_string());
    body.push_str(",\"models\":");
    body.push_str(&hub.all().len().to_string());
    if let Some(rollout) = rollout {
        if let Some(version) = rollout.active_version() {
            body.push_str(",\"version\":");
            body.push_str(&version.to_string());
        }
        body.push_str(",\"rollout\":");
        rollout.write_status(&mut body);
    }
    body.push_str("}\n");
    Response::json(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve() {
        assert_eq!(
            route("POST", "/v1/recommend/array").unwrap(),
            Route::Recommend(CaseStudy::ArrayDataflow)
        );
        assert_eq!(route("GET", "/healthz").unwrap(), Route::Healthz);
        assert_eq!(route("GET", "/metrics").unwrap(), Route::Metrics);
        assert_eq!(route("POST", "/v1/reload").unwrap(), Route::Reload);
        assert_eq!(route("POST", "/v1/rollback").unwrap(), Route::Rollback);
        assert_eq!(route("GET", "/v1/rollback").unwrap_err().status, 405);
        assert_eq!(route("GET", "/nope").unwrap_err().status, 404);
        assert_eq!(route("GET", "/v1/reload").unwrap_err().status, 405);
        assert_eq!(route("POST", "/healthz").unwrap_err().status, 405);
    }

    #[test]
    fn array_body_parses_with_defaults() {
        let p = parse_recommend(
            CaseStudy::ArrayDataflow,
            br#"{"m":64,"n":64,"k":64}"#,
        )
        .unwrap();
        assert_eq!(p.topk, 0);
        match p.query {
            RecQuery::Array { mac_budget, .. } => assert_eq!(mac_budget, 1 << 15),
            other => panic!("wrong query: {other:?}"),
        }
    }

    #[test]
    fn field_order_does_not_change_the_cache_key() {
        let a = parse_recommend(
            CaseStudy::ArrayDataflow,
            br#"{"m":64,"n":32,"k":16,"mac_budget":4096}"#,
        )
        .unwrap();
        let b = parse_recommend(
            CaseStudy::ArrayDataflow,
            br#"{ "mac_budget": 4096, "k": 16, "n": 32, "m": 64 }"#,
        )
        .unwrap();
        assert_eq!(a.cache_key, b.cache_key);
        let c = parse_recommend(
            CaseStudy::ArrayDataflow,
            br#"{"m":64,"n":32,"k":16,"mac_budget":4095}"#,
        )
        .unwrap();
        assert_ne!(a.cache_key, c.cache_key);
    }

    #[test]
    fn topk_changes_the_cache_key() {
        let a =
            parse_recommend(CaseStudy::ArrayDataflow, br#"{"m":8,"n":8,"k":8}"#).unwrap();
        let b = parse_recommend(
            CaseStudy::ArrayDataflow,
            br#"{"m":8,"n":8,"k":8,"topk":3}"#,
        )
        .unwrap();
        assert_ne!(a.cache_key, b.cache_key);
        assert_eq!(b.topk, 3);
    }

    #[test]
    fn validation_failures_are_400s() {
        // Missing field.
        let e = parse_recommend(CaseStudy::ArrayDataflow, br#"{"m":8,"n":8}"#).unwrap_err();
        assert_eq!(e.status, 400);
        // Unknown field (typo protection, like the CLI's expect_only).
        let e = parse_recommend(
            CaseStudy::ArrayDataflow,
            br#"{"m":8,"n":8,"k":8,"budget":1}"#,
        )
        .unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.body.contains("unknown_field"));
        // Zero dimension caught by the domain type.
        let e = parse_recommend(CaseStudy::ArrayDataflow, br#"{"m":0,"n":8,"k":8}"#)
            .unwrap_err();
        assert_eq!(e.status, 400);
        // Malformed JSON.
        let e = parse_recommend(CaseStudy::ArrayDataflow, b"{oops").unwrap_err();
        assert_eq!(e.status, 400);
        // Over-cap topk.
        let e = parse_recommend(
            CaseStudy::ArrayDataflow,
            br#"{"m":8,"n":8,"k":8,"topk":65}"#,
        )
        .unwrap_err();
        assert_eq!(e.status, 400);
    }

    #[test]
    fn buffers_body_mirrors_the_cli() {
        let p = parse_recommend(
            CaseStudy::BufferSizing,
            br#"{"m":128,"n":128,"k":512,"rows":32,"cols":32,"dataflow":"ws"}"#,
        )
        .unwrap();
        match p.query {
            RecQuery::Buffers { query } => {
                assert_eq!(query.bandwidth, 16, "CLI default");
                assert_eq!(query.limit_kb, 1500, "CLI default");
                assert_eq!(query.dataflow, Dataflow::Ws);
            }
            other => panic!("wrong query: {other:?}"),
        }
    }

    #[test]
    fn schedule_body_needs_exactly_four_workloads() {
        let e = parse_recommend(
            CaseStudy::MultiArrayScheduling,
            br#"{"workloads":[{"m":8,"n":8,"k":8}]}"#,
        )
        .unwrap_err();
        assert_eq!(e.status, 400);
        let p = parse_recommend(
            CaseStudy::MultiArrayScheduling,
            br#"{"workloads":[{"m":8,"n":8,"k":8},{"m":16,"n":16,"k":16},{"m":32,"n":32,"k":32},{"m":64,"n":64,"k":64}]}"#,
        )
        .unwrap();
        match p.query {
            RecQuery::Schedule { workloads } => assert_eq!(workloads.len(), 4),
            other => panic!("wrong query: {other:?}"),
        }
    }
}
