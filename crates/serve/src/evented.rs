//! The evented listener: N event-loop shards, each owning a
//! `SO_REUSEPORT` acceptor, an epoll [`Poller`](crate::reactor::Poller),
//! and a slab of nonblocking connection state machines.
//!
//! Each connection moves through a small cycle driven entirely by
//! readiness: **read** (append to a growing buffer) → **parse**
//! (incremental [`try_parse`]; partial heads/bodies just wait for more
//! bytes) → **dispatch** (the same [`handle_request_step`] the threaded
//! listener uses) → **write** (buffered, flushed as `EPOLLOUT` allows).
//! A request the dispatcher queues for the batch workers parks the
//! connection as `pending`; the worker's outcome comes back through the
//! shard's [`CompletionQueue`], whose eventfd wakes the loop without the
//! worker ever touching a socket.
//!
//! Timeouts have no per-socket kernel deadlines here (sockets are
//! nonblocking), so a periodic sweep enforces them: idle keep-alive
//! connections close at the read timeout, stalled writers at the write
//! timeout, and a pending request whose deadline passes is answered 504
//! *by the shard* — the worker's late outcome is then discarded by
//! request-id mismatch, which is exactly the semantics the chaos suite
//! pins for the threaded path (timely 504 even with a stuck worker).

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::batch::{Completion, CompletionQueue, Reply};
use crate::http::{try_parse, write_response, Parsed, ReadError, Request, Response};
use crate::listener::{
    deadline_exceeded, handle_request_step, outcome_response, record_latency, Inner, ShardStats,
    Step, MAX_ACCEPT_ERRORS,
};
use crate::reactor::{Events, Interest, Poller};
use crate::{ServeConfig, ServeError};

/// Listen backlog for every shard acceptor: connection storms park in the
/// kernel while the loops drain them in bursts.
const BACKLOG: i32 = 4096;

/// Max sockets accepted per readiness event, so one storm cannot starve
/// the connections already being served.
const ACCEPT_BATCH: usize = 256;

/// epoll wait timeout: the loop's heartbeat for the timeout sweep and the
/// shutdown-flag check even when no events arrive.
const WAIT_TIMEOUT: Duration = Duration::from_millis(10);

/// How often the timeout sweep walks the slab.
const SWEEP_INTERVAL: Duration = Duration::from_millis(50);

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Cap on auto-selected shard count (`--event-loops 0`).
const MAX_AUTO_SHARDS: usize = 4;

/// Hard cap on configured shard count.
const MAX_SHARDS: usize = 64;

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Everything a shard thread needs, bound before the server starts so
/// bind errors surface from [`crate::Server::bind`], not mid-serve.
pub(crate) struct ShardSeed {
    pub(crate) id: usize,
    pub(crate) addr: SocketAddr,
    pub(crate) listener: TcpListener,
    pub(crate) stats: Arc<ShardStats>,
    pub(crate) completions: Arc<CompletionQueue>,
}

/// Binds `n` reuseport acceptors on the configured address. The first
/// bind resolves `:0` to a concrete port; the rest share it.
pub(crate) fn bind_shards(config: &ServeConfig) -> Result<Vec<ShardSeed>, ServeError> {
    let requested: SocketAddr = config
        .addr
        .to_socket_addrs()
        .map_err(|e| ServeError::Io(format!("resolve {}: {e}", config.addr)))?
        .next()
        .ok_or_else(|| ServeError::Io(format!("resolve {}: no addresses", config.addr)))?;
    let n = if config.event_loops == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(MAX_AUTO_SHARDS)
    } else {
        config.event_loops.min(MAX_SHARDS)
    };
    let seed = |id: usize, listener: TcpListener| -> Result<ShardSeed, ServeError> {
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("nonblocking listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        Ok(ShardSeed {
            id,
            addr,
            listener,
            stats: Arc::new(ShardStats::default()),
            completions: Arc::new(
                CompletionQueue::new()
                    .map_err(|e| ServeError::Io(format!("completion queue: {e}")))?,
            ),
        })
    };
    let first = crate::reactor::bind_reuseport(requested, BACKLOG)
        .map_err(|e| ServeError::Io(format!("bind {requested}: {e}")))?;
    let mut seeds = vec![seed(0, first)?];
    let addr = seeds[0].addr;
    for id in 1..n {
        let listener = crate::reactor::bind_reuseport(addr, BACKLOG)
            .map_err(|e| ServeError::Io(format!("bind shard {id} on {addr}: {e}")))?;
        seeds.push(seed(id, listener)?);
    }
    Ok(seeds)
}

/// Runs one thread per shard and joins them all. A shard that fails
/// flips the shutdown flag and wakes its siblings so the whole server
/// winds down instead of limping on a subset of acceptors.
pub(crate) fn run_shards(seeds: Vec<ShardSeed>, inner: &Arc<Inner>) -> Result<(), ServeError> {
    let mut threads = Vec::with_capacity(seeds.len());
    for seed in seeds {
        let inner = Arc::clone(inner);
        let name = format!("serve-shard-{}", seed.id);
        threads.push(
            std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    let result = Shard::new(seed, &inner).and_then(|mut s| s.run(&inner));
                    if result.is_err() {
                        inner.shutdown.store(true, Ordering::Release);
                        for shard in &inner.shards {
                            shard.completions.wake();
                        }
                    }
                    result
                })
                .expect("spawn shard thread"),
        );
    }
    let mut result = Ok(());
    for thread in threads {
        match thread.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                if result.is_ok() {
                    result = Err(e);
                }
            }
            Err(_) => {
                if result.is_ok() {
                    result = Err(ServeError::Io("shard thread panicked".into()));
                }
            }
        }
    }
    result
}

/// A request whose outcome is owed by the batch workers.
struct PendingReply {
    /// Request id this connection is waiting on; a completion with any
    /// other id (a post-timeout straggler) is discarded.
    req: u64,
    started: Instant,
    deadline: Option<Instant>,
    cache_key: Vec<u8>,
    keep_alive: bool,
}

/// One nonblocking connection's entire state.
struct Conn {
    stream: TcpStream,
    token: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already handed to the kernel.
    written: usize,
    pending: Option<PendingReply>,
    /// Monotonically increasing per-connection request id.
    next_req: u64,
    last_activity: Instant,
    /// When the currently-incomplete request head started arriving.
    /// `last_activity` refreshes on every byte, so a slowloris client
    /// trickling one header byte per timeout window never goes idle;
    /// this anchor only clears when a full request parses.
    head_since: Option<Instant>,
    /// When the current unflushed response started waiting (write-stall
    /// timeout anchor); `None` while the write buffer is empty.
    write_since: Option<Instant>,
    close_after_write: bool,
    /// Peer sent EOF; serve what is buffered, then close.
    peer_closed: bool,
    /// Whether the poller registration currently includes `EPOLLOUT`.
    want_write: bool,
}

/// Generation-checked connection slab. Tokens are `(gen << 32) | index`,
/// so a completion addressed to a connection that has since closed (and
/// whose slot was reused) misses on the generation and is dropped.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Reserves a slot and returns `(index, token)`.
    fn claim(&mut self) -> (usize, u64) {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(1);
            self.slots.len() - 1
        });
        let token = ((self.gens[idx] as u64) << 32) | idx as u64;
        (idx, token)
    }

    fn put(&mut self, idx: usize, conn: Conn) {
        debug_assert!(self.slots[idx].is_none());
        self.slots[idx] = Some(conn);
        self.live += 1;
    }

    /// Frees a slot and bumps its generation so the old token dies.
    fn remove(&mut self, idx: usize) -> Option<Conn> {
        let conn = self.slots[idx].take()?;
        self.live -= 1;
        // Keep generations in 31 bits and nonzero, so conn tokens can
        // never collide with the listener/waker sentinels.
        self.gens[idx] = self.gens[idx].wrapping_add(1) & 0x7FFF_FFFF;
        if self.gens[idx] == 0 {
            self.gens[idx] = 1;
        }
        self.free.push(idx);
        Some(conn)
    }

    fn index_of(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        (idx < self.slots.len() && self.slots[idx].is_some() && self.gens[idx] == gen)
            .then_some(idx)
    }

    fn get_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.slots.get_mut(idx).and_then(|s| s.as_mut())
    }
}

struct Shard {
    id: usize,
    poller: Poller,
    listener: TcpListener,
    stats: Arc<ShardStats>,
    completions: Arc<CompletionQueue>,
    conns: Slab,
    events: Events,
    /// Scratch for draining the completion queue without per-tick allocs.
    scratch: Vec<Completion>,
    accept_errors: u32,
    last_sweep: Instant,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

/// True when the `serve.conn.read` failpoint fires: drop the connection
/// as if the socket read failed.
fn chaos_read_hit() -> bool {
    #[allow(clippy::redundant_closure_call)]
    (|| {
        airchitect_chaos::fail_point!("serve.conn.read", |_e: std::io::Error| true);
        false
    })()
}

/// True when the `serve.conn.write` failpoint fires: drop the connection
/// instead of writing the response.
fn chaos_write_hit() -> bool {
    #[allow(clippy::redundant_closure_call)]
    (|| {
        airchitect_chaos::fail_point!("serve.conn.write", |_e: std::io::Error| true);
        false
    })()
}

impl Shard {
    fn new(seed: ShardSeed, inner: &Inner) -> Result<Self, ServeError> {
        let io_err = |what: &str, e: std::io::Error| ServeError::Io(format!("{what}: {e}"));
        let poller = Poller::new().map_err(|e| io_err("epoll_create", e))?;
        poller
            .add(seed.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .map_err(|e| io_err("register listener", e))?;
        poller
            .add(seed.completions.waker_fd(), WAKER_TOKEN, Interest::READ)
            .map_err(|e| io_err("register waker", e))?;
        Ok(Self {
            id: seed.id,
            poller,
            listener: seed.listener,
            stats: seed.stats,
            completions: seed.completions,
            conns: Slab::new(),
            events: Events::with_capacity(512),
            scratch: Vec::new(),
            accept_errors: 0,
            last_sweep: Instant::now(),
            read_timeout: inner.read_timeout,
            write_timeout: inner.write_timeout,
        })
    }

    fn run(&mut self, inner: &Arc<Inner>) -> Result<(), ServeError> {
        loop {
            self.poller
                .wait(&mut self.events, Some(WAIT_TIMEOUT))
                .map_err(|e| ServeError::Io(format!("shard {}: epoll_wait: {e}", self.id)))?;
            // Events hold copies, not borrows, so handlers can mutate the
            // slab freely.
            let batch: Vec<_> = self.events.iter().collect();
            for ev in batch {
                match ev.token {
                    LISTENER_TOKEN => self.accept_burst(inner)?,
                    WAKER_TOKEN => {
                        self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
                        // Drained (with the entries) below.
                    }
                    token => self.conn_event(token, ev.readable, ev.writable, ev.failed, inner),
                }
            }
            self.drain_completions(inner);
            let now = Instant::now();
            if now.duration_since(self.last_sweep) >= SWEEP_INTERVAL {
                self.last_sweep = now;
                self.sweep(now, inner);
            }
            if inner.shutdown.load(Ordering::Acquire) && self.conns.live == 0 {
                // Drain complete. Connections owed a response closed when
                // it flushed; idle keep-alive connections got the same
                // read-timeout window to submit one last request (answered
                // 503 draining) that the threaded listener's join gives
                // them, then the sweep closed them.
                return Ok(());
            }
        }
    }

    /// Accepts up to [`ACCEPT_BATCH`] sockets. Transient errors back off
    /// briefly and rely on level-triggered epoll to re-report readiness;
    /// a persistent streak (> [`MAX_ACCEPT_ERRORS`]) is fatal for the
    /// shard, mirroring the threaded accept loop.
    fn accept_burst(&mut self, inner: &Arc<Inner>) -> Result<(), ServeError> {
        for _ in 0..ACCEPT_BATCH {
            #[allow(clippy::redundant_closure_call)]
            let attempt = (|| {
                airchitect_chaos::fail_point!("serve.listener.accept", Err);
                self.listener.accept()
            })();
            match attempt {
                Ok((stream, _)) => {
                    self.accept_errors = 0;
                    if inner.shutdown.load(Ordering::Acquire) {
                        // Draining: the socket closes without a response,
                        // exactly like the threaded wake-up connection.
                        drop(stream);
                        continue;
                    }
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    if inner.nodelay {
                        let _ = stream.set_nodelay(true);
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => {
                    if inner.shutdown.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    self.accept_errors += 1;
                    if self.accept_errors > MAX_ACCEPT_ERRORS {
                        return Err(ServeError::Io(format!("shard {}: accept: {e}", self.id)));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let (idx, token) = self.conns.claim();
        if self.poller.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
            // Slot stays on the free list; the claim only bumped nothing.
            self.conns.free.push(idx);
            return;
        }
        self.conns.put(
            idx,
            Conn {
                stream,
                token,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                written: 0,
                pending: None,
                next_req: 1,
                last_activity: Instant::now(),
                head_since: None,
                write_since: None,
                close_after_write: false,
                peer_closed: false,
                want_write: false,
            },
        );
        self.stats.open.fetch_add(1, Ordering::Relaxed);
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns.remove(idx) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.stats.open.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn conn_event(
        &mut self,
        token: u64,
        readable: bool,
        writable: bool,
        failed: bool,
        inner: &Arc<Inner>,
    ) {
        let Some(idx) = self.conns.index_of(token) else {
            return; // stale token: the connection closed this tick
        };
        if failed && !readable {
            self.close(idx);
            return;
        }
        if writable {
            self.flush(idx);
            let ready = self
                .conns
                .get_mut(idx)
                .is_some_and(|c| c.write_buf.is_empty());
            if ready {
                // The response is out; a pipelined request may be waiting.
                self.process_buffer(idx, inner);
            }
        }
        if readable && self.conns.get_mut(idx).is_some() {
            if chaos_read_hit() {
                self.close(idx);
                return;
            }
            match self.fill_read_buf(idx) {
                Ok(()) => self.process_buffer(idx, inner),
                Err(()) => self.close(idx),
            }
        }
    }

    /// Reads until `WouldBlock` or EOF. `Err(())` means a socket error —
    /// close without ceremony, like the threaded path.
    fn fill_read_buf(&mut self, idx: usize) -> Result<(), ()> {
        let Some(conn) = self.conns.get_mut(idx) else {
            return Err(());
        };
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }

    /// Parses and dispatches as many buffered requests as possible.
    /// Strictly serial per connection (like the threaded loop): nothing
    /// parses while a response is pending or unflushed, so pipelined
    /// requests are answered in order.
    fn process_buffer(&mut self, idx: usize, inner: &Arc<Inner>) {
        loop {
            let parse = {
                let Some(conn) = self.conns.get_mut(idx) else {
                    return;
                };
                if conn.pending.is_some() || !conn.write_buf.is_empty() {
                    return;
                }
                if conn.read_buf.is_empty() {
                    if conn.peer_closed {
                        self.close(idx);
                    }
                    return;
                }
                try_parse(&conn.read_buf)
            };
            match parse {
                Ok(Parsed::Complete { request, consumed }) => {
                    if let Some(conn) = self.conns.get_mut(idx) {
                        conn.read_buf.drain(..consumed);
                        conn.head_since = None;
                    }
                    self.dispatch(idx, &request, inner);
                }
                Ok(Parsed::Partial) => {
                    let Some(conn) = self.conns.get_mut(idx) else {
                        return;
                    };
                    if conn.head_since.is_none() {
                        conn.head_since = Some(Instant::now());
                    }
                    if conn.peer_closed {
                        // EOF mid-request: same 400 the blocking reader
                        // produces for a truncated head.
                        let resp = Response::error(400, "bad_request", "truncated request");
                        self.respond(idx, &resp, false);
                    }
                    return;
                }
                Err(ReadError::Bad { status, reason }) => {
                    let resp = Response::error(status, "bad_request", &reason);
                    if let Some(conn) = self.conns.get_mut(idx) {
                        conn.read_buf.clear();
                    }
                    self.respond(idx, &resp, false);
                    return;
                }
                // try_parse never produces Closed/TimedOut/Io.
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Routes one parsed request. Immediate responses are serialized into
    /// the write buffer; queued ones park the connection as pending.
    fn dispatch(&mut self, idx: usize, request: &Request, inner: &Arc<Inner>) {
        let (token, req_id) = {
            let Some(conn) = self.conns.get_mut(idx) else {
                return;
            };
            let req_id = conn.next_req;
            conn.next_req += 1;
            (conn.token, req_id)
        };
        let completions = Arc::clone(&self.completions);
        let (step, wants_shutdown) = handle_request_step(request, inner, &mut || {
            Reply::Completion {
                queue: Arc::clone(&completions),
                conn: token,
                req: req_id,
            }
        });
        match step {
            Step::Respond(resp) => {
                let draining = wants_shutdown || inner.shutdown.load(Ordering::Acquire);
                self.respond(idx, &resp, request.keep_alive && !draining);
            }
            Step::Queued {
                started,
                deadline,
                cache_key,
            } => {
                if let Some(conn) = self.conns.get_mut(idx) {
                    conn.pending = Some(PendingReply {
                        req: req_id,
                        started,
                        deadline,
                        cache_key,
                        keep_alive: request.keep_alive,
                    });
                }
            }
        }
        if wants_shutdown {
            // The 200 is already buffered on this connection; now start
            // the drain and wake every shard so none sleeps through it.
            inner.shutdown.store(true, Ordering::Release);
            for shard in &inner.shards {
                shard.completions.wake();
            }
        }
    }

    /// Serializes a response into the connection's write buffer and
    /// flushes as much as the socket will take now.
    fn respond(&mut self, idx: usize, resp: &Response, keep_alive: bool) {
        if chaos_write_hit() {
            self.close(idx);
            return;
        }
        let Some(conn) = self.conns.get_mut(idx) else {
            return;
        };
        write_response(&mut conn.write_buf, resp, keep_alive)
            .expect("serializing into a Vec cannot fail");
        if !keep_alive {
            conn.close_after_write = true;
        }
        if conn.write_since.is_none() {
            conn.write_since = Some(Instant::now());
        }
        self.flush(idx);
    }

    /// Writes buffered bytes until `WouldBlock` or empty, keeping the
    /// poller's `EPOLLOUT` interest in sync with whether bytes remain.
    fn flush(&mut self, idx: usize) {
        enum After {
            Nothing,
            Close,
            Rearm(std::os::fd::RawFd, u64, Interest),
        }
        let after = {
            let Some(conn) = self.conns.get_mut(idx) else {
                return;
            };
            let mut failed = false;
            while conn.written < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                After::Close
            } else if conn.written == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.written = 0;
                conn.write_since = None;
                if conn.close_after_write {
                    After::Close
                } else if conn.want_write {
                    conn.want_write = false;
                    After::Rearm(conn.stream.as_raw_fd(), conn.token, Interest::READ)
                } else {
                    After::Nothing
                }
            } else if !conn.want_write {
                conn.want_write = true;
                After::Rearm(conn.stream.as_raw_fd(), conn.token, Interest::READ_WRITE)
            } else {
                After::Nothing
            }
        };
        match after {
            After::Nothing => {}
            After::Close => self.close(idx),
            After::Rearm(fd, token, interest) => {
                let _ = self.poller.modify(fd, token, interest);
            }
        }
    }

    /// Delivers worker outcomes to their connections. The eventfd is
    /// drained *before* the entries: a producer that pushes after the
    /// eventfd drain either lands in this entry drain or re-arms the
    /// eventfd for the next tick — either way nothing is lost.
    fn drain_completions(&mut self, inner: &Arc<Inner>) {
        self.completions.drain_wakes();
        let mut batch = std::mem::take(&mut self.scratch);
        self.completions.drain_into(&mut batch);
        for (token, req, outcome) in batch.drain(..) {
            let Some(idx) = self.conns.index_of(token) else {
                continue; // connection closed while the job was in flight
            };
            let pending = {
                let Some(conn) = self.conns.get_mut(idx) else {
                    continue;
                };
                if conn.pending.as_ref().is_none_or(|p| p.req != req) {
                    continue; // straggler: this request already got a 504
                }
                conn.pending.take().expect("checked above")
            };
            let resp = record_latency(
                pending.started,
                outcome_response(outcome, pending.cache_key, inner),
            );
            let keep_alive = pending.keep_alive && !inner.shutdown.load(Ordering::Acquire);
            self.respond(idx, &resp, keep_alive);
            if self.conns.index_of(token).is_some() {
                self.process_buffer(idx, inner);
            }
        }
        self.scratch = batch;
    }

    /// Enforces read/write timeouts and pending deadlines.
    fn sweep(&mut self, now: Instant, inner: &Arc<Inner>) {
        let draining = inner.shutdown.load(Ordering::Acquire);
        for idx in 0..self.conns.slots.len() {
            enum Action {
                Nothing,
                Close,
                Deadline,
                Reap408,
            }
            let action = {
                let Some(conn) = self.conns.slots[idx].as_mut() else {
                    continue;
                };
                if conn
                    .pending
                    .as_ref()
                    .is_some_and(|p| p.deadline.is_some_and(|d| now >= d))
                {
                    Action::Deadline
                } else if conn.write_since.is_some_and(|since| {
                    self.write_timeout
                        .is_some_and(|t| now.duration_since(since) >= t)
                }) {
                    // The peer is not reading its response.
                    Action::Close
                } else if conn.pending.is_none()
                    && conn.write_buf.is_empty()
                    && conn.head_since.is_some_and(|since| {
                        self.read_timeout
                            .is_some_and(|t| now.duration_since(since) >= t)
                    })
                {
                    // Slowloris: header bytes trickling in keep
                    // `last_activity` fresh, but the request head has
                    // been incomplete for a whole timeout window.
                    Action::Reap408
                } else if conn.pending.is_none()
                    && conn.write_buf.is_empty()
                    && self
                        .read_timeout
                        .is_some_and(|t| now.duration_since(conn.last_activity) >= t)
                {
                    // Idle keep-alive connection past the read timeout.
                    Action::Close
                } else {
                    Action::Nothing
                }
            };
            match action {
                Action::Nothing => {}
                Action::Close => self.close(idx),
                Action::Reap408 => {
                    airchitect_telemetry::metrics::SERVE_SLOWLORIS_REAPED.inc();
                    let resp =
                        Response::error(408, "request_timeout", "request header read timed out");
                    self.respond(idx, &resp, false);
                }
                Action::Deadline => {
                    // Answer the 504 now; the worker's eventual outcome is
                    // discarded by the request-id check.
                    let pending = self
                        .conns
                        .get_mut(idx)
                        .and_then(|c| c.pending.take())
                        .expect("deadline action implies pending");
                    let resp = record_latency(pending.started, deadline_exceeded());
                    self.respond(idx, &resp, pending.keep_alive && !draining);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_tokens_die_on_slot_reuse() {
        let mut slab = Slab::new();
        let (idx, token) = slab.claim();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let make = |stream: TcpStream, token: u64| Conn {
            stream,
            token,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            pending: None,
            next_req: 1,
            last_activity: Instant::now(),
            head_since: None,
            write_since: None,
            close_after_write: false,
            peer_closed: false,
            want_write: false,
        };
        slab.put(idx, make(stream, token));
        assert_eq!(slab.index_of(token), Some(idx));
        assert!(slab.remove(idx).is_some());
        assert_eq!(slab.index_of(token), None, "removed token must not resolve");

        // Reuse the slot: the old token still must not resolve.
        let (idx2, token2) = slab.claim();
        assert_eq!(idx2, idx);
        assert_ne!(token2, token);
        let stream2 = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        slab.put(idx2, make(stream2, token2));
        assert_eq!(slab.index_of(token), None);
        assert_eq!(slab.index_of(token2), Some(idx2));
    }
}
