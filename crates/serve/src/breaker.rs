//! Circuit breakers for inference and hot-reload.
//!
//! A breaker trips open after `threshold` *consecutive* failures, fails
//! fast while open, and after `cooldown` admits exactly one half-open
//! probe. A successful probe closes the circuit; a failed probe re-opens
//! it and restarts the cooldown. `threshold == 0` disables the breaker
//! entirely (every acquire is admitted, nothing is recorded).
//!
//! Only 5xx-class outcomes count as failures: domain errors (infeasible
//! query, label out of space) are the client's problem, not the model's.
//! Callers enforce that by what they pass to [`Breaker::record`].
//!
//! State is published to the gauges `serve.breaker_state.*`
//! (0 = closed, 1 = open, 2 = half-open) so `/metrics` and `/healthz`
//! can report it without taking the breaker lock twice.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use airchitect::model::CaseStudy;
use airchitect_telemetry::metrics::{self, Gauge};

/// Admission decision from [`Breaker::try_acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Proceed (possibly as the single half-open probe).
    Yes,
    /// Circuit is open: fail fast or fall back.
    No,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Closed,
    Open,
    HalfOpen,
}

impl Phase {
    fn gauge_code(self) -> f64 {
        match self {
            Phase::Closed => 0.0,
            Phase::Open => 1.0,
            Phase::HalfOpen => 2.0,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Phase::Closed => "closed",
            Phase::Open => "open",
            Phase::HalfOpen => "half_open",
        }
    }
}

struct State {
    phase: Phase,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// One circuit breaker guarding a single failure domain.
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    gauge: &'static Gauge,
    state: Mutex<State>,
}

impl Breaker {
    /// Creates a closed breaker publishing its state to `gauge`.
    pub fn new(threshold: u32, cooldown: Duration, gauge: &'static Gauge) -> Self {
        gauge.set(Phase::Closed.gauge_code());
        Self {
            threshold,
            cooldown,
            gauge,
            state: Mutex::new(State {
                phase: Phase::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
        }
    }

    fn set_phase(&self, state: &mut State, phase: Phase) {
        state.phase = phase;
        self.gauge.set(phase.gauge_code());
    }

    /// Asks whether a call may proceed. An open breaker whose cooldown has
    /// elapsed transitions to half-open and admits the caller as the probe.
    pub fn try_acquire(&self) -> Admit {
        if self.threshold == 0 {
            return Admit::Yes;
        }
        let mut state = self.state.lock().expect("breaker lock poisoned");
        match state.phase {
            Phase::Closed => Admit::Yes,
            Phase::Open => {
                let cooled = state
                    .opened_at
                    .is_none_or(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    self.set_phase(&mut state, Phase::HalfOpen);
                    state.probe_in_flight = true;
                    Admit::Yes
                } else {
                    Admit::No
                }
            }
            Phase::HalfOpen => {
                if state.probe_in_flight {
                    Admit::No
                } else {
                    state.probe_in_flight = true;
                    Admit::Yes
                }
            }
        }
    }

    /// Records the outcome of an admitted call.
    pub fn record(&self, ok: bool) {
        if self.threshold == 0 {
            return;
        }
        let mut state = self.state.lock().expect("breaker lock poisoned");
        match state.phase {
            Phase::Closed => {
                if ok {
                    state.consecutive_failures = 0;
                } else {
                    state.consecutive_failures += 1;
                    if state.consecutive_failures >= self.threshold {
                        state.opened_at = Some(Instant::now());
                        self.set_phase(&mut state, Phase::Open);
                        metrics::SERVE_BREAKER_OPENS.inc();
                    }
                }
            }
            Phase::HalfOpen => {
                state.probe_in_flight = false;
                if ok {
                    state.consecutive_failures = 0;
                    state.opened_at = None;
                    self.set_phase(&mut state, Phase::Closed);
                } else {
                    state.opened_at = Some(Instant::now());
                    self.set_phase(&mut state, Phase::Open);
                    metrics::SERVE_BREAKER_OPENS.inc();
                }
            }
            // A call admitted before the trip can report after it; the
            // breaker is already open, nothing more to learn from it.
            Phase::Open => {}
        }
    }

    /// Current phase as a lowercase name for `/healthz`.
    pub fn phase_name(&self) -> &'static str {
        self.state.lock().expect("breaker lock poisoned").phase.name()
    }

    /// True unless the breaker is fully closed.
    pub fn is_tripped(&self) -> bool {
        self.state.lock().expect("breaker lock poisoned").phase != Phase::Closed
    }
}

/// The server's full breaker set: one per inference case plus hot-reload.
pub struct Breakers {
    infer: [Breaker; 3],
    /// Breaker guarding `POST /v1/reload`.
    pub reload: Breaker,
}

impl Breakers {
    /// Builds all four breakers with a shared threshold and cooldown.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            infer: [
                Breaker::new(threshold, cooldown, &metrics::SERVE_BREAKER_ARRAY),
                Breaker::new(threshold, cooldown, &metrics::SERVE_BREAKER_BUFFERS),
                Breaker::new(threshold, cooldown, &metrics::SERVE_BREAKER_SCHEDULE),
            ],
            reload: Breaker::new(threshold, cooldown, &metrics::SERVE_BREAKER_RELOAD),
        }
    }

    /// The inference breaker for one case study.
    pub fn infer(&self, case: CaseStudy) -> &Breaker {
        &self.infer[crate::reload::slot_index(case)]
    }

    /// Whether any circuit is not fully closed (drives `/healthz` status).
    pub fn any_tripped(&self) -> bool {
        self.infer.iter().any(Breaker::is_tripped) || self.reload.is_tripped()
    }

    /// `(name, phase)` pairs for every breaker, for `/healthz` rendering.
    pub fn phases(&self) -> [(&'static str, &'static str); 4] {
        [
            ("array", self.infer[0].phase_name()),
            ("buffers", self.infer[1].phase_name()),
            ("schedule", self.infer[2].phase_name()),
            ("reload", self.reload.phase_name()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> Breaker {
        Breaker::new(
            threshold,
            Duration::from_millis(cooldown_ms),
            &metrics::SERVE_BREAKER_ARRAY,
        )
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let b = breaker(3, 60_000);
        b.record(false);
        b.record(false);
        b.record(true); // success resets the streak
        b.record(false);
        b.record(false);
        assert_eq!(b.try_acquire(), Admit::Yes);
        b.record(false);
        assert_eq!(b.phase_name(), "open");
        assert_eq!(b.try_acquire(), Admit::No);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = breaker(1, 0); // zero cooldown: open -> half-open immediately
        b.record(false);
        assert!(b.is_tripped());

        // First acquire becomes the probe; a concurrent one is rejected.
        assert_eq!(b.try_acquire(), Admit::Yes);
        assert_eq!(b.phase_name(), "half_open");
        assert_eq!(b.try_acquire(), Admit::No);
        b.record(false);
        assert_eq!(b.phase_name(), "open");

        assert_eq!(b.try_acquire(), Admit::Yes);
        b.record(true);
        assert_eq!(b.phase_name(), "closed");
        assert_eq!(b.try_acquire(), Admit::Yes);
    }

    #[test]
    fn open_breaker_rejects_until_cooldown() {
        let b = breaker(1, 60_000);
        b.record(false);
        assert_eq!(b.try_acquire(), Admit::No);
        assert_eq!(b.try_acquire(), Admit::No);
        assert_eq!(b.phase_name(), "open");
    }

    #[test]
    fn threshold_zero_disables_the_breaker() {
        let b = breaker(0, 0);
        for _ in 0..100 {
            b.record(false);
        }
        assert_eq!(b.try_acquire(), Admit::Yes);
        assert_eq!(b.phase_name(), "closed");
        assert!(!b.is_tripped());
    }

    #[test]
    fn breaker_set_reports_per_case_phases() {
        let set = Breakers::new(1, Duration::from_secs(60));
        set.infer(CaseStudy::BufferSizing).record(false);
        assert!(set.any_tripped());
        let phases = set.phases();
        assert_eq!(phases[0], ("array", "closed"));
        assert_eq!(phases[1], ("buffers", "open"));
        assert_eq!(phases[3], ("reload", "closed"));
    }
}
