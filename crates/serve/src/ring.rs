//! Consistent-hash ring over replica ids.
//!
//! The router hashes each recommendation's canonical cache key onto the
//! ring, so a given query always lands on the same replica while that
//! replica stays healthy — replica-local response caches keep their hit
//! rates across the fleet. Each member owns `vnodes` points on the ring
//! (virtual nodes), which evens out the key share per replica; removing a
//! member only remaps the keys that hashed onto *its* points, every other
//! key keeps its route (the property test in this module pins that down).
//!
//! Hashing is FNV-1a 64-bit with a splitmix64 finalizer: tiny,
//! deterministic across processes, and the finalizer spreads the high
//! bits (which order the ring) even for short structured keys, where raw
//! FNV clumps badly.

/// Virtual nodes per ring member. 64 keeps the per-replica key share
/// within a few percent of even for small fleets.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a 64-bit hash of `bytes`, finalized with the splitmix64 mixer so
/// the high bits avalanche (ring order sorts on them).
#[must_use]
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring mapping byte keys to `u32` replica ids.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: usize,
    /// `(point_hash, member)` sorted by `(point_hash, member)`; ties
    /// between members are broken deterministically by id.
    points: Vec<(u64, u32)>,
    /// Sorted member ids (for `len`/`members`).
    members: Vec<u32>,
}

impl Ring {
    /// An empty ring with `vnodes` points per future member (0 is
    /// clamped to 1).
    #[must_use]
    pub fn new(vnodes: usize) -> Self {
        Self {
            vnodes: vnodes.max(1),
            points: Vec::new(),
            members: Vec::new(),
        }
    }

    /// Number of members currently on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is currently a member.
    #[must_use]
    pub fn contains(&self, id: u32) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// Adds `id`; a no-op if it is already a member.
    pub fn add(&mut self, id: u32) {
        let Err(pos) = self.members.binary_search(&id) else {
            return;
        };
        self.members.insert(pos, id);
        for v in 0..self.vnodes {
            let mut seed = [0u8; 12];
            seed[..4].copy_from_slice(&id.to_le_bytes());
            seed[4..].copy_from_slice(&(v as u64).to_le_bytes());
            let point = (hash64(&seed), id);
            let at = self.points.partition_point(|p| *p < point);
            self.points.insert(at, point);
        }
    }

    /// Removes `id`; a no-op if it is not a member.
    pub fn remove(&mut self, id: u32) {
        let Ok(pos) = self.members.binary_search(&id) else {
            return;
        };
        self.members.remove(pos);
        self.points.retain(|&(_, m)| m != id);
    }

    /// The member owning `key`, or `None` on an empty ring.
    #[must_use]
    pub fn primary(&self, key: &[u8]) -> Option<u32> {
        self.ordered(key, 1).first().copied()
    }

    /// Up to `n` *distinct* members in ring-walk order starting at `key`'s
    /// point: the primary first, then the natural failover sequence (the
    /// owners a key would fall to if earlier members left the ring).
    #[must_use]
    pub fn ordered(&self, key: &[u8], n: usize) -> Vec<u32> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let h = hash64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(n.min(self.members.len()));
        for i in 0..self.points.len() {
            let (_, member) = self.points[(start + i) % self.points.len()];
            if !out.contains(&member) {
                out.push(member);
                if out.len() >= n.min(self.members.len()) {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = Vec<u8>> {
        (0..n).map(|i| i.to_le_bytes().to_vec())
    }

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = Ring::new(DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.primary(b"k"), None);
        assert!(ring.ordered(b"k", 3).is_empty());
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_members() {
        let mut ring = Ring::new(DEFAULT_VNODES);
        for id in 0..3 {
            ring.add(id);
        }
        let mut hit = [false; 3];
        for key in keys(512) {
            let a = ring.primary(&key).unwrap();
            let b = ring.primary(&key).unwrap();
            assert_eq!(a, b);
            hit[a as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "some replica owns no keys: {hit:?}");
    }

    #[test]
    fn ordered_lists_distinct_members_primary_first() {
        let mut ring = Ring::new(DEFAULT_VNODES);
        for id in 0..4 {
            ring.add(id);
        }
        for key in keys(64) {
            let order = ring.ordered(&key, 4);
            assert_eq!(order.len(), 4);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate member in {order:?}");
            assert_eq!(order[0], ring.primary(&key).unwrap());
        }
    }

    #[test]
    fn removal_remaps_only_the_removed_members_keys() {
        let mut ring = Ring::new(DEFAULT_VNODES);
        for id in 0..5 {
            ring.add(id);
        }
        let before: Vec<(Vec<u8>, u32)> = keys(1024)
            .map(|k| {
                let owner = ring.primary(&k).unwrap();
                (k, owner)
            })
            .collect();
        ring.remove(2);
        for (key, owner) in before {
            let now = ring.primary(&key).unwrap();
            if owner == 2 {
                assert_ne!(now, 2);
            } else {
                assert_eq!(now, owner, "stable key moved");
            }
        }
    }

    #[test]
    fn re_adding_a_member_restores_its_keys() {
        let mut ring = Ring::new(DEFAULT_VNODES);
        for id in 0..3 {
            ring.add(id);
        }
        let before: Vec<u32> = keys(256).map(|k| ring.primary(&k).unwrap()).collect();
        ring.remove(1);
        ring.add(1);
        let after: Vec<u32> = keys(256).map(|k| ring.primary(&k).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = Ring::new(8);
        ring.add(7);
        ring.add(7);
        assert_eq!(ring.len(), 1);
        ring.remove(7);
        ring.remove(7);
        assert!(ring.is_empty());
    }

    #[test]
    fn shares_are_roughly_even() {
        let mut ring = Ring::new(DEFAULT_VNODES);
        for id in 0..3 {
            ring.add(id);
        }
        let mut counts = [0usize; 3];
        for key in keys(3000) {
            counts[ring.primary(&key).unwrap() as usize] += 1;
        }
        for &c in &counts {
            // Each replica should own somewhere near a third; vnodes keep
            // the skew well inside a factor of two.
            assert!((500..=1800).contains(&c), "uneven shares: {counts:?}");
        }
    }
}
