//! Atomic model hot-reload.
//!
//! The server holds one slot per case study, each an
//! `RwLock<Option<Arc<LoadedModel>>>`. Readers (the batch workers) clone
//! the `Arc` once per micro-batch and answer every job in the batch from
//! that snapshot, so a reload never tears a response: in-flight batches
//! finish on the old model, later batches see the new one, and nothing in
//! between.
//!
//! `reload()` is all-or-nothing: every registered path is re-read and
//! validated (the `AIRM` codec checksum-verifies v2 files) *before* any
//! slot is swapped, so a half-written model file on disk cannot take down
//! a healthy server — the reload fails, the old models keep serving.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use airchitect::model::CaseStudy;
use airchitect::{persist, Recommender};
use airchitect_dse::case1::Case1Problem;
use airchitect_dse::case2::Case2Problem;
use airchitect_dse::case3::Case3Problem;
use airchitect_dse::space::Case1Space;

use crate::ServeError;

/// The per-case-study decode problem a loaded model answers against.
#[derive(Debug, Clone)]
pub enum CaseProblem {
    /// CS1: space rebuilt from the model's class count.
    Array(Case1Problem),
    /// CS2: the paper's 1000-label buffer space.
    Buffers(Case2Problem),
    /// CS3: the paper's 1944-label schedule space.
    Schedule(Case3Problem),
}

/// A model snapshot: recommender, decode problem, and provenance.
#[derive(Debug)]
pub struct LoadedModel {
    /// The trained recommender (thread-safe `&self` inference).
    pub recommender: Recommender,
    /// The case study it answers.
    pub case: CaseStudy,
    /// Output-space problem matching the model's class count.
    pub problem: CaseProblem,
    /// Monotonic generation stamped at load time; bumped by every reload.
    pub generation: u64,
    /// File the model was loaded from (re-read on reload).
    pub path: PathBuf,
}

pub(crate) fn slot_index(case: CaseStudy) -> usize {
    match case {
        CaseStudy::ArrayDataflow => 0,
        CaseStudy::BufferSizing => 1,
        CaseStudy::MultiArrayScheduling => 2,
    }
}

/// Short route/JSON name for a case study (`array`, `buffers`, `schedule`).
pub fn case_name(case: CaseStudy) -> &'static str {
    match case {
        CaseStudy::ArrayDataflow => "array",
        CaseStudy::BufferSizing => "buffers",
        CaseStudy::MultiArrayScheduling => "schedule",
    }
}

/// The hot-swappable model registry.
pub struct ModelHub {
    /// Every path handed to [`ModelHub::load`], healthy or not; `reload()`
    /// re-reads all of them, so a model that failed at startup can be
    /// repaired on disk and brought in without a restart.
    registered: Vec<PathBuf>,
    slots: [RwLock<Option<Arc<LoadedModel>>>; 3],
    /// Bumped once per successful reload; loads stamp models with the
    /// current value so cache entries can be generation-checked.
    generation: AtomicU64,
    /// Startup load failures tolerated in degraded mode (cleared by the
    /// first successful reload); surfaced by `/healthz`.
    load_errors: Mutex<Vec<String>>,
}

fn load_one(path: &Path, generation: u64) -> Result<LoadedModel, ServeError> {
    airchitect_chaos::fail_point!("serve.reload.read", |e: std::io::Error| Err(
        ServeError::Model(format!("{}: {e}", path.display()))
    ));
    let model = persist::load(path)
        .map_err(|e| ServeError::Model(format!("{}: {e}", path.display())))?;
    let case = model.case_study();
    let problem = match case {
        CaseStudy::ArrayDataflow => {
            let classes = model.network().out_dim();
            let space = Case1Space::from_len(classes).ok_or_else(|| {
                ServeError::Model(format!(
                    "{}: {classes} classes match no CS1 output space",
                    path.display()
                ))
            })?;
            CaseProblem::Array(Case1Problem::new(space.mac_budget()))
        }
        CaseStudy::BufferSizing => CaseProblem::Buffers(Case2Problem::new()),
        CaseStudy::MultiArrayScheduling => CaseProblem::Schedule(Case3Problem::new()),
    };
    let recommender = Recommender::new(model)
        .map_err(|e| ServeError::Model(format!("{}: {e}", path.display())))?;
    Ok(LoadedModel {
        recommender,
        case,
        problem,
        generation,
        path: path.to_path_buf(),
    })
}

impl ModelHub {
    /// Loads every path and fills the slots; at most one model per case
    /// study, at least one model overall.
    ///
    /// With `tolerate_failures` (degraded-mode serving: the fallback oracle
    /// answers for missing models), a path that fails to load or verify is
    /// recorded in [`ModelHub::load_errors`] and its slot left empty instead
    /// of aborting startup. Duplicate-case and empty-list errors are never
    /// tolerated — those are operator mistakes, not runtime faults.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] for empty path lists, duplicate case studies,
    /// or (unless tolerated) any load/validation failure.
    pub fn load(paths: &[PathBuf], tolerate_failures: bool) -> Result<Self, ServeError> {
        if paths.is_empty() {
            return Err(ServeError::Config("at least one model is required".into()));
        }
        let hub = Self {
            registered: paths.to_vec(),
            slots: [RwLock::new(None), RwLock::new(None), RwLock::new(None)],
            generation: AtomicU64::new(1),
            load_errors: Mutex::new(Vec::new()),
        };
        for path in paths {
            let loaded = match load_one(path, 1) {
                Ok(loaded) => loaded,
                Err(e) if tolerate_failures => {
                    hub.load_errors
                        .lock()
                        .expect("load_errors poisoned")
                        .push(e.to_string());
                    continue;
                }
                Err(e) => return Err(e),
            };
            let slot = &hub.slots[slot_index(loaded.case)];
            let mut guard = slot.write().expect("model slot poisoned");
            if guard.is_some() {
                return Err(ServeError::Config(format!(
                    "two models for {} (second: {})",
                    loaded.case.name(),
                    path.display()
                )));
            }
            *guard = Some(Arc::new(loaded));
        }
        Ok(hub)
    }

    /// Startup load failures currently tolerated (empty once a reload
    /// succeeds or when every model loaded cleanly).
    pub fn load_errors(&self) -> Vec<String> {
        self.load_errors.lock().expect("load_errors poisoned").clone()
    }

    /// Records an operational note surfaced through `/healthz`'s
    /// `load_errors` array (used by the rollout controller for registry
    /// persistence failures); cleared by the next successful reload.
    pub fn note_error(&self, msg: String) {
        self.load_errors
            .lock()
            .expect("load_errors poisoned")
            .push(msg);
    }

    /// The current snapshot for a case study, if a model is loaded.
    pub fn get(&self, case: CaseStudy) -> Option<Arc<LoadedModel>> {
        self.slots[slot_index(case)]
            .read()
            .expect("model slot poisoned")
            .clone()
    }

    /// Every loaded model snapshot, in case-study order.
    pub fn all(&self) -> Vec<Arc<LoadedModel>> {
        CaseStudy::ALL.iter().filter_map(|&c| self.get(c)).collect()
    }

    /// The current generation (the one live models are stamped with).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Re-reads every registered model file and atomically swaps the slots.
    ///
    /// All files are loaded and validated before the first swap, so a
    /// corrupt file leaves every slot untouched. Paths that failed at
    /// startup (tolerated degraded-mode loads) are retried here, and a
    /// fully successful reload clears the recorded load errors. On success
    /// the hub generation is bumped and the new snapshots carry it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] if any registered file fails to load;
    /// the old models keep serving in that case.
    pub fn reload(&self) -> Result<Vec<Arc<LoadedModel>>, ServeError> {
        let next_gen = self.generation.load(Ordering::Acquire) + 1;
        let mut fresh: Vec<Arc<LoadedModel>> = Vec::new();
        for path in &self.registered {
            let loaded = load_one(path, next_gen)?;
            if fresh.iter().any(|m| m.case == loaded.case) {
                return Err(ServeError::Config(format!(
                    "two models for {} (second: {})",
                    loaded.case.name(),
                    path.display()
                )));
            }
            fresh.push(Arc::new(loaded));
        }
        // Validation passed for every file: publish the generation first,
        // then swap. A reader that races sees either (old gen, old model)
        // or (new gen, old model) for an instant — the cache generation
        // check turns the latter into a miss, never a wrong answer.
        self.generation.store(next_gen, Ordering::Release);
        for loaded in &fresh {
            let slot = &self.slots[slot_index(loaded.case)];
            *slot.write().expect("model slot poisoned") = Some(Arc::clone(loaded));
        }
        self.load_errors
            .lock()
            .expect("load_errors poisoned")
            .clear();
        airchitect_telemetry::metrics::SERVE_RELOADS.inc();
        Ok(fresh)
    }

    /// Loads and validates a candidate model set from `paths` (default:
    /// the registered paths) at the *next* generation, without touching
    /// the live slots. This is the staging half of a canary rollout: the
    /// returned snapshots serve the canary traffic slice and are only
    /// swapped in by [`ModelHub::install`] after the gates pass.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] exactly like [`ModelHub::reload`] would; the
    /// live models are unaffected either way.
    pub fn stage(
        &self,
        paths: Option<&[PathBuf]>,
    ) -> Result<(Vec<Arc<LoadedModel>>, u64), ServeError> {
        let next_gen = self.generation.load(Ordering::Acquire) + 1;
        let paths = paths.unwrap_or(&self.registered);
        if paths.is_empty() {
            return Err(ServeError::Config("no model paths to stage".into()));
        }
        let mut fresh: Vec<Arc<LoadedModel>> = Vec::new();
        for path in paths {
            let loaded = load_one(path, next_gen)?;
            if fresh.iter().any(|m| m.case == loaded.case) {
                return Err(ServeError::Config(format!(
                    "two models for {} (second: {})",
                    loaded.case.name(),
                    path.display()
                )));
            }
            fresh.push(Arc::new(loaded));
        }
        Ok((fresh, next_gen))
    }

    /// Atomically installs previously staged (or captured) snapshots and
    /// publishes `generation`. Slots not named by `models` keep their
    /// current occupant, so a single-case canary promote leaves the other
    /// case studies serving their incumbents. Same ordering discipline as
    /// [`ModelHub::reload`]: generation first, then slots.
    pub fn install(&self, models: &[Arc<LoadedModel>], generation: u64) {
        self.generation.fetch_max(generation, Ordering::Release);
        for loaded in models {
            let slot = &self.slots[slot_index(loaded.case)];
            *slot.write().expect("model slot poisoned") = Some(Arc::clone(loaded));
        }
        self.load_errors
            .lock()
            .expect("load_errors poisoned")
            .clear();
        airchitect_telemetry::metrics::SERVE_RELOADS.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect::model::{AirchitectConfig, AirchitectModel};
    use airchitect_data::Dataset;
    use airchitect_nn::train::TrainConfig;

    fn tiny_cs1_model() -> AirchitectModel {
        // 30 classes = the CS1 space for a 2^5 MAC budget (3·(n−1)·n/2),
        // so `Case1Space::from_len` can recover it.
        let mut ds = Dataset::new(4, 30).unwrap();
        for i in 0..120 {
            let m = [8.0, 256.0, 8192.0][i % 3];
            ds.push(&[5.0, m, 64.0, 64.0], (i % 30) as u32).unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: 30,
                train: TrainConfig {
                    epochs: 2,
                    batch_size: 32,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).unwrap();
        model
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "airchitect-serve-reload-{}-{name}",
            std::process::id()
        ))
    }

    #[test]
    fn load_reload_and_generation_bump() {
        let path = temp_path("a.airm");
        persist::save(&tiny_cs1_model(), &path).unwrap();
        let hub = ModelHub::load(&[path.clone()], false).unwrap();
        assert_eq!(hub.generation(), 1);
        let before = hub.get(CaseStudy::ArrayDataflow).unwrap();
        assert_eq!(before.generation, 1);

        let fresh = hub.reload().unwrap();
        assert_eq!(hub.generation(), 2);
        assert_eq!(fresh.len(), 1);
        let after = hub.get(CaseStudy::ArrayDataflow).unwrap();
        assert_eq!(after.generation, 2);
        // The old snapshot is still usable by an in-flight batch.
        assert_eq!(before.generation, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_fails_reload_but_keeps_serving() {
        let path = temp_path("b.airm");
        persist::save(&tiny_cs1_model(), &path).unwrap();
        let hub = ModelHub::load(&[path.clone()], false).unwrap();

        // Truncate the file: the checksum-verified load must reject it.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(hub.reload(), Err(ServeError::Model(_))));
        assert_eq!(hub.generation(), 1, "failed reload must not bump");
        assert!(hub.get(CaseStudy::ArrayDataflow).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_case_is_rejected() {
        let p1 = temp_path("c1.airm");
        let p2 = temp_path("c2.airm");
        let model = tiny_cs1_model();
        persist::save(&model, &p1).unwrap();
        persist::save(&model, &p2).unwrap();
        assert!(matches!(
            ModelHub::load(&[p1.clone(), p2.clone()], false),
            Err(ServeError::Config(_))
        ));
        // Duplicates are an operator mistake, never tolerated.
        assert!(matches!(
            ModelHub::load(&[p1.clone(), p2.clone()], true),
            Err(ServeError::Config(_))
        ));
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn empty_path_list_is_rejected() {
        assert!(matches!(
            ModelHub::load(&[], false),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ModelHub::load(&[], true),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn tolerated_load_failure_is_repaired_by_reload() {
        let path = temp_path("d.airm");
        persist::save(&tiny_cs1_model(), &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Corrupt the file, then start in tolerant (degraded) mode.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            ModelHub::load(&[path.clone()], false),
            Err(ServeError::Model(_))
        ));
        let hub = ModelHub::load(&[path.clone()], true).unwrap();
        assert!(hub.get(CaseStudy::ArrayDataflow).is_none());
        assert_eq!(hub.load_errors().len(), 1);

        // A reload still fails while the file is corrupt...
        assert!(hub.reload().is_err());
        // ...but once repaired on disk, reload fills the empty slot and
        // clears the recorded startup error.
        std::fs::write(&path, &good).unwrap();
        hub.reload().unwrap();
        assert!(hub.get(CaseStudy::ArrayDataflow).is_some());
        assert!(hub.load_errors().is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
