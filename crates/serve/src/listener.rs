//! The server: socket accept loop, per-connection request handling, and
//! the graceful drain-then-exit shutdown sequence.
//!
//! Shutdown protocol (`POST /v1/shutdown`):
//!
//! 1. the handling connection gets its `200` *before* anything stops;
//! 2. the shutdown flag flips, so every connection closes after its
//!    in-flight request and the accept loop stops admitting sockets;
//! 3. the queue stops admitting jobs but drains what it holds; workers
//!    exit once it is empty;
//! 4. [`Server::run`] joins every worker and connection thread and
//!    returns `Ok`, letting the process exit 0.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use airchitect_telemetry::metrics;

use crate::batch::{spawn_workers, Job, PushError, Queue, Source};
use crate::breaker::{Admit, Breakers};
use crate::cache::{CachedResponse, LruCache};
use crate::fallback::{self, Oracle};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::reload::ModelHub;
use crate::router::{self, Route};
use crate::{ServeConfig, ServeError};

/// Hard ceiling on any effective deadline (10 minutes): an absurd
/// `X-Deadline-Ms` must not pin resources for hours.
const MAX_DEADLINE_MS: u64 = 600_000;

/// Consecutive accept failures tolerated (with backoff) before the accept
/// loop gives up. Transient errors — EMFILE pressure, injected faults —
/// should never kill an otherwise healthy server.
const MAX_ACCEPT_ERRORS: u32 = 64;

/// One step of an accept loop shared by the server and the cluster
/// router: transient failures back off and retry (pending connections
/// stay in the kernel backlog), a persistent streak errors out, and a
/// failure observed while `shutdown` is set ends the loop cleanly.
/// Returns `Ok(None)` for "stop accepting".
pub(crate) fn accept_with_retry(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    errors: &mut u32,
    point: &'static str,
) -> Result<Option<(TcpStream, SocketAddr)>, ServeError> {
    loop {
        // The closure gives the failpoint's injected error an early
        // return target without leaving the loop.
        #[allow(clippy::redundant_closure_call)]
        let attempt = (|| {
            airchitect_chaos::fail_point!(point, Err);
            listener.accept()
        })();
        match attempt {
            Ok(pair) => {
                *errors = 0;
                return Ok(Some(pair));
            }
            Err(e) => {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
                *errors += 1;
                if *errors > MAX_ACCEPT_ERRORS {
                    return Err(ServeError::Io(format!("accept: {e}")));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Inner {
    hub: Arc<ModelHub>,
    queue: Arc<Queue>,
    cache: Mutex<LruCache>,
    breakers: Arc<Breakers>,
    shutdown: AtomicBool,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    deadline_ms: u64,
    bypass: bool,
}

/// A bound, ready-to-run inference server. Dropping it without calling
/// [`Server::run`] leaks nothing but joins nothing either; `run` owns the
/// full lifecycle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads the models, binds the socket, and starts the worker pool.
    /// Also enables telemetry recording (the serve counters are the
    /// product surface of `/metrics`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] for bad configuration, model load failures,
    /// or bind failures.
    pub fn bind(config: &ServeConfig) -> Result<Self, ServeError> {
        airchitect_telemetry::enable();
        // `fallback_search` doubles as "tolerate startup load failures":
        // the oracle can answer for a model that failed its checksum.
        let hub = Arc::new(ModelHub::load(&config.model_paths, config.fallback_search)?);
        // Built after `enable()` so the breaker gauges publish their
        // closed state and show up in `/metrics` from the first scrape.
        let breakers = Arc::new(Breakers::new(
            config.breaker_threshold,
            Duration::from_millis(config.breaker_cooldown_ms),
        ));
        let fallback = config.fallback_search.then(|| Arc::new(Oracle::new()));
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let queue = Arc::new(Queue::new(config.queue_depth));
        let workers = spawn_workers(
            config.workers,
            config.batch_max,
            Arc::clone(&queue),
            Arc::clone(&hub),
            Arc::clone(&breakers),
            fallback,
        );
        let secs_opt = |secs: u64| (secs > 0).then(|| Duration::from_secs(secs));
        Ok(Self {
            listener,
            addr,
            inner: Arc::new(Inner {
                hub,
                queue,
                cache: Mutex::new(LruCache::new(config.cache_capacity)),
                breakers,
                shutdown: AtomicBool::new(false),
                read_timeout: secs_opt(config.read_timeout_secs),
                write_timeout: secs_opt(config.write_timeout_secs),
                deadline_ms: config.deadline_ms,
                bypass: config.single_query_bypass,
            }),
            workers,
        })
    }

    /// The bound address (read the ephemeral port back after `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until `POST /v1/shutdown`, then drains and joins everything.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] only for accept-loop failures; per-
    /// connection errors are handled on their own threads.
    pub fn run(mut self) -> Result<(), ServeError> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        let mut accept_errors = 0u32;
        loop {
            let (stream, _) = match accept_with_retry(
                &self.listener,
                &self.inner.shutdown,
                &mut accept_errors,
                "serve.listener.accept",
            )? {
                Some(pair) => pair,
                None => break,
            };
            if self.inner.shutdown.load(Ordering::Acquire) {
                // The wake-up connection (or a late client); don't serve it.
                break;
            }
            let inner = Arc::clone(&self.inner);
            // Reap finished connection threads opportunistically so a
            // long-lived server doesn't accumulate handles.
            connections.retain(|h| !h.is_finished());
            connections.push(
                std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, &inner))
                    .expect("spawn connection thread"),
            );
        }
        // Drain: no new jobs, workers exit when the queue is empty.
        self.inner.queue.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Flips the shutdown flag and unblocks the accept loop by connecting to
/// ourselves (std has no way to interrupt a blocking `accept`).
fn initiate_shutdown(inner: &Inner, addr: SocketAddr) {
    inner.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(inner.read_timeout);
    let _ = stream.set_write_timeout(inner.write_timeout);
    let local = match stream.local_addr() {
        Ok(a) => a,
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Drop the connection as if the socket failed (chaos only).
        airchitect_chaos::fail_point!("serve.conn.read", |_e: std::io::Error| ());
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::Closed | ReadError::TimedOut | ReadError::Io(_)) => return,
            Err(ReadError::Bad { status, reason }) => {
                let resp = Response::error(status, "bad_request", &reason);
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
        };
        let (response, wants_shutdown) = handle_request(&request, inner);
        // Once draining, finish this response and close the connection.
        let draining = wants_shutdown || inner.shutdown.load(Ordering::Acquire);
        let keep_alive = request.keep_alive && !draining;
        airchitect_chaos::fail_point!("serve.conn.write", |_e: std::io::Error| ());
        if write_response(&mut writer, &response, keep_alive).is_err() {
            return;
        }
        if wants_shutdown {
            initiate_shutdown(inner, local);
        }
        if !keep_alive {
            return;
        }
    }
}

/// Dispatches one request. The `bool` is the shutdown signal: the response
/// must be written before the server starts tearing itself down.
fn handle_request(request: &Request, inner: &Inner) -> (Response, bool) {
    let route = match router::route(&request.method, &request.path) {
        Ok(r) => r,
        Err(resp) => return (resp, false),
    };
    match route {
        Route::Healthz => (
            router::render_healthz(&inner.hub, &inner.breakers),
            false,
        ),
        Route::Metrics => (router::render_metrics(), false),
        Route::Shutdown => (
            Response::json(200, "{\"shutting_down\":true}\n".into()),
            true,
        ),
        Route::Reload => (reload(inner), false),
        Route::Recommend(case) => (recommend(case, request, inner), false),
    }
}

/// `POST /v1/reload` behind its circuit breaker: repeated reload failures
/// (corrupt artifact stuck on disk) stop hammering the filesystem and are
/// reported as an open circuit instead.
fn reload(inner: &Inner) -> Response {
    match inner.breakers.reload.try_acquire() {
        Admit::No => {
            let mut resp = Response::error(
                503,
                "circuit_open",
                "reload circuit is open; retry after cooldown",
            );
            resp.retry_after = Some(1);
            resp
        }
        Admit::Yes => match inner.hub.reload() {
            Ok(_) => {
                inner.breakers.reload.record(true);
                router::render_reloaded(&inner.hub)
            }
            // 409, not 5xx: the server is healthy, the *new* artifact is
            // not; old models keep serving. It still counts against the
            // breaker — an operator redeploying a corrupt model in a loop
            // should trip it.
            Err(e) => {
                inner.breakers.reload.record(false);
                Response::error(409, "reload_failed", &e.to_string())
            }
        },
    }
}

/// The effective per-request budget: the tighter of the server default and
/// the client's `X-Deadline-Ms`, both capped at [`MAX_DEADLINE_MS`].
fn effective_deadline(config_ms: u64, header_ms: Option<u64>) -> Option<Duration> {
    let ms = match (config_ms, header_ms) {
        (0, None) => return None,
        (0, Some(h)) => h,
        (c, None) => c,
        (c, Some(h)) => h.min(c),
    };
    Some(Duration::from_millis(ms.min(MAX_DEADLINE_MS)))
}

fn deadline_exceeded() -> Response {
    metrics::SERVE_DEADLINE_EXCEEDED.inc();
    Response::error(
        504,
        "deadline_exceeded",
        "request deadline expired before an answer was produced",
    )
}

fn draining() -> Response {
    let mut resp = Response::error(503, "draining", "server is shutting down");
    resp.retry_after = Some(1);
    resp
}

fn recommend(case: airchitect::model::CaseStudy, request: &Request, inner: &Inner) -> Response {
    metrics::SERVE_REQUESTS.inc();
    let started = Instant::now();
    let deadline = effective_deadline(inner.deadline_ms, request.deadline_ms)
        .map(|budget| started + budget);
    // Admission-time checks: a draining server or an already-expired
    // budget (`X-Deadline-Ms: 0`) answers before any work is queued.
    if inner.shutdown.load(Ordering::Acquire) {
        return draining();
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return deadline_exceeded();
    }
    let parsed = match router::parse_recommend(case, &request.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    // Cache lookup, generation-checked against the live model.
    let live_generation = inner.hub.generation();
    let hit = inner
        .cache
        .lock()
        .expect("cache poisoned")
        .get(&parsed.cache_key, live_generation);
    if let Some(cached) = hit {
        metrics::SERVE_CACHE_HITS.inc();
        let body = format!("{{\"cached\":true,{}", cached.body_tail);
        metrics::SERVE_REQUEST_US.record(started.elapsed().as_micros() as u64);
        return Response::json(200, body);
    }
    metrics::SERVE_CACHE_MISSES.inc();

    // Single-query bypass: with no batch window to join (empty queue), a
    // top-1 request is answered inline on the int8-quantized hot path —
    // no queue hop, no worker round-trip. Only model-source answers are
    // taken here; every other situation (missing model, unquantizable
    // model, open circuit, ranked query) falls through so the queue path
    // stays the single owner of fallback and circuit-open policy.
    if inner.bypass && parsed.topk == 0 && inner.queue.is_empty() {
        if let Some(model) = inner.hub.get(case) {
            if model.recommender.quantized().is_some() {
                let breaker = inner.breakers.infer(case);
                if matches!(breaker.try_acquire(), Admit::Yes) {
                    metrics::SERVE_BYPASS.inc();
                    // Same panic isolation and breaker accounting as the
                    // worker's answer_job: a poisoned model costs one 500.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || crate::batch::execute_fast(&model, &parsed.query),
                    ))
                    .unwrap_or_else(|_| crate::batch::Outcome::Err {
                        status: 500,
                        code: "inference_panic",
                        message: "inference panicked; the request was isolated".into(),
                    });
                    let failed = matches!(
                        &outcome,
                        crate::batch::Outcome::Err { status, .. } if *status >= 500
                    );
                    if failed {
                        metrics::SERVE_INFER_FAILURES.inc();
                    }
                    breaker.record(!failed);
                    let response = outcome_response(outcome, parsed.cache_key, inner);
                    metrics::SERVE_REQUEST_US.record(started.elapsed().as_micros() as u64);
                    return response;
                }
            }
        }
    }

    // Admission control: reject-on-full keeps queue latency bounded.
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        query: parsed.query,
        topk: parsed.topk,
        reply: reply_tx,
        deadline,
    };
    match inner.queue.push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            let mut resp = Response::error(
                429,
                "queue_full",
                "request queue is full; retry shortly",
            );
            resp.retry_after = Some(1);
            return resp;
        }
        Err(PushError::ShuttingDown) => return draining(),
    }

    // Wait for the worker, but never past the deadline: the 504 is
    // answered on time even if the worker is stuck on an injected stall.
    let outcome = match deadline {
        None => match reply_rx.recv() {
            Ok(o) => o,
            // Workers only exit during shutdown, after draining the queue.
            Err(_) => return draining(),
        },
        Some(d) => {
            match reply_rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                Ok(o) => o,
                Err(mpsc::RecvTimeoutError::Timeout) => return deadline_exceeded(),
                Err(mpsc::RecvTimeoutError::Disconnected) => return draining(),
            }
        }
    };
    let response = outcome_response(outcome, parsed.cache_key, inner);
    metrics::SERVE_REQUEST_US.record(started.elapsed().as_micros() as u64);
    response
}

/// Frames an inference [`Outcome`](crate::batch::Outcome) as HTTP and
/// handles response caching — shared by the queue path and the
/// single-query bypass so both produce byte-identical responses.
fn outcome_response(
    outcome: crate::batch::Outcome,
    cache_key: Vec<u8>,
    inner: &Inner,
) -> Response {
    match outcome {
        crate::batch::Outcome::Ok {
            body_tail,
            generation,
            source,
        } => {
            let body = format!("{{\"cached\":false,{body_tail}");
            match source {
                // Only model answers are cached: a cache must never replay
                // a degraded-mode answer after the model recovers.
                Source::Model => {
                    inner.cache.lock().expect("cache poisoned").put(
                        cache_key,
                        CachedResponse {
                            body_tail,
                            generation,
                        },
                    );
                    Response::json(200, body)
                }
                Source::Search => {
                    let mut resp = Response::json(200, body);
                    resp.warning = Some(fallback::WARNING.to_string());
                    resp
                }
            }
        }
        crate::batch::Outcome::Err {
            status,
            code,
            message,
        } => {
            let mut resp = Response::error(status, code, &message);
            if code == "circuit_open" {
                resp.retry_after = Some(1);
            }
            resp
        }
    }
}
