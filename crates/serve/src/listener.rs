//! The server: socket accept loop, per-connection request handling, and
//! the graceful drain-then-exit shutdown sequence.
//!
//! Shutdown protocol (`POST /v1/shutdown`):
//!
//! 1. the handling connection gets its `200` *before* anything stops;
//! 2. the shutdown flag flips, so every connection closes after its
//!    in-flight request and the accept loop stops admitting sockets;
//! 3. the queue stops admitting jobs but drains what it holds; workers
//!    exit once it is empty;
//! 4. [`Server::run`] joins every worker and connection thread and
//!    returns `Ok`, letting the process exit 0.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use airchitect_telemetry::metrics;

use crate::batch::{spawn_workers, Job, PushError, Queue};
use crate::cache::{CachedResponse, LruCache};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::reload::ModelHub;
use crate::router::{self, Route};
use crate::{ServeConfig, ServeError};

/// State shared by the accept loop and every connection thread.
struct Inner {
    hub: Arc<ModelHub>,
    queue: Arc<Queue>,
    cache: Mutex<LruCache>,
    shutdown: AtomicBool,
    read_timeout: Option<Duration>,
}

/// A bound, ready-to-run inference server. Dropping it without calling
/// [`Server::run`] leaks nothing but joins nothing either; `run` owns the
/// full lifecycle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads the models, binds the socket, and starts the worker pool.
    /// Also enables telemetry recording (the serve counters are the
    /// product surface of `/metrics`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] for bad configuration, model load failures,
    /// or bind failures.
    pub fn bind(config: &ServeConfig) -> Result<Self, ServeError> {
        airchitect_telemetry::enable();
        let hub = Arc::new(ModelHub::load(&config.model_paths)?);
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let queue = Arc::new(Queue::new(config.queue_depth));
        let workers = spawn_workers(
            config.workers,
            config.batch_max,
            Arc::clone(&queue),
            Arc::clone(&hub),
        );
        let read_timeout = if config.read_timeout_secs == 0 {
            None
        } else {
            Some(Duration::from_secs(config.read_timeout_secs))
        };
        Ok(Self {
            listener,
            addr,
            inner: Arc::new(Inner {
                hub,
                queue,
                cache: Mutex::new(LruCache::new(config.cache_capacity)),
                shutdown: AtomicBool::new(false),
                read_timeout,
            }),
            workers,
        })
    }

    /// The bound address (read the ephemeral port back after `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until `POST /v1/shutdown`, then drains and joins everything.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] only for accept-loop failures; per-
    /// connection errors are handled on their own threads.
    pub fn run(mut self) -> Result<(), ServeError> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) => {
                    if self.inner.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    return Err(ServeError::Io(format!("accept: {e}")));
                }
            };
            if self.inner.shutdown.load(Ordering::Acquire) {
                // The wake-up connection (or a late client); don't serve it.
                break;
            }
            let inner = Arc::clone(&self.inner);
            // Reap finished connection threads opportunistically so a
            // long-lived server doesn't accumulate handles.
            connections.retain(|h| !h.is_finished());
            connections.push(
                std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, &inner))
                    .expect("spawn connection thread"),
            );
        }
        // Drain: no new jobs, workers exit when the queue is empty.
        self.inner.queue.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Flips the shutdown flag and unblocks the accept loop by connecting to
/// ourselves (std has no way to interrupt a blocking `accept`).
fn initiate_shutdown(inner: &Inner, addr: SocketAddr) {
    inner.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(inner.read_timeout);
    let local = match stream.local_addr() {
        Ok(a) => a,
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::Closed | ReadError::TimedOut | ReadError::Io(_)) => return,
            Err(ReadError::Bad { status, reason }) => {
                let resp = Response::error(status, "bad_request", &reason);
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
        };
        let (response, wants_shutdown) = handle_request(&request, inner);
        // Once draining, finish this response and close the connection.
        let draining = wants_shutdown || inner.shutdown.load(Ordering::Acquire);
        let keep_alive = request.keep_alive && !draining;
        if write_response(&mut writer, &response, keep_alive).is_err() {
            return;
        }
        if wants_shutdown {
            initiate_shutdown(inner, local);
        }
        if !keep_alive {
            return;
        }
    }
}

/// Dispatches one request. The `bool` is the shutdown signal: the response
/// must be written before the server starts tearing itself down.
fn handle_request(request: &Request, inner: &Inner) -> (Response, bool) {
    let route = match router::route(&request.method, &request.path) {
        Ok(r) => r,
        Err(resp) => return (resp, false),
    };
    match route {
        Route::Healthz => (router::render_healthz(&inner.hub), false),
        Route::Metrics => (router::render_metrics(), false),
        Route::Shutdown => (
            Response::json(200, "{\"shutting_down\":true}\n".into()),
            true,
        ),
        Route::Reload => match inner.hub.reload() {
            Ok(_) => (router::render_reloaded(&inner.hub), false),
            // 409, not 5xx: the server is healthy, the *new* artifact is
            // not; old models keep serving.
            Err(e) => (
                Response::error(409, "reload_failed", &e.to_string()),
                false,
            ),
        },
        Route::Recommend(case) => (recommend(case, &request.body, inner), false),
    }
}

fn recommend(case: airchitect::model::CaseStudy, body: &[u8], inner: &Inner) -> Response {
    metrics::SERVE_REQUESTS.inc();
    let started = Instant::now();
    let parsed = match router::parse_recommend(case, body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    // Cache lookup, generation-checked against the live model.
    let live_generation = inner.hub.generation();
    let hit = inner
        .cache
        .lock()
        .expect("cache poisoned")
        .get(&parsed.cache_key, live_generation);
    if let Some(cached) = hit {
        metrics::SERVE_CACHE_HITS.inc();
        let body = format!("{{\"cached\":true,{}", cached.body_tail);
        metrics::SERVE_REQUEST_US.record(started.elapsed().as_micros() as u64);
        return Response::json(200, body);
    }
    metrics::SERVE_CACHE_MISSES.inc();

    // Admission control: reject-on-full keeps queue latency bounded.
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        query: parsed.query,
        topk: parsed.topk,
        reply: reply_tx,
    };
    match inner.queue.push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            let mut resp = Response::error(
                429,
                "queue_full",
                "request queue is full; retry shortly",
            );
            resp.retry_after = Some(1);
            return resp;
        }
        Err(PushError::ShuttingDown) => {
            return Response::error(503, "draining", "server is shutting down");
        }
    }

    let outcome = match reply_rx.recv() {
        Ok(o) => o,
        // Workers only exit during shutdown, after draining the queue.
        Err(_) => return Response::error(503, "draining", "server is shutting down"),
    };
    let response = match outcome {
        crate::batch::Outcome::Ok {
            body_tail,
            generation,
        } => {
            let body = format!("{{\"cached\":false,{body_tail}");
            inner.cache.lock().expect("cache poisoned").put(
                parsed.cache_key,
                CachedResponse {
                    body_tail,
                    generation,
                },
            );
            Response::json(200, body)
        }
        crate::batch::Outcome::Err {
            status,
            code,
            message,
        } => Response::error(status, code, &message),
    };
    metrics::SERVE_REQUEST_US.record(started.elapsed().as_micros() as u64);
    response
}
