//! The server: accept handling, request dispatch, and the graceful
//! drain-then-exit shutdown sequence — in two listener modes sharing one
//! dispatch path.
//!
//! * **Evented** (default on Linux): N event-loop shards, each with its
//!   own `SO_REUSEPORT` acceptor and epoll reactor ([`crate::evented`]).
//!   Connections are nonblocking state machines; batch-worker replies
//!   come back through a completion queue + eventfd wake.
//! * **Threaded** (`--threaded`, and the only mode off-Linux): one OS
//!   thread per connection, with a timer-based reaper so finished handles
//!   are released without waiting for the next accept.
//!
//! Both modes call [`handle_request_step`] for every request, so routing,
//! admission control, deadlines, breakers, caching, bypass, and chaos
//! semantics are decided in exactly one place.
//!
//! Shutdown protocol (`POST /v1/shutdown`):
//!
//! 1. the handling connection gets its `200` *before* anything stops;
//! 2. the shutdown flag flips, so every connection closes after its
//!    in-flight request and the accept paths stop admitting sockets;
//! 3. the queue stops admitting jobs but drains what it holds; workers
//!    exit once it is empty;
//! 4. [`Server::run`] joins every worker and connection (thread or
//!    shard) and returns `Ok`, letting the process exit 0.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use airchitect_telemetry::metrics;

use crate::batch::{spawn_workers, CompletionQueue, Job, PushError, Queue, Reply, Source};
use crate::breaker::{Admit, Breakers};
use crate::cache::{CachedResponse, LruCache};
use crate::canary::{Rollout, RolloutConfig};
use crate::fallback::{self, Oracle};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::registry::{Registry, DEFAULT_RETAIN};
use crate::reload::ModelHub;
use crate::router::{self, Route};
use crate::{ServeConfig, ServeError};

/// Hard ceiling on any effective deadline (10 minutes): an absurd
/// `X-Deadline-Ms` must not pin resources for hours.
const MAX_DEADLINE_MS: u64 = 600_000;

/// Consecutive accept failures tolerated (with backoff) before an accept
/// path gives up. Transient errors — EMFILE pressure, injected faults —
/// should never kill an otherwise healthy server.
pub(crate) const MAX_ACCEPT_ERRORS: u32 = 64;

/// How often the threaded listener's reaper sweeps finished connection
/// handles.
const REAP_INTERVAL: Duration = Duration::from_millis(200);

/// One step of a blocking accept loop shared by the threaded server and
/// the cluster router: transient failures back off and retry (pending
/// connections stay in the kernel backlog), a persistent streak errors
/// out, and a failure observed while `shutdown` is set ends the loop
/// cleanly. Returns `Ok(None)` for "stop accepting".
pub(crate) fn accept_with_retry(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    errors: &mut u32,
    point: &'static str,
) -> Result<Option<(TcpStream, SocketAddr)>, ServeError> {
    loop {
        // The closure gives the failpoint's injected error an early
        // return target without leaving the loop.
        #[allow(clippy::redundant_closure_call)]
        let attempt = (|| {
            airchitect_chaos::fail_point!(point, Err);
            listener.accept()
        })();
        match attempt {
            Ok(pair) => {
                *errors = 0;
                return Ok(Some(pair));
            }
            Err(e) => {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
                *errors += 1;
                if *errors > MAX_ACCEPT_ERRORS {
                    return Err(ServeError::Io(format!("accept: {e}")));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Per-shard counters for the evented listener, surfaced as
/// `serve.shard.N.*` lines in `/metrics`.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Connections currently registered with this shard's poller.
    pub(crate) open: AtomicU64,
    /// Connections this shard has accepted since startup.
    pub(crate) accepted: AtomicU64,
    /// Eventfd wakeups this shard has observed.
    pub(crate) wakeups: AtomicU64,
}

/// The listener-visible face of one evented shard: its stats and its
/// completion queue (whose depth is the ready-queue gauge and whose waker
/// nudges the loop during shutdown).
pub(crate) struct ShardHandle {
    pub(crate) stats: Arc<ShardStats>,
    pub(crate) completions: Arc<CompletionQueue>,
}

/// State shared by every accept path and connection.
pub(crate) struct Inner {
    pub(crate) hub: Arc<ModelHub>,
    pub(crate) queue: Arc<Queue>,
    pub(crate) cache: Mutex<LruCache>,
    pub(crate) breakers: Arc<Breakers>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) write_timeout: Option<Duration>,
    pub(crate) deadline_ms: u64,
    pub(crate) bypass: bool,
    /// Opt-in `TCP_NODELAY` on accepted sockets (both listener modes).
    pub(crate) nodelay: bool,
    /// Shadow-oracle sampling pipeline; `None` when disabled.
    pub(crate) shadow: Option<Arc<crate::shadow::ShadowState>>,
    /// Canary rollout controller (inert when the split is zero and no
    /// registry is attached, but always present so dispatch is uniform).
    pub(crate) rollout: Rollout,
    /// Evented shards (empty in threaded mode).
    pub(crate) shards: Vec<ShardHandle>,
    /// Live connection threads (zero in evented mode).
    pub(crate) threaded_open: AtomicU64,
}

enum Mode {
    Threaded {
        listener: TcpListener,
    },
    #[cfg(target_os = "linux")]
    Evented {
        shards: Vec<crate::evented::ShardSeed>,
    },
}

/// A bound, ready-to-run inference server. Dropping it without calling
/// [`Server::run`] leaks nothing but joins nothing either; `run` owns the
/// full lifecycle.
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    mode: Mode,
    event_loops: usize,
}

impl Server {
    /// Loads the models, binds the socket(s), and starts the worker pool.
    /// Also enables telemetry recording (the serve counters are the
    /// product surface of `/metrics`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] for bad configuration, model load failures,
    /// or bind failures.
    pub fn bind(config: &ServeConfig) -> Result<Self, ServeError> {
        airchitect_telemetry::enable();
        // Registry mode: boot from the stable `current.airm` copy so a
        // restart (even one SIGKILLed mid-rollout) lands on the version
        // the last successful promote installed. A `--model` given
        // alongside an *empty* registry seeds version 1; with an active
        // version already on disk, the registry wins.
        let mut model_paths = config.model_paths.clone();
        let registry = match &config.model_dir {
            Some(dir) => {
                let mut reg = Registry::open(dir, DEFAULT_RETAIN)
                    .map_err(|e| ServeError::Config(format!("--model-dir: {e}")))?;
                if model_paths.len() > 1 {
                    return Err(ServeError::Config(
                        "--model-dir manages a single model; pass at most one --model".into(),
                    ));
                }
                if reg.manifest().active.is_none() {
                    let seed = model_paths.first().ok_or_else(|| {
                        ServeError::Config(format!(
                            "registry at {} has no active version; seed it with --model or `train --model-dir`",
                            dir.display()
                        ))
                    })?;
                    let bytes = std::fs::read(seed)
                        .map_err(|e| ServeError::Io(format!("{}: {e}", seed.display())))?;
                    let version = reg
                        .add_version(&bytes)
                        .and_then(|v| reg.promote(v).map(|_| v))
                        .map_err(|e| ServeError::Config(format!("--model-dir seed: {e}")))?;
                    let _ = version;
                }
                model_paths = vec![reg.current_path()];
                Some(reg)
            }
            None => None,
        };
        // `fallback_search` doubles as "tolerate startup load failures":
        // the oracle can answer for a model that failed its checksum.
        let hub = Arc::new(ModelHub::load(&model_paths, config.fallback_search)?);
        let rollout = Rollout::new(
            RolloutConfig {
                split_ppm: airchitect_online::sampler::rate_to_ppm(config.canary_split),
                min_samples: config.canary_min_samples.max(1),
                min_agreement: config.canary_min_agreement,
                max_p99_ratio: config.canary_max_p99_ratio,
            },
            Arc::clone(&hub),
            registry,
        );
        // Built after `enable()` so the breaker gauges publish their
        // closed state and show up in `/metrics` from the first scrape.
        let breakers = Arc::new(Breakers::new(
            config.breaker_threshold,
            Duration::from_millis(config.breaker_cooldown_ms),
        ));
        let fallback = config.fallback_search.then(|| Arc::new(Oracle::new()));

        #[cfg(target_os = "linux")]
        let use_evented = !config.threaded;
        #[cfg(not(target_os = "linux"))]
        let use_evented = false;

        let (mode, addr, shard_handles, event_loops) = if use_evented {
            #[cfg(target_os = "linux")]
            {
                let seeds = crate::evented::bind_shards(config)?;
                let addr = seeds[0].addr;
                let handles = seeds
                    .iter()
                    .map(|s| ShardHandle {
                        stats: Arc::clone(&s.stats),
                        completions: Arc::clone(&s.completions),
                    })
                    .collect::<Vec<_>>();
                let n = seeds.len();
                (Mode::Evented { shards: seeds }, addr, handles, n)
            }
            #[cfg(not(target_os = "linux"))]
            unreachable!("evented mode is Linux-only")
        } else {
            let listener = TcpListener::bind(&config.addr)
                .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
            let addr = listener
                .local_addr()
                .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
            (Mode::Threaded { listener }, addr, Vec::new(), 0)
        };

        let queue = Arc::new(Queue::new(config.queue_depth));
        let workers = spawn_workers(
            config.workers,
            config.batch_max,
            Arc::clone(&queue),
            Arc::clone(&hub),
            Arc::clone(&breakers),
            fallback,
        );
        let secs_opt = |secs: u64| (secs > 0).then(|| Duration::from_secs(secs));
        Ok(Self {
            addr,
            inner: Arc::new(Inner {
                hub,
                queue,
                cache: Mutex::new(LruCache::new(config.cache_capacity)),
                breakers,
                shutdown: AtomicBool::new(false),
                read_timeout: secs_opt(config.read_timeout_secs),
                write_timeout: secs_opt(config.write_timeout_secs),
                deadline_ms: config.deadline_ms,
                bypass: config.single_query_bypass,
                nodelay: config.nodelay,
                shadow: crate::shadow::ShadowState::start(config)?,
                rollout,
                shards: shard_handles,
                threaded_open: AtomicU64::new(0),
            }),
            workers,
            mode,
            event_loops,
        })
    }

    /// The bound address (read the ephemeral port back after `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of event-loop shards (0 in threaded mode).
    pub fn event_loops(&self) -> usize {
        self.event_loops
    }

    /// Serves until `POST /v1/shutdown`, then drains and joins everything.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] only for accept failures; per-connection
    /// errors are handled inside their own thread or shard.
    pub fn run(self) -> Result<(), ServeError> {
        let Server {
            addr,
            inner,
            mut workers,
            mode,
            ..
        } = self;
        let result = match mode {
            Mode::Threaded { listener } => {
                let connections = ReapedSet::start(REAP_INTERVAL);
                let result = run_threaded_accept(&listener, &inner, &connections);
                // Drain: no new jobs, workers exit when the queue is
                // empty, then every connection thread is joined.
                inner.queue.shutdown();
                for handle in workers.drain(..) {
                    let _ = handle.join();
                }
                connections.finish();
                let _ = addr; // threaded shutdown self-connects via `initiate_shutdown`
                result
            }
            #[cfg(target_os = "linux")]
            Mode::Evented { shards } => {
                let result = crate::evented::run_shards(shards, &inner);
                inner.queue.shutdown();
                for handle in workers.drain(..) {
                    let _ = handle.join();
                }
                result
            }
        };
        // Drain the shadow pool last: in-flight oracle records land in the
        // log (with their end line) before the process exits.
        if let Some(shadow) = &inner.shadow {
            shadow.finish();
        }
        result
    }
}

fn run_threaded_accept(
    listener: &TcpListener,
    inner: &Arc<Inner>,
    connections: &ReapedSet,
) -> Result<(), ServeError> {
    let mut accept_errors = 0u32;
    loop {
        let (stream, _) = match accept_with_retry(
            listener,
            &inner.shutdown,
            &mut accept_errors,
            "serve.listener.accept",
        )? {
            Some(pair) => pair,
            None => return Ok(()),
        };
        if inner.shutdown.load(Ordering::Acquire) {
            // The wake-up connection (or a late client); don't serve it.
            return Ok(());
        }
        let inner = Arc::clone(inner);
        connections.push(
            std::thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || handle_connection(stream, &inner))
                .expect("spawn connection thread"),
        );
    }
}

/// Connection-thread handles for the threaded listener, reaped on a
/// timer. The accept loop used to sweep finished handles only on the
/// *next* accept, so an idle server after a burst held every handle until
/// shutdown; the background sweeper releases them within
/// [`REAP_INTERVAL`] regardless of traffic, and a hard in-push bound
/// covers bursts faster than the timer.
pub(crate) struct ReapedSet {
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stop: Arc<AtomicBool>,
    sweeper: Option<JoinHandle<()>>,
}

/// Sweep immediately (without waiting for the timer) once this many
/// handles are held.
const REAP_PUSH_BOUND: usize = 1024;

impl ReapedSet {
    /// Starts the background sweeper.
    pub(crate) fn start(interval: Duration) -> Self {
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let handles = Arc::clone(&handles);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-reaper".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        let mut held = handles.lock().expect("reaper poisoned");
                        held.retain(|h| !h.is_finished());
                        metrics::SERVE_CONN_THREADS.set(held.len() as f64);
                    }
                })
                .expect("spawn reaper thread")
        };
        Self {
            handles,
            stop,
            sweeper: Some(sweeper),
        }
    }

    /// Tracks one connection thread.
    pub(crate) fn push(&self, handle: JoinHandle<()>) {
        let mut held = self.handles.lock().expect("reaper poisoned");
        held.push(handle);
        if held.len() >= REAP_PUSH_BOUND {
            held.retain(|h| !h.is_finished());
        }
    }

    /// Currently held handles (finished ones linger until the next sweep).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.handles.lock().expect("reaper poisoned").len()
    }

    /// Stops the sweeper and joins every remaining connection thread.
    pub(crate) fn finish(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("reaper poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        metrics::SERVE_CONN_THREADS.set(0.0);
    }
}

/// Flips the shutdown flag and unblocks whichever accept path is active:
/// the threaded loop by connecting to ourselves (std has no way to
/// interrupt a blocking `accept`), the evented shards by waking their
/// loops.
fn initiate_shutdown(inner: &Inner, addr: SocketAddr) {
    inner.shutdown.store(true, Ordering::Release);
    for shard in &inner.shards {
        shard.completions.wake();
    }
    if inner.shards.is_empty() {
        let _ = TcpStream::connect(addr);
    }
}

struct OpenGuard<'a>(&'a Inner);

impl Drop for OpenGuard<'_> {
    fn drop(&mut self) {
        self.0.threaded_open.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    inner.threaded_open.fetch_add(1, Ordering::Relaxed);
    let _open = OpenGuard(inner);
    if inner.nodelay {
        let _ = stream.set_nodelay(true);
    }
    let _ = stream.set_read_timeout(inner.read_timeout);
    let _ = stream.set_write_timeout(inner.write_timeout);
    let local = match stream.local_addr() {
        Ok(a) => a,
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Drop the connection as if the socket failed (chaos only).
        airchitect_chaos::fail_point!("serve.conn.read", |_e: std::io::Error| ());
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::Closed | ReadError::TimedOut | ReadError::Io(_)) => return,
            Err(ReadError::Bad { status, reason }) => {
                let resp = Response::error(status, "bad_request", &reason);
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
        };
        let (response, wants_shutdown) = handle_request(&request, inner);
        // Once draining, finish this response and close the connection.
        let draining = wants_shutdown || inner.shutdown.load(Ordering::Acquire);
        let keep_alive = request.keep_alive && !draining;
        airchitect_chaos::fail_point!("serve.conn.write", |_e: std::io::Error| ());
        if write_response(&mut writer, &response, keep_alive).is_err() {
            return;
        }
        if wants_shutdown {
            initiate_shutdown(inner, local);
        }
        if !keep_alive {
            return;
        }
    }
}

/// How one request resolves from the caller's point of view.
pub(crate) enum Step {
    /// The response is ready — nothing was queued.
    Respond(Response),
    /// The request was queued; the worker's outcome will arrive on the
    /// [`Reply`] built by the dispatch call. The caller owns waiting (or
    /// not blocking) and must frame the outcome with
    /// [`outcome_response`], record `serve.request_us`, and answer 504 /
    /// draining itself if the deadline passes or the queue drains first.
    Queued {
        /// When request handling started (for the latency histogram).
        started: Instant,
        /// Absolute deadline, if one applies.
        deadline: Option<Instant>,
        /// Cache key for a successful model answer.
        cache_key: Vec<u8>,
    },
}

/// Dispatches one request without blocking. The `bool` is the shutdown
/// signal: the response must be written before the server starts tearing
/// itself down. `make_reply` is only invoked if the request is queued.
pub(crate) fn handle_request_step(
    request: &Request,
    inner: &Inner,
    make_reply: &mut dyn FnMut() -> Reply,
) -> (Step, bool) {
    let route = match router::route(&request.method, &request.path) {
        Ok(r) => r,
        Err(resp) => return (Step::Respond(resp), false),
    };
    match route {
        Route::Healthz => (
            Step::Respond(router::render_healthz(
                &inner.hub,
                &inner.breakers,
                Some(&inner.rollout),
            )),
            false,
        ),
        Route::Metrics => (Step::Respond(render_metrics_response(inner)), false),
        Route::Shutdown => (
            Step::Respond(Response::json(200, "{\"shutting_down\":true}\n".into())),
            true,
        ),
        Route::Reload => (Step::Respond(reload(request, inner)), false),
        Route::Rollback => (Step::Respond(inner.rollout.rollback_now()), false),
        Route::Recommend(case) => (recommend_step(case, request, inner, make_reply), false),
    }
}

/// Blocking dispatch for the threaded listener: runs the shared step,
/// then waits out a queued reply on the connection thread.
fn handle_request(request: &Request, inner: &Inner) -> (Response, bool) {
    let mut rx_slot: Option<mpsc::Receiver<crate::batch::Outcome>> = None;
    let (step, wants_shutdown) = handle_request_step(request, inner, &mut || {
        let (tx, rx) = mpsc::channel();
        rx_slot = Some(rx);
        Reply::Channel(tx)
    });
    let response = match step {
        Step::Respond(resp) => resp,
        Step::Queued {
            started,
            deadline,
            cache_key,
        } => {
            let rx = rx_slot.take().expect("queued dispatch built a reply");
            await_reply(&rx, started, deadline, cache_key, inner)
        }
    };
    (response, wants_shutdown)
}

/// Waits for the worker, but never past the deadline: the 504 is answered
/// on time even if the worker is stuck on an injected stall. Records the
/// request latency on every terminal path.
fn await_reply(
    rx: &mpsc::Receiver<crate::batch::Outcome>,
    started: Instant,
    deadline: Option<Instant>,
    cache_key: Vec<u8>,
    inner: &Inner,
) -> Response {
    let outcome = match deadline {
        None => match rx.recv() {
            Ok(o) => o,
            // Workers only exit during shutdown, after draining the queue.
            Err(_) => return record_latency(started, draining()),
        },
        Some(d) => match rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
            Ok(o) => o,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return record_latency(started, deadline_exceeded())
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return record_latency(started, draining())
            }
        },
    };
    record_latency(started, outcome_response(outcome, cache_key, inner))
}

/// `/metrics` body: the telemetry registry plus the listener's live
/// connection accounting — an aggregate `serve.open_connections` line and
/// per-shard `serve.shard.N.*` gauges in evented mode (the same manual
/// append pattern the cluster router uses for per-replica series).
fn render_metrics_response(inner: &Inner) -> Response {
    use std::fmt::Write as _;
    let mut resp = router::render_metrics();
    let mut total = inner.threaded_open.load(Ordering::Relaxed);
    let mut shard_lines = String::new();
    for (i, shard) in inner.shards.iter().enumerate() {
        let open = shard.stats.open.load(Ordering::Relaxed);
        total += open;
        let _ = writeln!(shard_lines, "serve.shard.{i}.open_connections {open}");
        let _ = writeln!(
            shard_lines,
            "serve.shard.{i}.ready_depth {}",
            shard.completions.len()
        );
        let _ = writeln!(
            shard_lines,
            "serve.shard.{i}.wakeups {}",
            shard.stats.wakeups.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            shard_lines,
            "serve.shard.{i}.accepted {}",
            shard.stats.accepted.load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(resp.body, "serve.open_connections {total}");
    resp.body.push_str(&shard_lines);
    resp
}

/// `POST /v1/reload` behind its circuit breaker: repeated reload failures
/// (corrupt artifact stuck on disk) stop hammering the filesystem and are
/// reported as an open circuit instead.
///
/// With a canary split configured the reload *stages* the candidate and
/// hands it to the rollout controller; without one it keeps the legacy
/// immediate swap (in registry mode, promoting the newest unquarantined
/// version first so the swap picks it up from `current.airm`).
fn reload(request: &Request, inner: &Inner) -> Response {
    match inner.breakers.reload.try_acquire() {
        Admit::No => {
            let mut resp = Response::error(
                503,
                "circuit_open",
                "reload circuit is open; retry after cooldown",
            );
            resp.retry_after = Some(1);
            resp
        }
        Admit::Yes
            if inner.rollout.enabled() && !crate::canary::reload_is_immediate(&request.body) =>
        {
            let resp = inner.rollout.stage_reload(&request.body);
            // A stage failure counts against the breaker exactly like a
            // failed legacy reload: redeploying a corrupt artifact in a
            // loop should trip it.
            inner.breakers.reload.record(resp.status == 200);
            resp
        }
        Admit::Yes => {
            // Immediate swap: explicit `{"path", "version"}` bodies from
            // the rolling coordinator are honored, registry mode promotes
            // the newest candidate first, plain mode re-reads the
            // registered paths. A failure still counts against the
            // breaker — an operator redeploying a corrupt model in a loop
            // should trip it.
            let resp = inner.rollout.immediate_reload(&request.body);
            inner.breakers.reload.record(resp.status == 200);
            resp
        }
    }
}

/// The effective per-request budget: the tighter of the server default and
/// the client's `X-Deadline-Ms`, both capped at [`MAX_DEADLINE_MS`].
fn effective_deadline(config_ms: u64, header_ms: Option<u64>) -> Option<Duration> {
    let ms = match (config_ms, header_ms) {
        (0, None) => return None,
        (0, Some(h)) => h,
        (c, None) => c,
        (c, Some(h)) => h.min(c),
    };
    Some(Duration::from_millis(ms.min(MAX_DEADLINE_MS)))
}

pub(crate) fn deadline_exceeded() -> Response {
    metrics::SERVE_DEADLINE_EXCEEDED.inc();
    Response::error(
        504,
        "deadline_exceeded",
        "request deadline expired before an answer was produced",
    )
}

pub(crate) fn draining() -> Response {
    let mut resp = Response::error(503, "draining", "server is shutting down");
    resp.retry_after = Some(1);
    resp
}

/// Records the end-to-end latency for a finished request. *Every*
/// terminal path goes through this — 504s, 429s, and draining rejections
/// included — so the histogram reflects the traffic the server actually
/// saw, not just its successes.
pub(crate) fn record_latency(started: Instant, response: Response) -> Response {
    metrics::SERVE_REQUEST_US.record(started.elapsed().as_micros() as u64);
    response
}

fn recommend_step(
    case: airchitect::model::CaseStudy,
    request: &Request,
    inner: &Inner,
    make_reply: &mut dyn FnMut() -> Reply,
) -> Step {
    metrics::SERVE_REQUESTS.inc();
    let started = Instant::now();
    let respond = |resp: Response| Step::Respond(record_latency(started, resp));
    let deadline =
        effective_deadline(inner.deadline_ms, request.deadline_ms).map(|budget| started + budget);
    // Admission-time checks: a draining server or an already-expired
    // budget (`X-Deadline-Ms: 0`) answers before any work is queued.
    if inner.shutdown.load(Ordering::Acquire) {
        return respond(draining());
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return respond(deadline_exceeded());
    }
    let parsed = match router::parse_recommend(case, &request.body) {
        Ok(p) => p,
        Err(resp) => return respond(resp),
    };

    // Shadow-oracle sampling, before the cache so hot queries are scored
    // too. The task snapshots the live model: concurrent reloads can't
    // change which generation this request is scored against.
    if let Some(shadow) = &inner.shadow {
        if let Some(model) = inner.hub.get(case) {
            shadow.maybe_sample(&parsed.cache_key, &parsed.query, model);
        }
    }

    // Cache lookup, generation-checked against the live model.
    let live_generation = inner.hub.generation();
    let hit = inner
        .cache
        .lock()
        .expect("cache poisoned")
        .get(&parsed.cache_key, live_generation);
    if let Some(cached) = hit {
        metrics::SERVE_CACHE_HITS.inc();
        let body = format!("{{\"cached\":true,{}", cached.body_tail);
        return respond(Response::json(200, body));
    }
    metrics::SERVE_CACHE_MISSES.inc();

    // Single-query bypass: with no batch window to join (empty queue), a
    // top-1 request is answered inline on the int8-quantized hot path —
    // no queue hop, no worker round-trip. Only model-source answers are
    // taken here; every other situation (missing model, unquantizable
    // model, open circuit, ranked query) falls through so the queue path
    // stays the single owner of fallback and circuit-open policy.
    if inner.bypass && parsed.topk == 0 && inner.queue.is_empty() {
        if let Some(model) = inner.hub.get(case) {
            if model.recommender.quantized().is_some() {
                let breaker = inner.breakers.infer(case);
                if matches!(breaker.try_acquire(), Admit::Yes) {
                    metrics::SERVE_BYPASS.inc();
                    // Canary slice: a deterministically sampled request is
                    // answered by the staged candidate *and* the incumbent,
                    // the answers compared, and the verdict tallied. The
                    // client gets the candidate's answer when it succeeded,
                    // the incumbent's otherwise — a bad canary can lose the
                    // vote but never fail a request.
                    if let Some(candidate) = inner.rollout.active() {
                        if inner.rollout.in_slice(&parsed.cache_key) {
                            if let Some(cand_model) = candidate.model(case) {
                                if cand_model.recommender.quantized().is_some() {
                                    let inc_start = Instant::now();
                                    let inc = guarded_fast(&model, &parsed.query);
                                    let inc_us = inc_start.elapsed().as_micros() as u64;
                                    let cand_start = Instant::now();
                                    let cand = guarded_fast(cand_model, &parsed.query);
                                    let cand_us = cand_start.elapsed().as_micros() as u64;
                                    let cand_failed = matches!(
                                        &cand,
                                        crate::batch::Outcome::Err { .. }
                                    );
                                    let agreed =
                                        !cand_failed && answers_agree(&inc, &cand);
                                    inner.rollout.record_sample(
                                        &candidate,
                                        agreed,
                                        cand_failed,
                                        cand_us,
                                        inc_us,
                                    );
                                    let inc_failed = matches!(
                                        &inc,
                                        crate::batch::Outcome::Err { status, .. } if *status >= 500
                                    );
                                    if inc_failed {
                                        metrics::SERVE_INFER_FAILURES.inc();
                                    }
                                    breaker.record(!inc_failed);
                                    // Never cached: the winning answer may
                                    // carry a generation that is not live.
                                    let served = if cand_failed { inc } else { cand };
                                    return respond(uncached_response(served));
                                }
                            }
                        }
                    }
                    // Same panic isolation and breaker accounting as the
                    // worker's answer_job: a poisoned model costs one 500.
                    let outcome = guarded_fast(&model, &parsed.query);
                    let failed = matches!(
                        &outcome,
                        crate::batch::Outcome::Err { status, .. } if *status >= 500
                    );
                    if failed {
                        metrics::SERVE_INFER_FAILURES.inc();
                    }
                    breaker.record(!failed);
                    return respond(outcome_response(outcome, parsed.cache_key, inner));
                }
            }
        }
    }

    // Admission control: reject-on-full keeps queue latency bounded.
    let job = Job {
        query: parsed.query,
        topk: parsed.topk,
        reply: make_reply(),
        deadline,
    };
    match inner.queue.push(job) {
        Ok(()) => Step::Queued {
            started,
            deadline,
            cache_key: parsed.cache_key,
        },
        Err(PushError::Full) => {
            let mut resp =
                Response::error(429, "queue_full", "request queue is full; retry shortly");
            resp.retry_after = Some(1);
            respond(resp)
        }
        Err(PushError::ShuttingDown) => respond(draining()),
    }
}

/// Frames an inference [`Outcome`](crate::batch::Outcome) as HTTP and
/// handles response caching — shared by the queue path and the
/// single-query bypass so both produce byte-identical responses.
pub(crate) fn outcome_response(
    outcome: crate::batch::Outcome,
    cache_key: Vec<u8>,
    inner: &Inner,
) -> Response {
    match outcome {
        crate::batch::Outcome::Ok {
            body_tail,
            generation,
            source,
        } => {
            let body = format!("{{\"cached\":false,{body_tail}");
            match source {
                // Only model answers are cached: a cache must never replay
                // a degraded-mode answer after the model recovers.
                Source::Model => {
                    inner.cache.lock().expect("cache poisoned").put(
                        cache_key,
                        CachedResponse {
                            body_tail,
                            generation,
                        },
                    );
                    Response::json(200, body)
                }
                Source::Search => {
                    let mut resp = Response::json(200, body);
                    resp.warning = Some(fallback::WARNING.to_string());
                    resp
                }
            }
        }
        crate::batch::Outcome::Err {
            status,
            code,
            message,
        } => {
            let mut resp = Response::error(status, code, &message);
            if code == "circuit_open" {
                resp.retry_after = Some(1);
            }
            resp
        }
    }
}

/// Panic-isolated [`execute_fast`](crate::batch::execute_fast): a poisoned
/// model costs one 500, never the connection (or shard) that hit it.
fn guarded_fast(
    model: &crate::reload::LoadedModel,
    query: &crate::batch::RecQuery,
) -> crate::batch::Outcome {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::batch::execute_fast(model, query)
    }))
    .unwrap_or_else(|_| crate::batch::Outcome::Err {
        status: 500,
        code: "inference_panic",
        message: "inference panicked; the request was isolated".into(),
    })
}

/// Whether two successful fast-path answers agree on everything but the
/// producing generation (the tail's first field, which legitimately
/// differs between incumbent and candidate).
fn answers_agree(a: &crate::batch::Outcome, b: &crate::batch::Outcome) -> bool {
    let tail = |o: &crate::batch::Outcome| match o {
        crate::batch::Outcome::Ok { body_tail, .. } => body_tail
            .find(',')
            .map(|i| body_tail[i..].to_string()),
        crate::batch::Outcome::Err { .. } => None,
    };
    match (tail(a), tail(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Frames an outcome as HTTP without touching the response cache (canary
/// comparisons: the served answer may come from a non-live generation).
fn uncached_response(outcome: crate::batch::Outcome) -> Response {
    match outcome {
        crate::batch::Outcome::Ok { body_tail, .. } => {
            Response::json(200, format!("{{\"cached\":false,{body_tail}"))
        }
        crate::batch::Outcome::Err {
            status,
            code,
            message,
        } => Response::error(status, code, &message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaper_releases_finished_handles_without_an_accept() {
        let set = ReapedSet::start(Duration::from_millis(10));
        for _ in 0..8 {
            set.push(std::thread::spawn(|| {}));
        }
        // The threads exit immediately; only the timer sweeps them.
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.len() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(set.len(), 0, "finished handles must be reaped on the timer");
        set.finish();
    }

    #[test]
    fn reaper_push_bound_sweeps_bursts_between_timer_ticks() {
        // A huge interval so only the in-push bound can sweep.
        let set = ReapedSet::start(Duration::from_secs(3600));
        for _ in 0..REAP_PUSH_BOUND + 8 {
            set.push(std::thread::spawn(|| {}));
        }
        assert!(
            set.len() < REAP_PUSH_BOUND,
            "push bound must sweep finished handles (len: {})",
            set.len()
        );
        // Don't wait an hour: drop the sweeper by hand.
        set.stop.store(true, Ordering::Release);
        let handles = std::mem::take(&mut *set.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }

    #[test]
    fn effective_deadline_prefers_the_tighter_budget() {
        assert_eq!(effective_deadline(0, None), None);
        assert_eq!(
            effective_deadline(0, Some(50)),
            Some(Duration::from_millis(50))
        );
        assert_eq!(
            effective_deadline(100, None),
            Some(Duration::from_millis(100))
        );
        assert_eq!(
            effective_deadline(100, Some(50)),
            Some(Duration::from_millis(50))
        );
        assert_eq!(
            effective_deadline(50, Some(100)),
            Some(Duration::from_millis(50))
        );
        assert_eq!(
            effective_deadline(0, Some(u64::MAX)),
            Some(Duration::from_millis(MAX_DEADLINE_MS))
        );
    }
}
