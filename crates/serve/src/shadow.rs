//! Shadow-oracle sampling: the serve-side half of the online-learning
//! loop.
//!
//! A deterministic hash over the request's canonical cache key admits a
//! configured fraction of recommendation requests into a bounded queue; a
//! low-priority pool of dedicated threads (never borrowed from the batch
//! workers) replays each sampled query against both the served model and
//! the exact DSE oracle, and appends a versioned record to the rotating
//! misprediction log.
//!
//! Two properties matter for correctness under hot-reload:
//!
//! * The sampled task carries the `Arc<LoadedModel>` snapshot that was
//!   live at *admission*. The oracle may run seconds later, after any
//!   number of reloads, but the record is scored against — and stamped
//!   with the generation of — exactly the model the request saw.
//! * Pushes never block the request path. A full queue drops the sample
//!   and bumps `serve.shadow.dropped`; the serving latency budget is
//!   untouched by oracle backpressure.

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use airchitect_dse::case1::Case1Problem;
use airchitect_dse::case3::Case3Problem;
use airchitect_online::drift::DriftMonitor;
use airchitect_online::log::MispredLog;
use airchitect_online::record::MispredRecord;
use airchitect_online::sampler::{self, spawn_pool, ShadowQueue};
use airchitect_telemetry::metrics;
use airchitect_telemetry::rotate::RotateConfig;

use crate::batch::RecQuery;
use crate::reload::{CaseProblem, LoadedModel};
use crate::{ServeConfig, ServeError};

/// Segment size of the misprediction log. Small enough that a long soak
/// rotates several times; large enough that rotation overhead is noise.
const SHADOW_LOG_MAX_BYTES: u64 = 8 * 1024 * 1024;

/// Observations kept by the rolling drift window.
const DRIFT_WINDOW: usize = 256;

/// One sampled request awaiting oracle scoring. The model snapshot is the
/// one that was live when the request was admitted.
pub(crate) struct ShadowTask {
    query: RecQuery,
    model: Arc<LoadedModel>,
}

/// Serve-side shadow machinery: sampler, queue, worker pool, log, and the
/// drift monitor feeding the `serve.shadow.*` gauges.
pub(crate) struct ShadowState {
    rate_ppm: u32,
    queue: Arc<ShadowQueue<ShadowTask>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    log: Arc<Mutex<Option<MispredLog>>>,
}

impl ShadowState {
    /// Build the shadow pipeline, or `None` when sampling is disabled.
    pub(crate) fn start(config: &ServeConfig) -> Result<Option<Arc<ShadowState>>, ServeError> {
        let rate_ppm = sampler::rate_to_ppm(config.shadow_rate);
        if rate_ppm == 0 {
            return Ok(None);
        }
        if !(0.0..=1.0).contains(&config.shadow_rate) {
            return Err(ServeError::Config(format!(
                "shadow-oracle rate must be in 0..=1, got {}",
                config.shadow_rate
            )));
        }
        let dir = config.shadow_dir.as_ref().ok_or_else(|| {
            ServeError::Config("shadow-oracle sampling needs a log directory".into())
        })?;
        // Pid-scoped prefix: cluster replicas share a directory without
        // ever sharing a file.
        let prefix = format!("shadow-{}", std::process::id());
        let log = MispredLog::create(
            dir,
            &prefix,
            RotateConfig {
                max_bytes: SHADOW_LOG_MAX_BYTES,
                max_age: None,
            },
        )
        .map_err(|e| ServeError::Io(format!("open misprediction log: {e}")))?;
        let log = Arc::new(Mutex::new(Some(log)));
        let monitor = Arc::new(DriftMonitor::new(DRIFT_WINDOW));
        let queue = Arc::new(ShadowQueue::new(config.shadow_queue_depth.max(1)));

        let worker_log = Arc::clone(&log);
        let workers = spawn_pool(
            Arc::clone(&queue),
            config.shadow_threads.max(1),
            move |task: ShadowTask| {
                // A panicking oracle (or model) costs one record, not a
                // worker thread — same isolation contract as inference.
                let record = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    score(&task)
                }))
                .ok()
                .flatten();
                let Some(record) = record else { return };
                metrics::SERVE_SHADOW_ORACLE_US.record(record.oracle_us);
                metrics::SERVE_SHADOW_RECORDS.inc();
                if record.is_disagreement() {
                    metrics::SERVE_SHADOW_DISAGREEMENTS.inc();
                }
                monitor.observe(!record.is_disagreement(), record.oracle_us);
                let mut slot = worker_log.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(log) = slot.as_mut() {
                    let _ = log.append(&record);
                }
            },
        );
        Ok(Some(Arc::new(ShadowState {
            rate_ppm,
            queue,
            workers: Mutex::new(workers),
            log,
        })))
    }

    /// Deterministically sample one admitted request. Never blocks: a full
    /// queue drops the sample and counts it.
    pub(crate) fn maybe_sample(
        &self,
        cache_key: &[u8],
        query: &RecQuery,
        model: Arc<LoadedModel>,
    ) {
        if !sampler::sampled(cache_key, self.rate_ppm) {
            return;
        }
        metrics::SERVE_SHADOW_SAMPLED.inc();
        let task = ShadowTask {
            query: query.clone(),
            model,
        };
        if self.queue.push(task).is_err() {
            metrics::SERVE_SHADOW_DROPPED.inc();
        }
    }

    /// Drain the queue, join the pool, and close the log (writing its end
    /// line). Called once during server shutdown, after the batch workers
    /// have exited.
    pub(crate) fn finish(&self) {
        self.queue.shutdown();
        let workers = std::mem::take(
            &mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for handle in workers {
            let _ = handle.join();
        }
        let log = self
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(log) = log {
            let _ = log.close();
        }
    }
}

/// Score one sampled query: the snapshot model's top-1 answer vs the exact
/// DSE oracle over the snapshot's own (space-matched) problem.
fn score(task: &ShadowTask) -> Option<MispredRecord> {
    let model = &task.model;
    let (features, oracle_label, oracle_us) = match (&task.query, &model.problem) {
        (
            RecQuery::Array {
                workload,
                mac_budget,
            },
            CaseProblem::Array(problem),
        ) => {
            let features = Case1Problem::features(workload, *mac_budget).to_vec();
            let t = Instant::now();
            let result = problem.search(workload, *mac_budget);
            (features, result.label, t.elapsed().as_micros() as u64)
        }
        (RecQuery::Buffers { query }, CaseProblem::Buffers(problem)) => {
            let features = query.features().to_vec();
            let t = Instant::now();
            let result = problem.search(query);
            (features, result.label, t.elapsed().as_micros() as u64)
        }
        (RecQuery::Schedule { workloads }, CaseProblem::Schedule(problem)) => {
            let features = Case3Problem::features(workloads).to_vec();
            let t = Instant::now();
            let result = problem.search(workloads);
            (features, result.label, t.elapsed().as_micros() as u64)
        }
        // Query/model case mismatch can't happen (the hub keyed the model
        // by the query's case), but don't let a logic slip panic a worker.
        _ => return None,
    };
    let model_label = model.recommender.model().predict_row(&features);
    Some(MispredRecord {
        case: model.case,
        features,
        model_label,
        oracle_label,
        model_version: model.generation,
        oracle_us,
    })
}
