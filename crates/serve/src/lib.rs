//! `airchitect-serve` — a std-only HTTP/1.1 inference server that turns the
//! constant-time [`Recommender`](airchitect::Recommender) into a long-lived
//! service (the "learned optimizer as a service" framing of AIRCHITECT v2
//! and ArchGym).
//!
//! The socket handling is deliberately boring; the subsystem is the serving
//! machinery around it:
//!
//! * **Admission control** ([`batch::Queue`]) — a bounded request queue.
//!   When it is full, recommendation requests are rejected immediately with
//!   `429 Too Many Requests` and a `Retry-After` header instead of piling
//!   latency onto every queued caller.
//! * **Micro-batching** ([`batch`]) — a fixed pool of worker threads drains
//!   the queue in batches, snapshots the current model once per batch, and
//!   answers every job in the batch from that snapshot.
//! * **Response caching** ([`cache`]) — an LRU keyed on the canonicalized
//!   query (exact integer parameters, not the JSON text), with hit/miss
//!   counters in the telemetry registry. Entries are stamped with the model
//!   generation that produced them, so a hot-reload implicitly invalidates
//!   the whole cache without racing in-flight insertions.
//! * **Hot reload** ([`reload::ModelHub`]) — `POST /v1/reload` re-reads the
//!   registered model files (checksum-verified by the `AIRM` codec) and
//!   atomically swaps an `Arc` per case study. In-flight batches finish on
//!   the model they snapshotted; no request ever mixes two models.
//! * **Evented c10k core** ([`listener`], `evented`, `reactor`) — on
//!   Linux the default listener is N event-loop shards, each with its own
//!   `SO_REUSEPORT` acceptor and epoll reactor driving nonblocking
//!   connection state machines; batch-worker replies re-arm their
//!   connection through a completion queue + eventfd wakeup. The legacy
//!   thread-per-connection listener stays behind `--threaded` (and is the
//!   only mode off-Linux). Both share one dispatch path, so admission
//!   control, deadlines, breakers, caching, bypass, and chaos semantics
//!   are identical.
//! * **Graceful shutdown** ([`listener`]) — `POST /v1/shutdown` stops the
//!   accept loop, lets the workers drain the queue, joins every connection
//!   thread (or shard), and returns from [`Server::run`] so the process
//!   can exit 0.
//! * **Cluster mode** ([`supervisor`], [`ring`], [`proxy`]) — `serve
//!   --cluster` supervises N single-process replicas as child processes
//!   (health probes, exponential-backoff restarts, restart-storm caps) and
//!   fronts them with a consistent-hashing router that fails over, hedges
//!   tail-latent requests, and aggregates `/healthz` and `/metrics` across
//!   the fleet.
//!
//! Routes:
//!
//! | Route                        | Method | Purpose                            |
//! |------------------------------|--------|------------------------------------|
//! | `/v1/recommend/array`        | POST   | CS1: array shape + dataflow        |
//! | `/v1/recommend/buffers`      | POST   | CS2: SRAM buffer split             |
//! | `/v1/recommend/schedule`     | POST   | CS3: multi-array schedule          |
//! | `/v1/reload`                 | POST   | atomic model hot-reload            |
//! | `/v1/shutdown`               | POST   | drain-then-exit                    |
//! | `/healthz`                   | GET    | liveness + loaded models           |
//! | `/metrics`                   | GET    | telemetry registry, text format    |
//!
//! All recommendation bodies are JSON; `topk` requests a ranked list. The
//! crate is zero-dependency (std plus the in-workspace crates) — JSON
//! parsing is borrowed from `airchitect-telemetry`'s hand-rolled parser.

#![warn(missing_docs)]

pub mod batch;
pub mod breaker;
pub mod cache;
pub mod canary;
pub mod client;
#[cfg(target_os = "linux")]
mod evented;
pub mod fallback;
pub mod http;
pub mod listener;
pub mod proxy;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod registry;
pub mod reload;
pub mod ring;
pub mod router;
mod shadow;
pub mod supervisor;

use std::path::PathBuf;

pub use listener::Server;
pub use proxy::Cluster;
pub use supervisor::ClusterConfig;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:8080`; port 0 picks an ephemeral
    /// port (read it back via [`Server::local_addr`]).
    pub addr: String,
    /// Trained `.airm` model files, at most one per case study. The paths
    /// are remembered for hot-reload.
    pub model_paths: Vec<PathBuf>,
    /// Inference worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with 429. Zero rejects
    /// every uncached request (useful for admission-control testing).
    pub queue_depth: usize,
    /// Maximum jobs drained into one micro-batch.
    pub batch_max: usize,
    /// LRU response-cache capacity in entries; zero disables caching.
    pub cache_capacity: usize,
    /// Idle keep-alive / read timeout per connection, seconds. Also bounds
    /// how long graceful shutdown waits for silent connections.
    pub read_timeout_secs: u64,
    /// Socket write timeout per connection, seconds; zero disables it. A
    /// reader that stops draining its socket cannot pin a connection
    /// thread forever.
    pub write_timeout_secs: u64,
    /// Default end-to-end request budget in milliseconds; zero disables
    /// server-side deadlines. Clients may tighten (never extend) it per
    /// request with an `X-Deadline-Ms` header; an expired budget answers
    /// `504` at whatever stage it is detected.
    pub deadline_ms: u64,
    /// Consecutive 5xx-class failures that open a circuit breaker (one per
    /// case study for inference, one for reload). Zero disables breakers.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting one half-open
    /// probe, milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Degraded-mode serving: when a case's circuit is open or its model
    /// failed to load at startup, answer from the exhaustive-search oracle
    /// (`"source":"search"` + `Warning` header) instead of a 5xx. Also
    /// makes startup tolerate per-model load failures.
    pub fallback_search: bool,
    /// Single-query bypass: when the queue is empty, answer top-1
    /// requests inline on the int8-quantized hot path instead of taking
    /// the micro-batch round-trip. Model-source answers only — missing
    /// models, open circuits, ranked (`topk`) queries, and models the
    /// quantizer rejected all take the queue path unchanged. Disable to
    /// force every request through the queue (admission-control tests).
    pub single_query_bypass: bool,
    /// Event-loop shards for the evented listener (each gets its own
    /// `SO_REUSEPORT` acceptor and epoll reactor); zero auto-selects from
    /// the CPU count. Ignored in threaded mode.
    pub event_loops: usize,
    /// Use the legacy thread-per-connection listener instead of the
    /// evented one. Forced on for non-Linux targets (the reactor is built
    /// on epoll). Defaults to the `AIRCHITECT_SERVE_THREADED` environment
    /// variable so one test binary can exercise both listeners.
    pub threaded: bool,
    /// Opt-in `TCP_NODELAY` on accepted sockets (both listener modes):
    /// trades Nagle batching for first-byte latency on small responses.
    /// Defaults to the `AIRCHITECT_SERVE_NODELAY` environment variable.
    pub nodelay: bool,
    /// Shadow-oracle sampling rate in `0.0..=1.0`; zero disables the
    /// online-learning loop. Sampled requests are re-scored against the
    /// exact DSE oracle in a background pool and logged to `shadow_dir`.
    pub shadow_rate: f64,
    /// Directory for the rotating JSONL misprediction log. Required when
    /// `shadow_rate > 0`. Cluster replicas may share it (files are
    /// pid-scoped).
    pub shadow_dir: Option<PathBuf>,
    /// Bounded shadow-queue depth; a full queue drops samples (counted in
    /// `serve.shadow.dropped`) rather than delaying requests.
    pub shadow_queue_depth: usize,
    /// Dedicated low-priority shadow worker threads (never borrowed from
    /// the batch-worker pool).
    pub shadow_threads: usize,
    /// Versioned model registry directory (`--model-dir`). When set and
    /// `model_paths` is empty, the server boots from the registry's
    /// `current.airm`; reloads stage the newest unpromoted version and
    /// failed canaries quarantine it.
    pub model_dir: Option<PathBuf>,
    /// Canary traffic split in `0.0..=1.0`; zero keeps the legacy
    /// immediate-swap reload. With a split, `/v1/reload` stages the
    /// candidate and this fraction of single-query traffic is answered by
    /// it (compared against the incumbent) until the gates decide.
    pub canary_split: f64,
    /// Compared samples required before the canary gates are judged.
    pub canary_min_samples: u64,
    /// Minimum candidate-vs-incumbent agreement rate for promotion.
    pub canary_min_agreement: f64,
    /// Maximum candidate p99 latency as a multiple of the incumbent's.
    pub canary_max_p99_ratio: f64,
    /// Rolling cluster reload: how long the router waits for one
    /// replica's canary verdict before declaring the rollout failed.
    pub rollout_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            model_paths: Vec::new(),
            workers: 2,
            queue_depth: 256,
            batch_max: 16,
            cache_capacity: 4096,
            read_timeout_secs: 5,
            write_timeout_secs: 5,
            deadline_ms: 0,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1000,
            fallback_search: false,
            single_query_bypass: true,
            event_loops: 0,
            threaded: std::env::var_os("AIRCHITECT_SERVE_THREADED").is_some_and(|v| v != "0"),
            nodelay: std::env::var_os("AIRCHITECT_SERVE_NODELAY").is_some_and(|v| v != "0"),
            shadow_rate: 0.0,
            shadow_dir: None,
            shadow_queue_depth: 64,
            shadow_threads: 1,
            model_dir: None,
            canary_split: 0.0,
            canary_min_samples: 50,
            canary_min_agreement: 0.9,
            canary_max_p99_ratio: 4.0,
            rollout_timeout_ms: 30_000,
        }
    }
}

/// Error produced when configuring, binding, or running a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Invalid configuration (no models, zero workers, ...).
    Config(String),
    /// A model file failed to load or validate.
    Model(String),
    /// Socket-level failure, stringified.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "server config: {msg}"),
            ServeError::Model(msg) => write!(f, "model: {msg}"),
            ServeError::Io(msg) => write!(f, "server i/o: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}
