//! LRU response cache keyed on canonicalized queries.
//!
//! The key is the *semantic* query — case-study tag, `topk`, and the exact
//! integer parameters — not the JSON text, so two bodies that differ only
//! in field order or float formatting share an entry. Every entry is
//! stamped with the generation of the model that produced it; a lookup
//! whose generation no longer matches the live model is treated as a miss,
//! which makes hot-reload invalidation race-free: a worker still finishing
//! an old-model batch can insert stale entries after the swap without any
//! client ever observing them.

use std::collections::HashMap;

/// A cached rendered response.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResponse {
    /// The rendered result JSON with the leading `{` stripped (the handler
    /// re-wraps it with a `"cached"` flag).
    pub body_tail: String,
    /// Generation of the model that computed it.
    pub generation: u64,
}

struct Node {
    key: Vec<u8>,
    value: CachedResponse,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity LRU map from canonical query bytes to rendered
/// responses. O(1) get/put via a `HashMap` into an intrusive doubly-linked
/// list over a slab of nodes.
pub struct LruCache {
    map: HashMap<Vec<u8>, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` entries (zero disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit. Entries
    /// whose generation differs from `live_generation` are evicted and
    /// reported as misses.
    pub fn get(&mut self, key: &[u8], live_generation: u64) -> Option<CachedResponse> {
        let idx = *self.map.get(key)?;
        if self.nodes[idx].value.generation != live_generation {
            self.remove_idx(idx);
            return None;
        }
        self.detach(idx);
        self.push_front(idx);
        Some(self.nodes[idx].value.clone())
    }

    /// Inserts or replaces `key`, evicting the least-recently-used entry
    /// when at capacity. A zero-capacity cache drops everything.
    pub fn put(&mut self, key: Vec<u8>, value: CachedResponse) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.remove_idx(lru);
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn remove_idx(&mut self, idx: usize) {
        self.detach(idx);
        let key = std::mem::take(&mut self.nodes[idx].key);
        self.nodes[idx].value.body_tail.clear();
        self.map.remove(&key);
        self.free.push(idx);
    }

    /// Drops every entry (hot-reload hygiene; correctness is already
    /// guaranteed by the generation check in [`LruCache::get`]).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(tail: &str, generation: u64) -> CachedResponse {
        CachedResponse {
            body_tail: tail.to_string(),
            generation,
        }
    }

    #[test]
    fn hit_miss_and_promotion() {
        let mut c = LruCache::new(2);
        c.put(b"a".to_vec(), resp("A", 1));
        c.put(b"b".to_vec(), resp("B", 1));
        // Touch `a` so `b` becomes the LRU victim.
        assert_eq!(c.get(b"a", 1).unwrap().body_tail, "A");
        c.put(b"c".to_vec(), resp("C", 1));
        assert_eq!(c.len(), 2);
        assert!(c.get(b"b", 1).is_none(), "b should have been evicted");
        assert!(c.get(b"a", 1).is_some());
        assert!(c.get(b"c", 1).is_some());
    }

    #[test]
    fn generation_mismatch_is_a_miss_and_evicts() {
        let mut c = LruCache::new(4);
        c.put(b"a".to_vec(), resp("A", 1));
        assert!(c.get(b"a", 2).is_none());
        assert_eq!(c.len(), 0);
        // A stale late insertion from an old-model batch is also invisible.
        c.put(b"a".to_vec(), resp("OLD", 1));
        assert!(c.get(b"a", 2).is_none());
    }

    #[test]
    fn replacement_updates_in_place() {
        let mut c = LruCache::new(2);
        c.put(b"a".to_vec(), resp("A1", 1));
        c.put(b"a".to_vec(), resp("A2", 1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(b"a", 1).unwrap().body_tail, "A2");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put(b"a".to_vec(), resp("A", 1));
        assert!(c.get(b"a", 1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn heavy_churn_reuses_slots() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.put(i.to_le_bytes().to_vec(), resp("x", 1));
        }
        assert_eq!(c.len(), 8);
        assert!(c.nodes.len() <= 9, "slab should not grow unboundedly");
        // The 8 most recent keys are present.
        for i in 992..1000u32 {
            assert!(c.get(&i.to_le_bytes(), 1).is_some());
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = LruCache::new(4);
        c.put(b"a".to_vec(), resp("A", 1));
        c.put(b"b".to_vec(), resp("B", 1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(b"a", 1).is_none());
        c.put(b"c".to_vec(), resp("C", 2));
        assert_eq!(c.get(b"c", 2).unwrap().body_tail, "C");
    }
}
