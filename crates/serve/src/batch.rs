//! Bounded admission queue and the micro-batching worker pool.
//!
//! Connection threads validate and enqueue [`Job`]s; a fixed pool of
//! workers drains the queue in batches of up to `batch_max`, snapshots the
//! current model **once per batch per case study**, and answers every job
//! in the batch from that snapshot. The snapshot discipline is what makes
//! hot-reload safe: a batch started before a swap finishes entirely on the
//! old model, so no response ever mixes two models.
//!
//! Admission control is reject-on-full rather than block-on-full: when the
//! queue holds `depth` jobs the push fails immediately and the connection
//! answers `429` with `Retry-After`, keeping queue latency bounded for the
//! requests that *are* admitted.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use airchitect_telemetry::metrics::SERVE_WAKEUPS;

use airchitect::model::CaseStudy;
use airchitect::recommend::RecommendError;
use airchitect_dse::case2::Case2Query;
use airchitect_telemetry::json::write_f64;
use airchitect_telemetry::metrics;
use airchitect_workload::GemmWorkload;

use crate::breaker::{Admit, Breakers};
use crate::fallback::Oracle;
use crate::reload::{case_name, CaseProblem, LoadedModel, ModelHub};

/// A decoded, validated recommendation query.
#[derive(Debug, Clone)]
pub enum RecQuery {
    /// CS1: array shape + dataflow under a MAC budget.
    Array {
        /// The GEMM workload.
        workload: GemmWorkload,
        /// Hard MAC-unit budget.
        mac_budget: u64,
    },
    /// CS2: SRAM buffer split.
    Buffers {
        /// The full CS2 query (workload, array, dataflow, bandwidth, limit).
        query: Case2Query,
    },
    /// CS3: schedule for four concurrent workloads.
    Schedule {
        /// Exactly four workloads (validated by the router).
        workloads: Vec<GemmWorkload>,
    },
}

impl RecQuery {
    /// The case study this query targets.
    pub fn case(&self) -> CaseStudy {
        match self {
            RecQuery::Array { .. } => CaseStudy::ArrayDataflow,
            RecQuery::Buffers { .. } => CaseStudy::BufferSizing,
            RecQuery::Schedule { .. } => CaseStudy::MultiArrayScheduling,
        }
    }
}

/// Who produced a successful answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The trained recommendation model (cacheable).
    Model,
    /// The exhaustive-search fallback oracle (degraded mode; never cached,
    /// stamped with a `Warning` header).
    Search,
}

/// A worker's answer, ready for HTTP framing by the connection thread.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Success: the rendered response JSON minus its leading `{` (the
    /// connection thread prepends `{"cached":...,`), plus the generation of
    /// the model that produced it (for cache stamping).
    Ok {
        /// Rendered JSON tail.
        body_tail: String,
        /// Producing model's generation.
        generation: u64,
        /// Model or degraded-mode search.
        source: Source,
    },
    /// Failure mapped to an HTTP status. Never a 5xx for domain errors —
    /// infeasible budgets are 422, missing models 503.
    Err {
        /// HTTP status code.
        status: u16,
        /// Stable machine-readable code.
        code: &'static str,
        /// Human-readable message.
        message: String,
    },
}

/// How a worker delivers its [`Outcome`] back to whoever queued the job.
///
/// The threaded listener blocks a connection thread on an mpsc receiver;
/// the evented listener cannot block anything, so its replies land on the
/// owning shard's [`CompletionQueue`] and an eventfd wake re-arms the
/// connection inside the loop.
#[derive(Debug)]
pub enum Reply {
    /// Blocking delivery: the connection thread waits on the paired
    /// receiver (threaded listener).
    Channel(mpsc::Sender<Outcome>),
    /// Non-blocking delivery: push onto the shard's completion queue and
    /// wake its event loop (evented listener).
    Completion {
        /// The owning shard's completion queue.
        queue: Arc<CompletionQueue>,
        /// Connection token (slot index + generation) on that shard.
        conn: u64,
        /// Per-connection request sequence number, so a late reply for an
        /// already-504'd request is discarded instead of misdelivered.
        req: u64,
    },
}

impl Reply {
    /// Delivers `outcome`. A hung-up receiver (client gone) is dropped
    /// silently in both modes.
    pub fn send(&self, outcome: Outcome) {
        match self {
            Reply::Channel(tx) => {
                let _ = tx.send(outcome);
            }
            Reply::Completion { queue, conn, req } => queue.push(*conn, *req, outcome),
        }
    }
}

/// A completion delivered to an evented shard: `(connection token,
/// request sequence, outcome)`.
pub type Completion = (u64, u64, Outcome);

/// Mailbox between batch workers and one evented shard. Workers push
/// finished outcomes; the shard drains after an eventfd wake. The wake is
/// only issued on the empty→non-empty transition, so a burst of
/// completions costs one syscall, not one per job.
#[derive(Debug)]
pub struct CompletionQueue {
    entries: Mutex<Vec<Completion>>,
    #[cfg(target_os = "linux")]
    waker: crate::reactor::Waker,
}

impl CompletionQueue {
    /// Creates the queue and its waker eventfd.
    ///
    /// # Errors
    ///
    /// Fails only if the eventfd cannot be created (fd exhaustion).
    pub fn new() -> std::io::Result<Self> {
        Ok(Self {
            entries: Mutex::new(Vec::new()),
            #[cfg(target_os = "linux")]
            waker: crate::reactor::Waker::new()?,
        })
    }

    /// Pushes one completion and wakes the owning loop if it was idle.
    pub fn push(&self, conn: u64, req: u64, outcome: Outcome) {
        let was_empty = {
            let mut entries = self.entries.lock().expect("completions poisoned");
            let was_empty = entries.is_empty();
            entries.push((conn, req, outcome));
            was_empty
        };
        if was_empty {
            self.wake();
        }
    }

    /// Drains every pending completion into `out` (which is cleared
    /// first).
    pub fn drain_into(&self, out: &mut Vec<Completion>) {
        out.clear();
        let mut entries = self.entries.lock().expect("completions poisoned");
        std::mem::swap(out, &mut entries);
    }

    /// Number of undelivered completions (the shard's ready-queue depth
    /// gauge).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("completions poisoned").len()
    }

    /// Whether no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wakes the owning loop without queueing anything (shutdown nudges).
    pub fn wake(&self) {
        SERVE_WAKEUPS.inc();
        #[cfg(target_os = "linux")]
        self.waker.wake();
    }

    /// The waker fd to register for read-readiness in the shard's poller.
    #[cfg(target_os = "linux")]
    pub fn waker_fd(&self) -> std::os::fd::RawFd {
        self.waker.as_raw_fd()
    }

    /// Consumes pending wakes after the poller reported readiness.
    #[cfg(target_os = "linux")]
    pub fn drain_wakes(&self) {
        self.waker.drain();
    }
}

/// One queued request.
#[derive(Debug)]
pub struct Job {
    /// The validated query.
    pub query: RecQuery,
    /// Ranked-list size; `0` means top-1.
    pub topk: usize,
    /// Where the worker's answer goes.
    pub reply: Reply,
    /// End-to-end deadline; a job past it is answered 504, never executed.
    pub deadline: Option<Instant>,
}

impl Job {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; client should retry later (429).
    Full,
    /// The server is draining; no new work is admitted (503).
    ShuttingDown,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The bounded MPMC job queue (mutex + condvar; std has no native MPMC
/// channel with try-push semantics).
pub struct Queue {
    state: Mutex<State>,
    ready: Condvar,
    depth: usize,
}

impl Queue {
    /// Creates a queue admitting at most `depth` waiting jobs.
    pub fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Tries to admit a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::ShuttingDown`] once
    /// [`Queue::shutdown`] has been called.
    pub fn push(&self, job: Job) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.shutdown {
            return Err(PushError::ShuttingDown);
        }
        if state.jobs.len() >= self.depth {
            metrics::SERVE_REJECTED.inc();
            return Err(PushError::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then drains up to `max` jobs.
    /// Returns an empty batch only when the queue is shut down *and*
    /// drained — the worker-exit signal.
    pub fn pop_batch(&self, max: usize) -> Vec<Job> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if !state.jobs.is_empty() {
                let n = state.jobs.len().min(max.max(1));
                return state.jobs.drain(..n).collect();
            }
            if state.shutdown {
                return Vec::new();
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Number of jobs currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops admission and wakes every worker; already-queued jobs are
    /// still drained before the workers exit.
    pub fn shutdown(&self) {
        self.state.lock().expect("queue poisoned").shutdown = true;
        self.ready.notify_all();
    }
}

/// Spawns `workers` threads draining `queue` in batches of `batch_max`.
/// The threads exit (joinable) after [`Queue::shutdown`] once the queue is
/// empty.
pub fn spawn_workers(
    workers: usize,
    batch_max: usize,
    queue: Arc<Queue>,
    hub: Arc<ModelHub>,
    breakers: Arc<Breakers>,
    fallback: Option<Arc<Oracle>>,
) -> Vec<JoinHandle<()>> {
    (0..workers.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let hub = Arc::clone(&hub);
            let breakers = Arc::clone(&breakers);
            let fallback = fallback.clone();
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&queue, &hub, batch_max, &breakers, fallback.as_deref()))
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(
    queue: &Queue,
    hub: &ModelHub,
    batch_max: usize,
    breakers: &Breakers,
    fallback: Option<&Oracle>,
) {
    loop {
        let batch = queue.pop_batch(batch_max);
        if batch.is_empty() {
            return;
        }
        metrics::SERVE_BATCHES.inc();
        metrics::SERVE_BATCHED_JOBS.add(batch.len() as u64);
        metrics::SERVE_BATCH_JOBS.record(batch.len() as u64);
        // One snapshot per case study per batch: every job in this batch
        // for a given case sees the same model, even mid-reload.
        let mut snapshots: [Option<Option<Arc<LoadedModel>>>; 3] = [None, None, None];
        for job in batch {
            let slot = match job.query.case() {
                CaseStudy::ArrayDataflow => 0,
                CaseStudy::BufferSizing => 1,
                CaseStudy::MultiArrayScheduling => 2,
            };
            let snap = snapshots[slot]
                .get_or_insert_with(|| hub.get(job.query.case()))
                .clone();
            let outcome = answer_job(&job, snap.as_deref(), breakers, fallback);
            // A dead receiver just means the client hung up; drop silently.
            job.reply.send(outcome);
        }
    }
}

/// Answers one job: deadline check, breaker admission, panic-isolated
/// inference, and the degraded-mode fallback when the model is missing or
/// its circuit is open.
fn answer_job(
    job: &Job,
    model: Option<&LoadedModel>,
    breakers: &Breakers,
    fallback: Option<&Oracle>,
) -> Outcome {
    // A job that already blew its budget waiting in the queue is dropped
    // here: the client has (or is about to) time out, so doing the work
    // would only add load exactly when the server is already behind.
    if job.expired() {
        metrics::SERVE_DEADLINE_EXCEEDED.inc();
        return Outcome::Err {
            status: 504,
            code: "deadline_exceeded",
            message: "request deadline expired before execution".into(),
        };
    }
    let Some(model) = model else {
        return fallback_or(fallback, job, || Outcome::Err {
            status: 503,
            code: "model_not_loaded",
            message: format!(
                "no model loaded for case study `{}`",
                case_name(job.query.case())
            ),
        });
    };
    let breaker = breakers.infer(job.query.case());
    match breaker.try_acquire() {
        Admit::No => fallback_or(fallback, job, || Outcome::Err {
            status: 503,
            code: "circuit_open",
            message: format!(
                "inference circuit for `{}` is open; retry after cooldown",
                case_name(job.query.case())
            ),
        }),
        Admit::Yes => {
            // Panic isolation: a poisoned model or injected panic costs one
            // 500, never a dead worker thread.
            let outcome = catch_unwind(AssertUnwindSafe(|| run_inference(model, job)))
                .unwrap_or_else(|_| Outcome::Err {
                    status: 500,
                    code: "inference_panic",
                    message: "inference panicked; the job was isolated".into(),
                });
            // Only 5xx-class outcomes count against the breaker: a 422 for
            // an infeasible budget is the query's fault, not the model's.
            let failed = matches!(&outcome, Outcome::Err { status, .. } if *status >= 500);
            if failed {
                metrics::SERVE_INFER_FAILURES.inc();
            }
            breaker.record(!failed);
            outcome
        }
    }
}

fn run_inference(model: &LoadedModel, job: &Job) -> Outcome {
    airchitect_chaos::fail_point!("serve.batch.dispatch");
    airchitect_chaos::fail_point!("serve.infer", |e: std::io::Error| Outcome::Err {
        status: 500,
        code: "inference_failed",
        message: e.to_string(),
    });
    execute(model, &job.query, job.topk)
}

fn fallback_or(fallback: Option<&Oracle>, job: &Job, otherwise: impl FnOnce() -> Outcome) -> Outcome {
    match fallback {
        Some(oracle) => {
            metrics::SERVE_FALLBACKS.inc();
            oracle.answer(&job.query, job.topk)
        }
        None => otherwise(),
    }
}

fn domain_error(err: &RecommendError) -> Outcome {
    let (status, code) = match err {
        RecommendError::NoFeasibleConfig { .. } => (422, "infeasible"),
        RecommendError::LabelOutOfSpace { .. } => (422, "label_out_of_space"),
        RecommendError::WrongCaseStudy { .. } => (503, "wrong_model"),
        RecommendError::Untrained => (503, "untrained_model"),
    };
    Outcome::Err {
        status,
        code,
        message: err.to_string(),
    }
}

/// Runs one query against one model snapshot and renders the result.
pub fn execute(model: &LoadedModel, query: &RecQuery, topk: usize) -> Outcome {
    let mut tail = String::with_capacity(128);
    tail.push_str("\"generation\":");
    tail.push_str(&model.generation.to_string());
    tail.push_str(",\"case\":\"");
    tail.push_str(case_name(model.case));
    tail.push_str("\",\"source\":\"model\"");

    let rec = &model.recommender;
    let rendered = match (&model.problem, query) {
        (CaseProblem::Array(problem), RecQuery::Array { workload, mac_budget }) => {
            if topk == 0 {
                rec.recommend_array(problem, workload, *mac_budget).map(
                    |(array, dataflow)| {
                        tail.push_str(",\"result\":");
                        render_array(&mut tail, array.rows(), array.cols(), dataflow, None);
                    },
                )
            } else {
                rec.recommend_array_topk(problem, workload, *mac_budget, topk)
                    .map(|ranked| {
                        tail.push_str(",\"results\":[");
                        for (i, (array, dataflow, score)) in ranked.iter().enumerate() {
                            if i > 0 {
                                tail.push(',');
                            }
                            render_array(
                                &mut tail,
                                array.rows(),
                                array.cols(),
                                *dataflow,
                                Some(*score),
                            );
                        }
                        tail.push(']');
                    })
            }
        }
        (CaseProblem::Buffers(problem), RecQuery::Buffers { query }) => {
            if topk == 0 {
                rec.recommend_buffers(problem, query).map(|(i, f, o)| {
                    tail.push_str(",\"result\":");
                    render_buffers(&mut tail, i, f, o, None);
                })
            } else {
                rec.recommend_buffers_topk(problem, query, topk).map(|ranked| {
                    tail.push_str(",\"results\":[");
                    for (n, (i, f, o, score)) in ranked.iter().enumerate() {
                        if n > 0 {
                            tail.push(',');
                        }
                        render_buffers(&mut tail, *i, *f, *o, Some(*score));
                    }
                    tail.push(']');
                })
            }
        }
        (CaseProblem::Schedule(problem), RecQuery::Schedule { workloads }) => {
            if topk == 0 {
                rec.recommend_schedule(problem, workloads).map(|schedule| {
                    tail.push_str(",\"result\":");
                    render_schedule(&mut tail, &schedule, None);
                })
            } else {
                rec.recommend_schedule_topk(problem, workloads, topk)
                    .map(|ranked| {
                        tail.push_str(",\"results\":[");
                        for (i, (schedule, score)) in ranked.iter().enumerate() {
                            if i > 0 {
                                tail.push(',');
                            }
                            render_schedule(&mut tail, schedule, Some(*score));
                        }
                        tail.push(']');
                    })
            }
        }
        // Unreachable by construction (the hub slot and the query share the
        // case study), but a wrong answer must never escape as a 5xx.
        _ => {
            return Outcome::Err {
                status: 503,
                code: "model_mismatch",
                message: "loaded model does not match the query's case study".into(),
            }
        }
    };

    match rendered {
        Ok(()) => {
            tail.push_str("}\n");
            Outcome::Ok {
                body_tail: tail,
                generation: model.generation,
                source: Source::Model,
            }
        }
        Err(err) => domain_error(&err),
    }
}

/// Runs one top-1 query inline on the int8-quantized hot path and renders
/// exactly the body [`execute`] produces for `topk == 0`. This is the
/// listener's single-query bypass: no queue hop, no micro-batch, no
/// worker thread — the connection thread answers directly.
///
/// The `serve.infer` failpoint fires here as on the batched path, so
/// injected inference faults (and the breaker accounting the caller does
/// on them) behave identically in both modes.
pub fn execute_fast(model: &LoadedModel, query: &RecQuery) -> Outcome {
    airchitect_chaos::fail_point!("serve.infer", |e: std::io::Error| Outcome::Err {
        status: 500,
        code: "inference_failed",
        message: e.to_string(),
    });
    let mut tail = String::with_capacity(128);
    tail.push_str("\"generation\":");
    tail.push_str(&model.generation.to_string());
    tail.push_str(",\"case\":\"");
    tail.push_str(case_name(model.case));
    tail.push_str("\",\"source\":\"model\"");

    let rec = &model.recommender;
    let rendered = match (&model.problem, query) {
        (CaseProblem::Array(problem), RecQuery::Array { workload, mac_budget }) => rec
            .recommend_array_fast(problem, workload, *mac_budget)
            .map(|(array, dataflow)| {
                tail.push_str(",\"result\":");
                render_array(&mut tail, array.rows(), array.cols(), dataflow, None);
            }),
        (CaseProblem::Buffers(problem), RecQuery::Buffers { query }) => {
            rec.recommend_buffers_fast(problem, query).map(|(i, f, o)| {
                tail.push_str(",\"result\":");
                render_buffers(&mut tail, i, f, o, None);
            })
        }
        (CaseProblem::Schedule(problem), RecQuery::Schedule { workloads }) => {
            rec.recommend_schedule_fast(problem, workloads).map(|schedule| {
                tail.push_str(",\"result\":");
                render_schedule(&mut tail, &schedule, None);
            })
        }
        _ => {
            return Outcome::Err {
                status: 503,
                code: "model_mismatch",
                message: "loaded model does not match the query's case study".into(),
            }
        }
    };

    match rendered {
        Ok(()) => {
            tail.push_str("}\n");
            Outcome::Ok {
                body_tail: tail,
                generation: model.generation,
                source: Source::Model,
            }
        }
        Err(err) => domain_error(&err),
    }
}

fn render_score(out: &mut String, score: Option<f32>) {
    if let Some(s) = score {
        out.push_str(",\"score\":");
        write_f64(out, f64::from(s));
    }
}

pub(crate) fn render_array(
    out: &mut String,
    rows: u64,
    cols: u64,
    dataflow: airchitect_sim::Dataflow,
    score: Option<f32>,
) {
    out.push_str("{\"rows\":");
    out.push_str(&rows.to_string());
    out.push_str(",\"cols\":");
    out.push_str(&cols.to_string());
    out.push_str(",\"macs\":");
    out.push_str(&(rows * cols).to_string());
    out.push_str(",\"dataflow\":\"");
    out.push_str(&dataflow.to_string());
    out.push('"');
    render_score(out, score);
    out.push('}');
}

pub(crate) fn render_buffers(out: &mut String, ifmap: u64, filter: u64, ofmap: u64, score: Option<f32>) {
    out.push_str("{\"ifmap_kb\":");
    out.push_str(&ifmap.to_string());
    out.push_str(",\"filter_kb\":");
    out.push_str(&filter.to_string());
    out.push_str(",\"ofmap_kb\":");
    out.push_str(&ofmap.to_string());
    out.push_str(",\"total_kb\":");
    out.push_str(&(ifmap + filter + ofmap).to_string());
    render_score(out, score);
    out.push('}');
}

pub(crate) fn render_schedule(
    out: &mut String,
    schedule: &airchitect_sim::multi::Schedule,
    score: Option<f32>,
) {
    out.push_str("{\"assignments\":[");
    for (array, assignment) in schedule.assignments.iter().enumerate() {
        if array > 0 {
            out.push(',');
        }
        out.push_str("{\"array\":");
        out.push_str(&array.to_string());
        out.push_str(",\"workload\":");
        out.push_str(&assignment.workload.to_string());
        out.push_str(",\"dataflow\":\"");
        out.push_str(&assignment.dataflow.to_string());
        out.push_str("\"}");
    }
    out.push(']');
    render_score(out, score);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(tag: u64) -> (Job, mpsc::Receiver<Outcome>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                query: RecQuery::Array {
                    workload: GemmWorkload::new(tag + 1, 64, 64).unwrap(),
                    mac_budget: 1024,
                },
                topk: 0,
                reply: Reply::Channel(tx),
                deadline: None,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let q = Queue::new(2);
        let (j1, _r1) = dummy_job(1);
        let (j2, _r2) = dummy_job(2);
        let (j3, _r3) = dummy_job(3);
        q.push(j1).unwrap();
        q.push(j2).unwrap();
        assert_eq!(q.push(j3).unwrap_err(), PushError::Full);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_depth_rejects_everything() {
        let q = Queue::new(0);
        let (j, _r) = dummy_job(1);
        assert_eq!(q.push(j).unwrap_err(), PushError::Full);
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains_old() {
        let q = Queue::new(8);
        let (j1, _r1) = dummy_job(1);
        q.push(j1).unwrap();
        q.shutdown();
        let (j2, _r2) = dummy_job(2);
        assert_eq!(q.push(j2).unwrap_err(), PushError::ShuttingDown);
        assert_eq!(q.pop_batch(16).len(), 1, "queued job survives shutdown");
        assert!(q.pop_batch(16).is_empty(), "then the exit signal");
    }

    #[test]
    fn pop_batch_respects_batch_max() {
        let q = Queue::new(16);
        let mut receivers = Vec::new();
        for i in 0..10 {
            let (j, r) = dummy_job(i);
            q.push(j).unwrap();
            receivers.push(r);
        }
        assert_eq!(q.pop_batch(4).len(), 4);
        assert_eq!(q.pop_batch(4).len(), 4);
        assert_eq!(q.pop_batch(4).len(), 2);
    }

    #[test]
    fn completion_queue_drains_in_push_order() {
        let q = CompletionQueue::new().unwrap();
        let outcome = || Outcome::Err {
            status: 504,
            code: "deadline_exceeded",
            message: String::new(),
        };
        q.push(1, 10, outcome());
        q.push(2, 20, outcome());
        assert_eq!(q.len(), 2);
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].0, out[0].1), (1, 10));
        assert_eq!((out[1].0, out[1].1), (2, 20));
        assert!(q.is_empty());
    }

    #[test]
    fn blocked_pop_wakes_on_shutdown() {
        let q = Arc::new(Queue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        assert!(h.join().unwrap().is_empty());
    }
}
