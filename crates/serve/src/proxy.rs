//! The cluster router: accepts client connections, consistent-hashes
//! recommendation requests across healthy replicas, and absorbs replica
//! failure so clients never see it.
//!
//! Per request the router walks the ring's failover order:
//!
//! 1. **Selection** — the canonical cache key from
//!    [`router::parse_recommend`] is hashed onto the [`Ring`]; malformed
//!    bodies are answered `400` locally and never consume fleet capacity.
//! 2. **Admission** — a replica over its in-flight cap or with an open
//!    outbound breaker is skipped (counted as a failover).
//! 3. **Hedging** — on the primary attempt, if no response arrives within
//!    the hedge delay (fixed `--hedge-ms`, or derived from the rolling
//!    p99 backend latency), a duplicate is fired at the next replica and
//!    the first answer wins. Recommends are idempotent, so a duplicated
//!    request is wasted work at worst.
//! 4. **Failover** — a transport error or 5xx moves to the next distinct
//!    replica; a delivered non-5xx answer is returned as-is with an
//!    `X-Replica` header naming the replica that produced it.
//!
//! `/healthz` and `/metrics` are answered by the router itself with
//! fleet-level aggregation; `/v1/shutdown` drains the router, then the
//! supervisor drains the children.
//!
//! `/v1/reload` depends on the deployment: without a registry it
//! broadcasts to every live replica (legacy fan-out); with `--model-dir`
//! it runs a **rolling rollout** — one replica at a time is told to
//! canary the registry's newest candidate version, the router polls that
//! replica's `/healthz` until the canary verdict lands, and only when
//! *every* replica has promoted does the router promote the version in
//! the registry (rewriting the shared `current.airm` that replicas boot
//! from). Any failure — a stage rejection, a canary rollback, a verdict
//! timeout, a replica dying mid-evaluation — quarantines the version and
//! rolls the whole fleet back onto the incumbent, so the fleet never
//! settles split across two versions.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use airchitect::model::CaseStudy;
use airchitect_telemetry::json::{self, Value};
use airchitect_telemetry::metrics;

use crate::breaker::Admit;
use crate::client::RetryClient;
use crate::http::{self, read_request, write_response, ReadError, Request, Response};
use crate::listener::accept_with_retry;
use crate::registry::{Registry, RegistryError, DEFAULT_RETAIN};
use crate::router::{self, Route};
use crate::supervisor::{fleet_status, ClusterConfig, Fleet, ReplicaSlot, Supervisor};
use crate::{ServeConfig, ServeError};

/// Hard cap on a proxied response (head + body) the router will buffer.
const MAX_PROXIED_BYTES: usize = http::MAX_BODY_BYTES + 64 * 1024;

/// Latency samples kept for the rolling p99.
const LATENCY_WINDOW: usize = 512;
/// Samples required before auto-hedging switches on.
const LATENCY_WARMUP: usize = 64;

// ---------------------------------------------------------------------
// Backend response parsing (resumable, for hedging)
// ---------------------------------------------------------------------

/// A backend replica's parsed response, ready for passthrough.
#[derive(Debug, Clone)]
struct RawResponse {
    status: u16,
    content_type: String,
    retry_after: Option<u64>,
    warning: Option<String>,
    body: String,
}

/// One step of a bounded-wait read: either a complete response or "still
/// pending, buffer retained" (the hedging trigger).
enum ReadStep {
    Ready(RawResponse),
    Pending,
}

/// A router→replica connection with a resumable response parser: a read
/// that times out keeps its partial bytes, so the caller can fire a hedge
/// and keep waiting on the same connection from another thread.
struct BackendConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BackendConn {
    fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<()> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: airchitect-router\r\nConnection: keep-alive\r\nContent-Length: {}\r\n",
            body.len()
        );
        if let Some(ms) = deadline_ms {
            head.push_str(&format!("X-Deadline-Ms: {ms}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()
    }

    /// Reads toward one complete response for up to `wait`. `Pending`
    /// keeps the partial buffer; call again (possibly from another
    /// thread) to continue the same response.
    fn read_step(&mut self, wait: Duration) -> std::io::Result<ReadStep> {
        let deadline = Instant::now() + wait;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(resp) = try_parse_response(&mut self.buf)? {
                return Ok(ReadStep::Ready(resp));
            }
            if self.buf.len() > MAX_PROXIED_BYTES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "replica response too large",
                ));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(ReadStep::Pending);
            }
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "replica closed mid-response",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(ReadStep::Pending)
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Tries to parse one complete response from `buf`, draining the
/// consumed bytes on success (keep-alive reuse sees a clean buffer).
fn try_parse_response(buf: &mut Vec<u8>) -> std::io::Result<Option<RawResponse>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad replica status line"))?;
    let mut content_length: Option<usize> = None;
    let mut content_type = String::from("application/json");
    let mut retry_after = None;
    let mut warning = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse().map_err(|_| bad("bad Content-Length"))?);
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = value.to_string();
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.parse().ok();
        } else if name.eq_ignore_ascii_case("warning") {
            warning = Some(value.to_string());
        }
    }
    let content_length = content_length.ok_or_else(|| bad("replica sent no Content-Length"))?;
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = String::from_utf8(buf[head_end + 4..total].to_vec())
        .map_err(|_| bad("non-UTF-8 replica body"))?;
    buf.drain(..total);
    Ok(Some(RawResponse {
        status,
        content_type,
        retry_after,
        warning,
        body,
    }))
}

// ---------------------------------------------------------------------
// Rolling latency estimate for the hedge delay
// ---------------------------------------------------------------------

struct LatencyState {
    samples: Vec<u64>,
    next: usize,
    count: u64,
    cached_p99_us: u64,
}

/// Rolling window of backend latencies; p99 is recomputed lazily (every
/// [`LATENCY_WARMUP`] inserts) so the hot path is one lock + one store.
struct LatencyEstimator {
    state: Mutex<LatencyState>,
}

impl LatencyEstimator {
    fn new() -> Self {
        Self {
            state: Mutex::new(LatencyState {
                samples: Vec::with_capacity(LATENCY_WINDOW),
                next: 0,
                count: 0,
                cached_p99_us: 0,
            }),
        }
    }

    fn record(&self, us: u64) {
        let mut s = self.state.lock().expect("latency lock poisoned");
        if s.samples.len() < LATENCY_WINDOW {
            s.samples.push(us);
        } else {
            let at = s.next;
            s.samples[at] = us;
        }
        s.next = (s.next + 1) % LATENCY_WINDOW;
        s.count += 1;
        if s.count.is_multiple_of(LATENCY_WARMUP as u64) {
            let mut sorted = s.samples.clone();
            sorted.sort_unstable();
            let idx = (sorted.len().saturating_sub(1)) * 99 / 100;
            s.cached_p99_us = sorted[idx];
        }
    }

    /// The rolling p99 in microseconds, once warmed up.
    fn p99_us(&self) -> Option<u64> {
        let s = self.state.lock().expect("latency lock poisoned");
        (s.count >= LATENCY_WARMUP as u64).then_some(s.cached_p99_us)
    }
}

/// The hedge delay: fixed when configured, otherwise the rolling p99
/// clamped to [1ms, 250ms] (no hedging until the estimator warms up, so
/// a cold router never duplicates blindly).
fn hedge_delay(cfg: &ClusterConfig, latency: &LatencyEstimator) -> Option<Duration> {
    if cfg.hedge_ms > 0 {
        return Some(Duration::from_millis(cfg.hedge_ms));
    }
    latency
        .p99_us()
        .map(|p99| Duration::from_micros(p99.clamp(1_000, 250_000)))
}

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

struct ProxyInner {
    fleet: Arc<Fleet>,
    cfg: ClusterConfig,
    latency: LatencyEstimator,
    shutdown: AtomicBool,
    /// The shared model registry (`--model-dir` deployments only).
    registry: Option<Mutex<Registry>>,
    /// Serializes rollouts: a second `/v1/reload` while one is in flight
    /// answers `409` instead of interleaving canaries.
    rollout_lock: Mutex<()>,
    /// The last version a rolling rollout promoted — the fleet-wide
    /// `/v1/rollback` target.
    last_promoted: Mutex<Option<u64>>,
}

/// The bound cluster router. [`Router::run`] owns the accept loop; it
/// returns after `POST /v1/shutdown`.
pub struct Router {
    listener: TcpListener,
    addr: SocketAddr,
    inner: Arc<ProxyInner>,
}

impl Router {
    /// Binds the router socket in front of `fleet`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind fails.
    pub fn bind(cfg: &ClusterConfig, fleet: Arc<Fleet>) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let registry = match &cfg.model_dir {
            Some(dir) => Some(Mutex::new(
                Registry::open(dir, DEFAULT_RETAIN)
                    .map_err(|e| ServeError::Config(format!("--model-dir: {e}")))?,
            )),
            None => None,
        };
        Ok(Self {
            listener,
            addr,
            inner: Arc::new(ProxyInner {
                fleet,
                cfg: cfg.clone(),
                latency: LatencyEstimator::new(),
                shutdown: AtomicBool::new(false),
                registry,
                rollout_lock: Mutex::new(()),
                last_promoted: Mutex::new(None),
            }),
        })
    }

    /// The bound router address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until `POST /v1/shutdown`, then joins every connection.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] only for accept-loop failures.
    pub fn run(self) -> Result<(), ServeError> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        let mut accept_errors = 0u32;
        loop {
            let (stream, _) = match accept_with_retry(
                &self.listener,
                &self.inner.shutdown,
                &mut accept_errors,
                "cluster.proxy.accept",
            )? {
                Some(pair) => pair,
                None => break,
            };
            if self.inner.shutdown.load(Ordering::Acquire) {
                break; // the wake-up connection
            }
            let inner = Arc::clone(&self.inner);
            connections.retain(|h| !h.is_finished());
            connections.push(
                std::thread::Builder::new()
                    .name("router-conn".into())
                    .spawn(move || handle_proxy_connection(stream, &inner))
                    .expect("spawn router connection thread"),
            );
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn initiate_shutdown(inner: &ProxyInner, addr: SocketAddr) {
    inner.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}

fn handle_proxy_connection(stream: TcpStream, inner: &ProxyInner) {
    let secs_opt = |secs: u64| (secs > 0).then(|| Duration::from_secs(secs));
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(secs_opt(inner.cfg.read_timeout_secs));
    let _ = stream.set_write_timeout(secs_opt(inner.cfg.write_timeout_secs));
    let local = match stream.local_addr() {
        Ok(a) => a,
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    // Pooled keep-alive connections to the replicas, scoped per client
    // connection (thread) so they need no locking.
    let mut pool: HashMap<u32, BackendConn> = HashMap::new();
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::Closed | ReadError::TimedOut | ReadError::Io(_)) => return,
            Err(ReadError::Bad { status, reason }) => {
                let resp = Response::error(status, "bad_request", &reason);
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
        };
        let (response, wants_shutdown) = dispatch(&request, inner, &mut pool);
        let draining = wants_shutdown || inner.shutdown.load(Ordering::Acquire);
        let keep_alive = request.keep_alive && !draining;
        // Drop the client connection as if the write failed (chaos only).
        airchitect_chaos::fail_point!("cluster.proxy.write", |_e: std::io::Error| ());
        if write_response(&mut writer, &response, keep_alive).is_err() {
            return;
        }
        if wants_shutdown {
            initiate_shutdown(inner, local);
        }
        if !keep_alive {
            return;
        }
    }
}

fn dispatch(
    request: &Request,
    inner: &ProxyInner,
    pool: &mut HashMap<u32, BackendConn>,
) -> (Response, bool) {
    let route = match router::route(&request.method, &request.path) {
        Ok(r) => r,
        Err(resp) => return (resp, false),
    };
    match route {
        Route::Healthz => (render_fleet_healthz(&inner.fleet), false),
        Route::Metrics => (render_cluster_metrics(&inner.fleet), false),
        Route::Shutdown => (
            Response::json(200, "{\"shutting_down\":true}\n".into()),
            true,
        ),
        Route::Reload => (rolling_reload(request, inner), false),
        Route::Rollback => (fleet_rollback(inner), false),
        Route::Recommend(case) => {
            if inner.shutdown.load(Ordering::Acquire) {
                let mut resp = Response::error(503, "draining", "router is shutting down");
                resp.retry_after = Some(1);
                return (resp, false);
            }
            (forward_recommend(case, request, inner, pool), false)
        }
    }
}

// ---------------------------------------------------------------------
// Fleet endpoints
// ---------------------------------------------------------------------

/// Renders the router's aggregated `/healthz`.
fn render_fleet_healthz(fleet: &Fleet) -> Response {
    let views = fleet.views();
    let healthy = fleet.healthy();
    let mut body = String::from("{\"status\":\"");
    body.push_str(fleet_status(views.len(), healthy));
    body.push_str("\",\"role\":\"router\",\"healthy\":");
    body.push_str(&healthy.to_string());
    body.push_str(",\"total\":");
    body.push_str(&views.len().to_string());
    body.push_str(",\"replicas\":[");
    for (i, v) in views.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"id\":");
        body.push_str(&v.id.to_string());
        body.push_str(",\"state\":");
        json::write_escaped(&mut body, v.phase);
        body.push_str(",\"pid\":");
        match v.pid {
            Some(pid) => body.push_str(&pid.to_string()),
            None => body.push_str("null"),
        }
        body.push_str(",\"addr\":");
        match v.addr {
            Some(addr) => json::write_escaped(&mut body, &addr.to_string()),
            None => body.push_str("null"),
        }
        body.push_str(",\"restarts\":");
        body.push_str(&v.restarts_total.to_string());
        body.push_str(",\"breaker\":");
        json::write_escaped(&mut body, v.breaker);
        body.push('}');
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

/// The registry snapshot plus per-replica gauge lines
/// (`cluster.replica.N.healthy` and friends).
fn render_cluster_metrics(fleet: &Fleet) -> Response {
    let mut resp = router::render_metrics();
    for v in fleet.views() {
        let id = v.id;
        resp.body.push_str(&format!(
            "cluster.replica.{id}.healthy {}\n",
            u8::from(v.phase == "healthy")
        ));
        resp.body
            .push_str(&format!("cluster.replica.{id}.restarts_total {}\n", v.restarts_total));
        resp.body
            .push_str(&format!("cluster.replica.{id}.hedges_fired {}\n", v.hedges_fired));
        resp.body.push_str(&format!(
            "cluster.replica.{id}.failovers_total {}\n",
            v.failovers_total
        ));
        resp.body
            .push_str(&format!("cluster.replica.{id}.inflight {}\n", v.inflight));
    }
    resp
}

/// `POST /v1/reload` fanned out to every replica with a known address.
/// Partial failure is a `502` naming the stragglers — the fleet must not
/// silently serve two model generations forever.
fn broadcast_reload(inner: &ProxyInner) -> Response {
    let mut results: Vec<(u32, u16)> = Vec::new();
    for v in inner.fleet.views() {
        let Some(addr) = v.addr else {
            results.push((v.id, 0));
            continue;
        };
        let mut client = RetryClient::new(
            addr,
            Duration::from_millis(inner.cfg.backend_timeout_ms.max(1)),
            2,
            Duration::from_millis(50),
        );
        let status = client.post("/v1/reload", "").map_or(0, |r| r.status);
        results.push((v.id, status));
    }
    let all_ok = !results.is_empty() && results.iter().all(|&(_, s)| s == 200);
    let mut body = String::from("{\"reloaded\":");
    body.push_str(if all_ok { "true" } else { "false" });
    body.push_str(",\"replicas\":[");
    for (i, (id, status)) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"id\":{id},\"status\":{status}}}"));
    }
    body.push_str("]}\n");
    Response::json(if all_ok { 200 } else { 502 }, body)
}

// ---------------------------------------------------------------------
// Rolling rollout (registry deployments)
// ---------------------------------------------------------------------

/// A control-plane client for one replica (reload/rollback/healthz).
fn control_client(inner: &ProxyInner, addr: SocketAddr) -> RetryClient {
    RetryClient::new(
        addr,
        Duration::from_millis(inner.cfg.backend_timeout_ms.max(1)),
        2,
        Duration::from_millis(50),
    )
}

/// Extracts `rollout.state` and `rollout.last` from a replica `/healthz`
/// body. Returns `None` when the body has no rollout object (old replica
/// or parse failure).
fn parse_rollout_state(body: &str) -> Option<(String, String)> {
    let Ok(Value::Obj(members)) = json::parse(body) else {
        return None;
    };
    let rollout = members.iter().find(|(k, _)| k == "rollout")?;
    let Value::Obj(fields) = &rollout.1 else {
        return None;
    };
    let get = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_str())
            .map(str::to_string)
    };
    Some((get("state")?, get("last")?))
}

/// Polls one replica until its canary evaluation settles. `Ok` carries
/// the verdict (`promoted` / `rolled_back` / `none` — the last meaning
/// the replica restarted and lost the candidate). `Err` is a timeout.
fn wait_verdict(inner: &ProxyInner, addr: SocketAddr) -> Result<String, ()> {
    let deadline = Instant::now() + Duration::from_millis(inner.cfg.rollout_timeout_ms.max(1));
    let mut client = control_client(inner, addr);
    while Instant::now() < deadline {
        if let Ok(resp) = client.get("/healthz") {
            if let Some((state, last)) = parse_rollout_state(&resp.body) {
                if state == "idle" {
                    return Ok(last);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(())
}

/// Rolls the whole fleet back onto the incumbent: quarantine the failed
/// version, tell every replica to drop any canary, then force an
/// immediate reload so replicas that already promoted in memory re-read
/// the (still-incumbent) `current.airm`.
fn roll_fleet_back(inner: &ProxyInner, version: u64, detail: &str) -> Response {
    metrics::CLUSTER_ROLLOUT_ROLLBACKS.inc();
    if let Some(reg) = &inner.registry {
        let mut reg = reg.lock().expect("registry poisoned");
        let _ = reg.quarantine(version);
    }
    for v in inner.fleet.views() {
        let Some(addr) = v.addr else { continue };
        let mut client = control_client(inner, addr);
        let _ = client.post("/v1/rollback", "");
        let _ = client.post("/v1/reload", "{\"immediate\":true}");
    }
    metrics::CLUSTER_ROLLOUT_REPLICAS_DONE.set(0.0);
    let mut body = String::from(
        "{\"reloaded\":false,\"rollout\":{\"rolled_back\":true,\"version\":",
    );
    body.push_str(&version.to_string());
    body.push_str(",\"detail\":");
    json::write_escaped(&mut body, detail);
    body.push_str("}}\n");
    Response::json(409, body)
}

/// `POST /v1/reload` on a registry deployment: a rolling, drain-aware,
/// canary-verified rollout — one replica at a time, fleet-wide rollback
/// on the first failure, registry promotion only after unanimity.
///
/// The optional body `{"path": "..."}` registers the named artifact as a
/// new version first (the curl-driven deploy path); otherwise the newest
/// unpromoted registry version is rolled out.
fn rolling_reload(request: &Request, inner: &ProxyInner) -> Response {
    let Some(registry) = &inner.registry else {
        // Legacy fan-out for registry-less clusters.
        return broadcast_reload(inner);
    };
    let Ok(_rollout) = inner.rollout_lock.try_lock() else {
        return Response::error(
            409,
            "rollout_in_progress",
            "a rolling rollout is already running",
        );
    };
    // Optional body: register a fresh artifact as the candidate version.
    let explicit_path = match parse_router_reload_body(&request.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let (version, artifact) = {
        let mut reg = registry.lock().expect("registry poisoned");
        // Pick up versions `train --model-dir` registered out-of-process.
        if let Err(e) = reg.refresh() {
            return Response::error(500, "registry_error", &e.to_string());
        }
        let version = if let Some(path) = explicit_path {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    return Response::error(
                        400,
                        "bad_artifact",
                        &format!("{}: {e}", path.display()),
                    )
                }
            };
            match reg.add_version(&bytes) {
                Ok(v) => v,
                Err(e @ RegistryError::Quarantined { .. }) => {
                    return Response::error(409, "quarantined", &e.to_string())
                }
                Err(e) => return Response::error(500, "registry_error", &e.to_string()),
            }
        } else {
            match reg.latest_candidate() {
                Some(entry) => entry.version,
                None => {
                    return Response::error(
                        409,
                        "no_candidate",
                        "registry has no unquarantined version newer than active",
                    )
                }
            }
        };
        (version, reg.version_path(version))
    };
    metrics::CLUSTER_ROLLOUT_STARTED.inc();
    metrics::CLUSTER_ROLLOUT_REPLICAS_DONE.set(0.0);
    let mut reload_body = String::from("{\"path\":");
    json::write_escaped(&mut reload_body, &artifact.display().to_string());
    reload_body.push_str(&format!(",\"version\":{version}}}"));

    let replicas: Vec<(u32, SocketAddr)> = inner
        .fleet
        .views()
        .iter()
        .filter_map(|v| v.addr.map(|a| (v.id, a)))
        .collect();
    if replicas.is_empty() {
        return Response::error(503, "no_replicas", "no replica has a known address");
    }
    let mut done = 0usize;
    for &(id, addr) in &replicas {
        let mut client = control_client(inner, addr);
        match client.post("/v1/reload", &reload_body) {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => {
                return roll_fleet_back(
                    inner,
                    version,
                    &format!("replica {id} rejected the candidate ({})", resp.status),
                )
            }
            Err(e) => {
                return roll_fleet_back(
                    inner,
                    version,
                    &format!("replica {id} unreachable for reload: {e}"),
                )
            }
        }
        match wait_verdict(inner, addr) {
            Ok(last) if last == "promoted" => {
                // Re-probe before advancing: the replica must still be
                // answering healthily on the new model.
                match client.get("/healthz") {
                    Ok(h) if h.status == 200 => {}
                    _ => {
                        return roll_fleet_back(
                            inner,
                            version,
                            &format!("replica {id} unhealthy after promote"),
                        )
                    }
                }
                metrics::CLUSTER_ROLLOUT_REPLICA_RELOADS.inc();
                done += 1;
                metrics::CLUSTER_ROLLOUT_REPLICAS_DONE.set(done as f64);
            }
            Ok(last) => {
                return roll_fleet_back(
                    inner,
                    version,
                    &format!("replica {id} canary verdict: {last}"),
                )
            }
            Err(()) => {
                return roll_fleet_back(
                    inner,
                    version,
                    &format!("replica {id} canary verdict timed out"),
                )
            }
        }
    }
    // Unanimous: promote on disk (current.airm + MANIFEST move together;
    // any replica restarting from here boots the new version).
    {
        let mut reg = registry.lock().expect("registry poisoned");
        if let Err(e) = reg.promote(version) {
            return roll_fleet_back(inner, version, &format!("registry promote failed: {e}"));
        }
    }
    *inner.last_promoted.lock().expect("last_promoted poisoned") = Some(version);
    metrics::CLUSTER_ROLLOUT_PROMOTED.inc();
    let mut body = String::from("{\"reloaded\":true,\"rollout\":{\"rolled_back\":false,\"version\":");
    body.push_str(&version.to_string());
    body.push_str(",\"replicas\":");
    body.push_str(&done.to_string());
    body.push_str("}}\n");
    Response::json(200, body)
}

/// Fleet-wide `POST /v1/rollback`: quarantines the last rollout-promoted
/// version (restoring `current.airm` to its predecessor) and forces every
/// replica back onto it. Idempotent — with nothing promoted it reports
/// `false`.
fn fleet_rollback(inner: &ProxyInner) -> Response {
    let Some(registry) = &inner.registry else {
        return Response::error(
            409,
            "no_registry",
            "rollback requires a registry (--model-dir) deployment",
        );
    };
    let Ok(_rollout) = inner.rollout_lock.try_lock() else {
        return Response::error(
            409,
            "rollout_in_progress",
            "a rolling rollout is already running",
        );
    };
    let reverted = inner
        .last_promoted
        .lock()
        .expect("last_promoted poisoned")
        .take();
    let Some(version) = reverted else {
        return Response::json(
            200,
            "{\"rolled_back\":false,\"detail\":\"nothing_to_roll_back\"}\n".into(),
        );
    };
    {
        let mut reg = registry.lock().expect("registry poisoned");
        if let Err(e) = reg.quarantine(version) {
            return Response::error(500, "registry_error", &e.to_string());
        }
    }
    metrics::CLUSTER_ROLLOUT_ROLLBACKS.inc();
    let mut failures = 0usize;
    for v in inner.fleet.views() {
        let Some(addr) = v.addr else { continue };
        let mut client = control_client(inner, addr);
        let ok = client
            .post("/v1/reload", "{\"immediate\":true}")
            .map(|r| r.status == 200)
            .unwrap_or(false);
        if !ok {
            failures += 1;
        }
    }
    let mut body = String::from("{\"rolled_back\":true,\"version\":");
    body.push_str(&version.to_string());
    body.push_str(",\"replica_failures\":");
    body.push_str(&failures.to_string());
    body.push_str("}\n");
    Response::json(if failures == 0 { 200 } else { 502 }, body)
}

/// Parses the router's `/v1/reload` body: optional `{"path": "..."}`.
fn parse_router_reload_body(body: &[u8]) -> Result<Option<std::path::PathBuf>, Response> {
    if body.iter().all(u8::is_ascii_whitespace) {
        return Ok(None);
    }
    let bad = |code: &str, msg: &str| Response::error(400, code, msg);
    let text = std::str::from_utf8(body)
        .map_err(|_| bad("bad_encoding", "request body is not UTF-8"))?;
    let members = match json::parse(text) {
        Ok(Value::Obj(members)) => members,
        Ok(_) => return Err(bad("bad_request", "request body must be a JSON object")),
        Err(e) => return Err(bad("bad_json", &format!("malformed JSON: {e}"))),
    };
    let mut path = None;
    for (key, value) in &members {
        match key.as_str() {
            "path" => {
                let s = value
                    .as_str()
                    .ok_or_else(|| bad("bad_field", "`path` must be a string"))?;
                path = Some(std::path::PathBuf::from(s));
            }
            other => {
                return Err(bad(
                    "unknown_field",
                    &format!("unknown field `{other}` (allowed: path)"),
                ))
            }
        }
    }
    Ok(path)
}

// ---------------------------------------------------------------------
// Recommend forwarding: failover + hedging
// ---------------------------------------------------------------------

/// Everything a forwarding thread needs to (re)issue the request.
#[derive(Clone)]
struct ForwardReq {
    path: String,
    body: String,
    deadline_ms: Option<u64>,
}

fn forward_recommend(
    case: CaseStudy,
    request: &Request,
    inner: &ProxyInner,
    pool: &mut HashMap<u32, BackendConn>,
) -> Response {
    metrics::CLUSTER_PROXY_REQUESTS.inc();
    // Validate locally: bad requests are answered here and never spend a
    // replica's time; the canonical cache key doubles as the ring key,
    // giving each replica's response cache a stable shard of the space.
    let parsed = match router::parse_recommend(case, &request.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let candidates = inner.fleet.ordered(&parsed.cache_key, inner.fleet.total());
    if candidates.is_empty() {
        let mut resp = Response::error(
            503,
            "no_healthy_replicas",
            "no replica is currently admitted to the ring",
        );
        resp.retry_after = Some(1);
        return resp;
    }
    let req = ForwardReq {
        path: request.path.clone(),
        body: String::from_utf8_lossy(&request.body).into_owned(),
        deadline_ms: request.deadline_ms,
    };
    let budget = Duration::from_millis(inner.cfg.backend_timeout_ms.max(1));
    let started = Instant::now();
    let mut last_response: Option<Response> = None;

    for (i, &id) in candidates.iter().enumerate() {
        if i > 0 {
            metrics::CLUSTER_FAILOVERS.inc();
        }
        let Some(slot) = inner.fleet.slot(id) else { continue };
        // In-flight cap first (no breaker state is consumed by a skip)...
        if slot.inflight.fetch_add(1, Ordering::AcqRel) >= inner.cfg.max_inflight {
            slot.inflight.fetch_sub(1, Ordering::AcqRel);
            slot.failovers_total.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // ...then the outbound breaker (an admitted half-open probe is
        // always followed by a `record`).
        if slot.breaker.try_acquire() == Admit::No {
            slot.inflight.fetch_sub(1, Ordering::AcqRel);
            slot.failovers_total.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let Some(addr) = inner.fleet.replica_addr(id) else {
            slot.breaker.record(false);
            slot.inflight.fetch_sub(1, Ordering::AcqRel);
            continue;
        };
        // Hedge only on the primary attempt; later attempts already are
        // the hedge's failover cousins.
        let hedge = if i == 0 {
            hedge_delay(&inner.cfg, &inner.latency).and_then(|delay| {
                let target = candidates.get(1).copied()?;
                let target_slot = inner.fleet.slot(target)?;
                let target_addr = inner.fleet.replica_addr(target)?;
                Some((delay, target, target_addr, Arc::clone(target_slot)))
            })
        } else {
            None
        };
        let result = attempt_replica(pool, id, addr, slot, &req, hedge, budget);
        slot.inflight.fetch_sub(1, Ordering::AcqRel);
        match result {
            Ok((raw, from)) => {
                let backend_ok = raw.status < 500;
                // The breaker grades the *attempt*: a hedge win still
                // means this route produced an answer in budget.
                slot.breaker.record(backend_ok);
                if backend_ok {
                    let us = started.elapsed().as_micros() as u64;
                    metrics::CLUSTER_BACKEND_US.record(us);
                    inner.latency.record(us);
                    return proxied_response(&raw, from);
                }
                slot.failovers_total.fetch_add(1, Ordering::Relaxed);
                last_response = Some(proxied_response(&raw, from));
            }
            Err(_) => {
                slot.breaker.record(false);
                slot.failovers_total.fetch_add(1, Ordering::Relaxed);
                pool.remove(&id);
            }
        }
    }
    last_response.unwrap_or_else(|| {
        let mut resp = Response::error(
            502,
            "all_replicas_failed",
            "every healthy replica failed or timed out for this request",
        );
        resp.retry_after = Some(1);
        resp
    })
}

type HedgePlan = (Duration, u32, SocketAddr, Arc<ReplicaSlot>);

/// One routed attempt: send on a pooled (or fresh) connection, wait up
/// to the hedge delay, and race a duplicate if the primary is slow.
fn attempt_replica(
    pool: &mut HashMap<u32, BackendConn>,
    id: u32,
    addr: SocketAddr,
    slot: &Arc<ReplicaSlot>,
    req: &ForwardReq,
    hedge: Option<HedgePlan>,
    budget: Duration,
) -> std::io::Result<(RawResponse, u32)> {
    // Simulated backend read failure (chaos only): exercises failover.
    airchitect_chaos::fail_point!("cluster.proxy.read", Err);
    let deadline = Instant::now() + budget;
    let mut conn = match pool.remove(&id) {
        Some(c) => c,
        None => BackendConn::connect(addr, budget)?,
    };
    conn.send("POST", &req.path, &req.body, req.deadline_ms)?;
    let first_wait = hedge
        .as_ref()
        .map_or(budget, |(delay, ..)| (*delay).min(budget));
    match conn.read_step(first_wait)? {
        ReadStep::Ready(raw) => {
            pool.insert(id, conn);
            Ok((raw, id))
        }
        ReadStep::Pending => {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let Some((_, target_id, target_addr, target_slot)) = hedge else {
                // No hedge available: keep waiting out the budget on the
                // same connection.
                return match conn.read_step(remaining)? {
                    ReadStep::Ready(raw) => {
                        pool.insert(id, conn);
                        Ok((raw, id))
                    }
                    ReadStep::Pending => Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "replica exceeded the backend budget",
                    )),
                };
            };
            metrics::CLUSTER_HEDGES_FIRED.inc();
            slot.hedges_fired.fetch_add(1, Ordering::Relaxed);
            race_hedge(conn, id, target_id, target_addr, target_slot, req, remaining)
        }
    }
}

/// First answer wins: the slow primary keeps reading on one thread while
/// a duplicate runs against `target` on another. Loser connections are
/// dropped, not pooled — hedges are tail-rare by construction.
fn race_hedge(
    mut primary: BackendConn,
    primary_id: u32,
    target_id: u32,
    target_addr: SocketAddr,
    target_slot: Arc<ReplicaSlot>,
    req: &ForwardReq,
    remaining: Duration,
) -> std::io::Result<(RawResponse, u32)> {
    let deadline = Instant::now() + remaining;
    let (tx, rx) = mpsc::channel::<(u32, std::io::Result<RawResponse>)>();
    {
        let tx = tx.clone();
        let _ = std::thread::Builder::new()
            .name("hedge-primary".into())
            .spawn(move || {
                let result = primary.read_step(remaining).and_then(|step| match step {
                    ReadStep::Ready(raw) => Ok(raw),
                    ReadStep::Pending => Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "primary exceeded the backend budget",
                    )),
                });
                let _ = tx.send((primary_id, result));
            });
    }
    {
        let req = req.clone();
        let _ = std::thread::Builder::new()
            .name("hedge-duplicate".into())
            .spawn(move || {
                target_slot.inflight.fetch_add(1, Ordering::AcqRel);
                let result = BackendConn::connect(target_addr, remaining)
                    .and_then(|mut c| {
                        c.send("POST", &req.path, &req.body, req.deadline_ms)?;
                        Ok(c)
                    })
                    .and_then(|mut c| match c.read_step(remaining)? {
                        ReadStep::Ready(raw) => Ok(raw),
                        ReadStep::Pending => Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "hedge exceeded the backend budget",
                        )),
                    });
                target_slot.breaker.record(
                    result.as_ref().map(|r| r.status < 500).unwrap_or(false),
                );
                target_slot.inflight.fetch_sub(1, Ordering::AcqRel);
                let _ = tx.send((target_id, result));
            });
    }
    let mut first_err: Option<std::io::Error> = None;
    loop {
        let wait = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok((id, Ok(raw))) => {
                if id != primary_id {
                    metrics::CLUSTER_HEDGE_WINS.inc();
                }
                return Ok((raw, id));
            }
            Ok((_, Err(e))) => match first_err.take() {
                // Both legs failed: surface the first error.
                Some(first) => return Err(first),
                None => first_err = Some(e),
            },
            Err(_) => {
                return Err(first_err.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "hedged request pair exceeded the backend budget",
                    )
                }))
            }
        }
    }
}

/// Rebuilds a backend answer as a client response, annotated with the
/// replica that produced it.
fn proxied_response(raw: &RawResponse, from: u32) -> Response {
    let mut resp = if raw.content_type.starts_with("text/plain") {
        Response::text(raw.status, raw.body.clone())
    } else {
        Response::json(raw.status, raw.body.clone())
    };
    resp.retry_after = raw.retry_after;
    resp.warning = raw.warning.clone();
    resp.extra.push(("X-Replica".into(), from.to_string()));
    resp
}

// ---------------------------------------------------------------------
// Cluster orchestration
// ---------------------------------------------------------------------

/// A running cluster: the supervisor (children + probes) plus the bound
/// router. [`Cluster::run`] blocks until shutdown; tests and the bench
/// drive it from a thread via [`Cluster::fleet`] and the HTTP API.
pub struct Cluster {
    supervisor: Option<Supervisor>,
    router: Option<Router>,
    fleet: Arc<Fleet>,
    addr: SocketAddr,
}

impl Cluster {
    /// Builds the replica argv for the standard case: re-invoke `program`
    /// (usually `current_exe`) with `serve` and the flags of `config`,
    /// letting the supervisor append `--port 0`.
    #[must_use]
    pub fn replica_argv(program: &str, config: &ServeConfig) -> Vec<String> {
        let mut argv = vec![
            program.to_string(),
            "serve".into(),
            "--host".into(),
            "127.0.0.1".into(),
            "--model".into(),
            config
                .model_paths
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(","),
        ];
        for (flag, value) in [
            ("--workers", config.workers as u64),
            ("--queue-depth", config.queue_depth as u64),
            ("--batch-max", config.batch_max as u64),
            ("--cache-cap", config.cache_capacity as u64),
            ("--read-timeout-secs", config.read_timeout_secs),
            ("--write-timeout-secs", config.write_timeout_secs),
            ("--deadline-ms", config.deadline_ms),
            ("--breaker-threshold", u64::from(config.breaker_threshold)),
            ("--breaker-cooldown-ms", config.breaker_cooldown_ms),
            ("--event-loops", config.event_loops as u64),
        ] {
            argv.push(flag.into());
            argv.push(value.to_string());
        }
        if config.fallback_search {
            argv.push("--fallback".into());
            argv.push("search".into());
        }
        if !config.single_query_bypass {
            argv.push("--no-bypass".into());
        }
        if config.threaded {
            argv.push("--threaded".into());
        }
        if config.nodelay {
            argv.push("--nodelay".into());
        }
        if config.shadow_rate > 0.0 {
            argv.push("--shadow-oracle".into());
            argv.push(config.shadow_rate.to_string());
            if let Some(dir) = &config.shadow_dir {
                argv.push("--shadow-log-dir".into());
                argv.push(dir.display().to_string());
            }
            argv.push("--shadow-queue-depth".into());
            argv.push(config.shadow_queue_depth.to_string());
            argv.push("--shadow-threads".into());
            argv.push(config.shadow_threads.to_string());
        }
        // Canary thresholds ride along so the rolling rollout can drive
        // each replica's evaluation. `--model-dir` deliberately does NOT:
        // replicas serve the registry's `current.airm` by path, while the
        // router alone owns the MANIFEST.
        if config.canary_split > 0.0 {
            argv.push("--canary-split".into());
            argv.push(config.canary_split.to_string());
            argv.push("--canary-min-samples".into());
            argv.push(config.canary_min_samples.to_string());
            argv.push("--canary-min-agreement".into());
            argv.push(config.canary_min_agreement.to_string());
            argv.push("--canary-max-p99-ratio".into());
            argv.push(config.canary_max_p99_ratio.to_string());
        }
        argv
    }

    /// Spawns the fleet and binds the router.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] for bad configuration, spawn failures, or
    /// bind failures.
    pub fn start(cfg: ClusterConfig) -> Result<Self, ServeError> {
        airchitect_telemetry::enable();
        let (supervisor, fleet) = Supervisor::start(cfg.clone())?;
        let router = Router::bind(&cfg, Arc::clone(&fleet))?;
        Ok(Self {
            addr: router.local_addr(),
            supervisor: Some(supervisor),
            router: Some(router),
            fleet,
        })
    }

    /// The router's bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared fleet state (kill hooks, health polling).
    #[must_use]
    pub fn fleet(&self) -> Arc<Fleet> {
        Arc::clone(&self.fleet)
    }

    /// Polls until at least `want` replicas are on the ring. Returns
    /// whether the quorum arrived within `timeout`.
    #[must_use]
    pub fn wait_healthy(&self, want: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.fleet.healthy() >= want {
                return true;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        self.fleet.healthy() >= want
    }

    /// Serves until `POST /v1/shutdown`, then drains the children.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] for router accept-loop failures (the
    /// children are still drained first).
    pub fn run(mut self) -> Result<(), ServeError> {
        let router = self.router.take().expect("router consumed twice");
        let result = router.run();
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.shutdown();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Ring;

    #[test]
    fn parse_response_handles_split_arrival() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4\r\nRetry-After: 2\r\n\r\n{\"a\"";
        for split in 0..full.len() {
            let mut buf = full[..split].to_vec();
            assert!(
                try_parse_response(&mut buf).unwrap().is_none(),
                "split {split} parsed early"
            );
            buf.extend_from_slice(&full[split..]);
            let resp = try_parse_response(&mut buf).unwrap().expect("complete");
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, "{\"a\"");
            assert_eq!(resp.retry_after, Some(2));
            assert!(buf.is_empty(), "buffer not drained");
        }
    }

    #[test]
    fn parse_response_rejects_garbage() {
        let mut buf = b"NOT-HTTP\r\n\r\n".to_vec();
        assert!(try_parse_response(&mut buf).is_err());
        let mut buf = b"HTTP/1.1 200 OK\r\n\r\n".to_vec();
        assert!(try_parse_response(&mut buf).is_err(), "missing Content-Length");
    }

    #[test]
    fn latency_estimator_warms_up_then_tracks_p99() {
        let est = LatencyEstimator::new();
        assert_eq!(est.p99_us(), None);
        for _ in 0..LATENCY_WARMUP {
            est.record(1000);
        }
        assert_eq!(est.p99_us(), Some(1000));
        // A tail of slow samples drags the p99 up once recomputed.
        for _ in 0..LATENCY_WARMUP {
            est.record(50_000);
        }
        assert_eq!(est.p99_us(), Some(50_000));
    }

    #[test]
    fn hedge_delay_prefers_fixed_config() {
        let cfg = ClusterConfig {
            hedge_ms: 7,
            ..ClusterConfig::default()
        };
        let est = LatencyEstimator::new();
        assert_eq!(hedge_delay(&cfg, &est), Some(Duration::from_millis(7)));
        let auto = ClusterConfig::default();
        assert_eq!(hedge_delay(&auto, &est), None, "cold estimator: no hedging");
        for _ in 0..LATENCY_WARMUP {
            est.record(100); // 100us, below the 1ms clamp floor
        }
        assert_eq!(hedge_delay(&auto, &est), Some(Duration::from_millis(1)));
    }

    #[test]
    fn replica_argv_round_trips_serve_flags() {
        let config = ServeConfig {
            model_paths: vec!["/tmp/m.airm".into()],
            cache_capacity: 0,
            fallback_search: true,
            ..ServeConfig::default()
        };
        let argv = Cluster::replica_argv("airchitect", &config);
        assert_eq!(argv[0], "airchitect");
        assert_eq!(argv[1], "serve");
        assert!(argv.contains(&"--model".to_string()));
        assert!(argv.contains(&"--cache-cap".to_string()));
        assert!(argv.contains(&"--fallback".to_string()));
        assert!(argv.contains(&"search".to_string()));
        assert_eq!(
            argv.iter().filter(|a| *a == "--model").count(),
            1,
            "the CLI rejects duplicate keys; model paths must be comma-joined"
        );
        assert!(
            !argv.contains(&"--port".to_string()),
            "the supervisor appends --port itself"
        );
    }

    #[test]
    fn ring_key_is_the_parsed_cache_key() {
        // Routing must be body-layout independent, exactly like caching.
        let a = router::parse_recommend(
            airchitect::model::CaseStudy::ArrayDataflow,
            br#"{"m":64,"n":32,"k":16}"#,
        )
        .unwrap();
        let b = router::parse_recommend(
            airchitect::model::CaseStudy::ArrayDataflow,
            br#"{ "k": 16, "n": 32, "m": 64 }"#,
        )
        .unwrap();
        let mut ring = Ring::new(64);
        for id in 0..3 {
            ring.add(id);
        }
        assert_eq!(ring.primary(&a.cache_key), ring.primary(&b.cache_key));
    }
}
