//! Canary rollout state machine for safe model reloads.
//!
//! With a canary split configured, `/v1/reload` stops swapping models
//! immediately. Instead the candidate set is *staged* ([`ModelHub::stage`]
//! validates it without touching the live slots) and a deterministic
//! fraction of single-query traffic — hashed on the canonical cache key,
//! so the same query always lands on the same side — is answered by the
//! candidate while the incumbent's answer is computed for the same request
//! and compared. Promotion requires a minimum sample count with both an
//! agreement rate and a candidate-p99-latency ratio inside their
//! thresholds; any candidate failure, or a missed threshold, rolls the
//! candidate back and (in registry mode) quarantines its version so the
//! same artifact is never retried.
//!
//! Because the sampled request is *always* answered — by the candidate
//! when it succeeds, by the incumbent it was compared against otherwise —
//! a bad canary can never fail client traffic; it can only lose the vote.
//!
//! Promotion order is disk-first: the registry's `current.airm` and
//! MANIFEST move *before* the in-memory install, so a crash between the
//! two restarts onto the promoted version rather than resurrecting the
//! incumbent.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

use airchitect::model::CaseStudy;
use airchitect_online::sampler;
use airchitect_telemetry::json::{self, Value};
use airchitect_telemetry::metrics;

use crate::http::Response;
use crate::registry::{Registry, RegistryError};
use crate::reload::{LoadedModel, ModelHub};

/// Hard cap on retained per-side latency samples (p99 estimation window).
const LATENCY_WINDOW: usize = 4096;

/// Canary gate thresholds, fixed at server start.
#[derive(Debug, Clone, Copy)]
pub struct RolloutConfig {
    /// Fraction of single-query traffic routed to the candidate, in parts
    /// per million. `0` disables canarying: reloads swap immediately.
    pub split_ppm: u32,
    /// Samples required before the agreement/latency gates are judged.
    pub min_samples: u64,
    /// Minimum candidate-vs-incumbent agreement rate in `[0, 1]`.
    pub min_agreement: f64,
    /// Maximum candidate p99 latency as a multiple of the incumbent's.
    pub max_p99_ratio: f64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            split_ppm: 0,
            min_samples: 50,
            min_agreement: 0.9,
            max_p99_ratio: 4.0,
        }
    }
}

/// Running tallies for one canary evaluation.
#[derive(Debug, Default)]
struct CanaryStats {
    samples: u64,
    agreements: u64,
    failures: u64,
    cand_us: Vec<u64>,
    inc_us: Vec<u64>,
    /// Set once a verdict is reached so racing samples can't re-decide.
    decided: bool,
}

/// One staged candidate model set under canary evaluation.
#[derive(Debug)]
pub struct Candidate {
    /// Validated snapshots serving the canary slice (not yet installed).
    models: Vec<Arc<LoadedModel>>,
    /// Generation the snapshots carry; published on promote.
    generation: u64,
    /// Registry version under evaluation (`None` for path/registered
    /// reloads outside registry mode).
    version: Option<u64>,
    stats: Mutex<CanaryStats>,
}

impl Candidate {
    /// The staged snapshot for `case`, if the candidate set covers it.
    pub fn model(&self, case: CaseStudy) -> Option<&Arc<LoadedModel>> {
        self.models.iter().find(|m| m.case == case)
    }

    /// Registry version under evaluation, if any.
    pub fn version(&self) -> Option<u64> {
        self.version
    }

    /// Generation the staged snapshots carry.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The verdict a finished evaluation reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All gates passed: install the candidate.
    Promote,
    /// A gate failed: discard and quarantine the candidate.
    Rollback(&'static str),
}

fn p99(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) * 99 / 100]
}

/// The per-server rollout controller: owns the staged candidate, the
/// optional on-disk registry, and the promote/rollback transitions.
pub struct Rollout {
    cfg: RolloutConfig,
    hub: Arc<ModelHub>,
    registry: Option<Mutex<Registry>>,
    candidate: RwLock<Option<Arc<Candidate>>>,
    /// Last registry version promoted by a canary — the `/v1/rollback`
    /// target once no canary is active.
    revertible: Mutex<Option<u64>>,
    /// `none`, `promoted`, or `rolled_back` — how the last rollout ended.
    last_outcome: Mutex<&'static str>,
}

impl Rollout {
    /// Builds the controller. `registry` is `Some` in `--model-dir` mode.
    pub fn new(cfg: RolloutConfig, hub: Arc<ModelHub>, registry: Option<Registry>) -> Self {
        Self {
            cfg,
            hub,
            registry: registry.map(Mutex::new),
            candidate: RwLock::new(None),
            revertible: Mutex::new(None),
            last_outcome: Mutex::new("none"),
        }
    }

    /// Whether canary evaluation is configured (split > 0).
    pub fn enabled(&self) -> bool {
        self.cfg.split_ppm > 0
    }

    /// The configured thresholds.
    pub fn config(&self) -> &RolloutConfig {
        &self.cfg
    }

    /// The candidate currently under evaluation, if any.
    pub fn active(&self) -> Option<Arc<Candidate>> {
        self.candidate.read().expect("candidate poisoned").clone()
    }

    /// Whether this request's canonical cache key falls in the canary
    /// slice (deterministic per-key split).
    pub fn in_slice(&self, cache_key: &[u8]) -> bool {
        sampler::sampled(cache_key, self.cfg.split_ppm)
    }

    fn set_outcome(&self, outcome: &'static str) {
        *self.last_outcome.lock().expect("outcome poisoned") = outcome;
    }

    /// How the most recent rollout resolved (`none` until the first one).
    pub fn last_outcome(&self) -> &'static str {
        *self.last_outcome.lock().expect("outcome poisoned")
    }

    fn quarantine(&self, version: u64) {
        if let Some(reg) = &self.registry {
            let mut reg = reg.lock().expect("registry poisoned");
            if let Err(e) = reg.quarantine(version) {
                self.hub_note(format!("quarantine v{version}: {e}"));
            }
        }
    }

    /// Registry-layer problems during promote/quarantine are recorded as
    /// hub load errors so `/healthz` surfaces them without a log sink.
    fn hub_note(&self, msg: String) {
        self.hub.note_error(msg);
    }

    /// Handles `POST /v1/reload` in canary mode: stages the candidate and
    /// starts an evaluation instead of swapping.
    ///
    /// The body may name an explicit artifact (`{"path": "...", "version":
    /// N}` — the rolling cluster coordinator does this); otherwise the
    /// registry's newest unquarantined version newer than active is
    /// staged, and outside registry mode the registered paths are
    /// re-staged from disk.
    pub fn stage_reload(&self, body: &[u8]) -> Response {
        let (explicit_path, explicit_version) = match parse_reload_body(body) {
            Ok(pair) => pair,
            Err(resp) => return resp,
        };
        {
            let guard = self.candidate.read().expect("candidate poisoned");
            if guard.is_some() {
                return Response::error(
                    409,
                    "rollout_in_progress",
                    "a canary evaluation is already running; wait for its verdict or POST /v1/rollback",
                );
            }
        }
        let mut version = explicit_version;
        let paths: Option<Vec<PathBuf>> = if let Some(p) = explicit_path {
            Some(vec![p])
        } else if let Some(reg) = &self.registry {
            let mut reg = reg.lock().expect("registry poisoned");
            // Another process (`train --model-dir`) may have registered a
            // version since we last looked; disk is authoritative.
            if let Err(e) = reg.refresh() {
                return registry_error_response(&e);
            }
            match reg.latest_candidate() {
                Some(entry) => {
                    version = Some(entry.version);
                    Some(vec![reg.version_path(entry.version)])
                }
                None => {
                    return Response::error(
                        409,
                        "no_candidate",
                        "registry has no unquarantined version newer than active",
                    )
                }
            }
        } else {
            None // re-stage the registered paths
        };
        match self.hub.stage(paths.as_deref()) {
            Ok((models, generation)) => {
                let candidate = Arc::new(Candidate {
                    models,
                    generation,
                    version,
                    stats: Mutex::new(CanaryStats::default()),
                });
                *self.candidate.write().expect("candidate poisoned") = Some(candidate);
                metrics::SERVE_CANARY_STAGED.inc();
                metrics::SERVE_CANARY_ACTIVE.set(1.0);
                metrics::SERVE_CANARY_AGREEMENT.set(0.0);
                metrics::SERVE_CANARY_P99_RATIO.set(0.0);
                let mut body = String::from("{\"reloaded\":false,\"staged\":true,\"rollout\":");
                self.write_status(&mut body);
                body.push_str(",\"generation\":");
                body.push_str(&self.hub.generation().to_string());
                body.push_str("}\n");
                Response::json(200, body)
            }
            Err(e) => {
                // A candidate that cannot even load is the clearest
                // possible canary failure: quarantine it immediately.
                if let Some(v) = version {
                    self.quarantine(v);
                    metrics::SERVE_CANARY_ROLLBACKS.inc();
                    self.set_outcome("rolled_back");
                }
                Response::error(409, "stage_failed", &e.to_string())
            }
        }
    }

    /// Handles `POST /v1/reload` when canarying is disabled or the body
    /// carries `"immediate": true`: the swap happens in place, with no
    /// evaluation phase.
    ///
    /// An explicit `{"path", "version"}` body — the rolling cluster
    /// coordinator naming the exact candidate it is deploying — is
    /// honored even without a canary split: the artifact is staged from
    /// that path, installed, and the outcome recorded as `promoted` so
    /// the coordinator's verdict poll can advance past this replica.
    /// Without a body, registry mode promotes the newest unquarantined
    /// version first so the swap below picks it up from `current.airm`,
    /// and plain mode re-reads the registered paths.
    pub fn immediate_reload(&self, body: &[u8]) -> Response {
        let (explicit_path, explicit_version) = match parse_reload_body(body) {
            Ok(pair) => pair,
            Err(resp) => return resp,
        };
        if let Some(path) = explicit_path {
            return match self.hub.stage(Some(std::slice::from_ref(&path))) {
                Ok((models, generation)) => {
                    self.hub.install(&models, generation);
                    if self.registry.is_some() {
                        if let Some(version) = explicit_version {
                            *self.revertible.lock().expect("revertible poisoned") = Some(version);
                        }
                    }
                    self.set_outcome("promoted");
                    crate::router::render_reloaded(&self.hub, Some(self))
                }
                Err(e) => Response::error(409, "reload_failed", &e.to_string()),
            };
        }
        // Registry mode without an explicit candidate: promote the newest
        // unquarantined version immediately so the swap serves it.
        if let Some(Err(e)) = self.with_registry(|reg| {
            reg.refresh()?;
            match reg.latest_candidate() {
                Some(entry) => reg.promote(entry.version).map(|_| ()),
                None => Ok(()),
            }
        }) {
            return Response::error(409, "reload_failed", &e.to_string());
        }
        match self.hub.reload() {
            Ok(_) => crate::router::render_reloaded(&self.hub, Some(self)),
            // 409, not 5xx: the server is healthy, the *new* artifact is
            // not; old models keep serving.
            Err(e) => Response::error(409, "reload_failed", &e.to_string()),
        }
    }

    /// Records one compared sample and applies the verdict if this sample
    /// settles the evaluation. Returns the verdict when it fired.
    pub fn record_sample(
        &self,
        candidate: &Arc<Candidate>,
        agreed: bool,
        candidate_failed: bool,
        candidate_us: u64,
        incumbent_us: u64,
    ) -> Option<Verdict> {
        let verdict = {
            let mut stats = candidate.stats.lock().expect("canary stats poisoned");
            if stats.decided {
                return None;
            }
            stats.samples += 1;
            if candidate_failed {
                stats.failures += 1;
            } else if agreed {
                stats.agreements += 1;
            }
            if stats.cand_us.len() < LATENCY_WINDOW {
                stats.cand_us.push(candidate_us);
                stats.inc_us.push(incumbent_us);
            }
            metrics::SERVE_CANARY_SAMPLES.inc();
            if agreed && !candidate_failed {
                metrics::SERVE_CANARY_AGREEMENTS.inc();
            }
            if candidate_failed {
                metrics::SERVE_CANARY_CANDIDATE_FAILURES.inc();
            }
            let agreement = stats.agreements as f64 / stats.samples as f64;
            let ratio = p99(&stats.cand_us) as f64 / p99(&stats.inc_us).max(1) as f64;
            metrics::SERVE_CANARY_AGREEMENT.set(agreement);
            metrics::SERVE_CANARY_P99_RATIO.set(ratio);
            let verdict = if stats.failures > 0 {
                Some(Verdict::Rollback("candidate_failure"))
            } else if stats.samples >= self.cfg.min_samples {
                if agreement < self.cfg.min_agreement {
                    Some(Verdict::Rollback("agreement_below_threshold"))
                } else if ratio > self.cfg.max_p99_ratio {
                    Some(Verdict::Rollback("p99_ratio_above_threshold"))
                } else {
                    Some(Verdict::Promote)
                }
            } else {
                None
            };
            if verdict.is_some() {
                stats.decided = true;
            }
            verdict
        }?;
        self.apply(candidate, verdict);
        Some(verdict)
    }

    /// Applies a settled verdict: promote installs (registry first, then
    /// hub), rollback discards and quarantines.
    fn apply(&self, candidate: &Arc<Candidate>, verdict: Verdict) {
        match verdict {
            Verdict::Promote => {
                if let (Some(reg), Some(version)) = (&self.registry, candidate.version) {
                    let mut reg = reg.lock().expect("registry poisoned");
                    if let Err(e) = reg.promote(version) {
                        // Disk is authoritative: a promote that cannot
                        // persist is treated as a failed rollout (without
                        // quarantining — the artifact itself was fine).
                        drop(reg);
                        self.hub_note(format!("promote v{version}: {e}"));
                        self.clear_candidate();
                        metrics::SERVE_CANARY_ROLLBACKS.inc();
                        metrics::SERVE_CANARY_ACTIVE.set(0.0);
                        self.set_outcome("rolled_back");
                        return;
                    }
                    *self.revertible.lock().expect("revertible poisoned") = Some(version);
                }
                self.hub.install(&candidate.models, candidate.generation);
                self.clear_candidate();
                metrics::SERVE_CANARY_PROMOTIONS.inc();
                metrics::SERVE_CANARY_ACTIVE.set(0.0);
                self.set_outcome("promoted");
            }
            Verdict::Rollback(_) => {
                if let Some(version) = candidate.version {
                    self.quarantine(version);
                }
                self.clear_candidate();
                metrics::SERVE_CANARY_ROLLBACKS.inc();
                metrics::SERVE_CANARY_ACTIVE.set(0.0);
                self.set_outcome("rolled_back");
            }
        }
    }

    fn clear_candidate(&self) {
        *self.candidate.write().expect("candidate poisoned") = None;
    }

    /// Handles `POST /v1/rollback`.
    ///
    /// With a canary in flight, the candidate is discarded and its version
    /// quarantined. With none, the last canary-promoted version (if any,
    /// registry mode only) is quarantined — which moves `current.airm`
    /// back to the prior version — and the hub reloads from disk.
    /// Idempotent: with nothing to roll back it reports `false` with 200.
    pub fn rollback_now(&self) -> Response {
        if let Some(candidate) = self.active() {
            {
                let mut stats = candidate.stats.lock().expect("canary stats poisoned");
                if stats.decided {
                    // A racing sample already settled it; nothing to do.
                    return self.rollback_response(false, "verdict_already_applied");
                }
                stats.decided = true;
            }
            self.apply(&candidate, Verdict::Rollback("operator_rollback"));
            return self.rollback_response(true, "canary_discarded");
        }
        let reverted = self.revertible.lock().expect("revertible poisoned").take();
        if let Some(version) = reverted {
            self.quarantine(version);
            if let Err(e) = self.hub.reload() {
                self.hub_note(format!("rollback reload: {e}"));
                return self.rollback_response(true, "reverted_on_disk_reload_failed");
            }
            metrics::SERVE_CANARY_ROLLBACKS.inc();
            return self.rollback_response(true, "promoted_version_reverted");
        }
        self.rollback_response(false, "nothing_to_roll_back")
    }

    fn rollback_response(&self, rolled_back: bool, detail: &str) -> Response {
        let mut body = format!("{{\"rolled_back\":{rolled_back},\"detail\":");
        json::write_escaped(&mut body, detail);
        body.push_str(",\"generation\":");
        body.push_str(&self.hub.generation().to_string());
        body.push_str(",\"rollout\":");
        self.write_status(&mut body);
        body.push_str("}\n");
        Response::json(200, body)
    }

    /// Appends the rollout state object (the `"rollout"` value in
    /// `/healthz` and reload/rollback acknowledgements) to `body`.
    pub fn write_status(&self, body: &mut String) {
        body.push_str("{\"enabled\":");
        body.push_str(if self.enabled() { "true" } else { "false" });
        body.push_str(",\"registry\":");
        body.push_str(if self.registry.is_some() { "true" } else { "false" });
        body.push_str(",\"last\":");
        json::write_escaped(body, self.last_outcome());
        match self.active() {
            Some(candidate) => {
                let stats = candidate.stats.lock().expect("canary stats poisoned");
                body.push_str(",\"state\":\"evaluating\",\"candidate\":{\"generation\":");
                body.push_str(&candidate.generation.to_string());
                body.push_str(",\"version\":");
                match candidate.version {
                    Some(v) => body.push_str(&v.to_string()),
                    None => body.push_str("null"),
                }
                body.push_str(",\"samples\":");
                body.push_str(&stats.samples.to_string());
                body.push_str(",\"agreements\":");
                body.push_str(&stats.agreements.to_string());
                body.push_str(",\"failures\":");
                body.push_str(&stats.failures.to_string());
                body.push_str(",\"min_samples\":");
                body.push_str(&self.cfg.min_samples.to_string());
                body.push('}');
            }
            None => body.push_str(",\"state\":\"idle\""),
        }
        body.push('}');
    }

    /// The active registry version (registry mode), for acknowledgements.
    pub fn active_version(&self) -> Option<u64> {
        self.registry
            .as_ref()
            .and_then(|r| r.lock().expect("registry poisoned").manifest().active)
    }

    /// Runs `f` against the registry, if this controller has one.
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> Option<T> {
        self.registry
            .as_ref()
            .map(|r| f(&mut r.lock().expect("registry poisoned")))
    }
}

/// Whether the `/v1/reload` body carries `"immediate": true` — the
/// canary bypass the rolling-rollback path uses to force replicas back
/// onto a known-good incumbent without re-canarying it. Malformed bodies
/// answer `false` here and fail with a `400` in the staging parse.
pub(crate) fn reload_is_immediate(body: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(body) else {
        return false;
    };
    match json::parse(text) {
        Ok(Value::Obj(members)) => members
            .iter()
            .any(|(k, v)| k == "immediate" && v.as_bool() == Some(true)),
        _ => false,
    }
}

/// Parses the optional `/v1/reload` body: `{"path": "...", "version": N,
/// "immediate": bool}`, all fields optional, unknown fields rejected like
/// every other route.
fn parse_reload_body(body: &[u8]) -> Result<(Option<PathBuf>, Option<u64>), Response> {
    if body.iter().all(u8::is_ascii_whitespace) {
        return Ok((None, None));
    }
    let bad = |code: &str, msg: &str| Response::error(400, code, msg);
    let text = std::str::from_utf8(body)
        .map_err(|_| bad("bad_encoding", "request body is not UTF-8"))?;
    let members = match json::parse(text) {
        Ok(Value::Obj(members)) => members,
        Ok(_) => return Err(bad("bad_request", "request body must be a JSON object")),
        Err(e) => return Err(bad("bad_json", &format!("malformed JSON: {e}"))),
    };
    let mut path = None;
    let mut version = None;
    for (key, value) in &members {
        match key.as_str() {
            "path" => {
                let s = value
                    .as_str()
                    .ok_or_else(|| bad("bad_field", "`path` must be a string"))?;
                path = Some(PathBuf::from(s));
            }
            "version" => {
                version = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| bad("bad_field", "`version` must be a non-negative integer"))?,
                );
            }
            "immediate" => {
                value
                    .as_bool()
                    .ok_or_else(|| bad("bad_field", "`immediate` must be a boolean"))?;
            }
            other => {
                return Err(bad(
                    "unknown_field",
                    &format!("unknown field `{other}` (allowed: path, version, immediate)"),
                ))
            }
        }
    }
    Ok((path, version))
}

/// Maps a registry error to the HTTP response the mutating endpoints use.
pub fn registry_error_response(e: &RegistryError) -> Response {
    let status = match e {
        RegistryError::Quarantined { .. } => 409,
        RegistryError::NotFound(_) => 404,
        _ => 500,
    };
    Response::error(status, "registry_error", &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_picks_the_tail() {
        assert_eq!(p99(&[]), 0);
        assert_eq!(p99(&[7]), 7);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(p99(&samples), 99);
    }

    #[test]
    fn reload_body_parses() {
        assert_eq!(parse_reload_body(b"").unwrap(), (None, None));
        assert_eq!(parse_reload_body(b"  \n").unwrap(), (None, None));
        let (p, v) = parse_reload_body(br#"{"path":"/tmp/x.airm","version":4}"#).unwrap();
        assert_eq!(p, Some(PathBuf::from("/tmp/x.airm")));
        assert_eq!(v, Some(4));
        assert_eq!(parse_reload_body(br#"{"nope":1}"#).unwrap_err().status, 400);
        assert_eq!(parse_reload_body(b"[1]").unwrap_err().status, 400);
        assert_eq!(
            parse_reload_body(br#"{"version":-1}"#).unwrap_err().status,
            400
        );
    }

    #[test]
    fn default_config_disables_canary() {
        let cfg = RolloutConfig::default();
        assert_eq!(cfg.split_ppm, 0);
        assert_eq!(cfg.min_samples, 50);
    }
}
