//! `airchitect-chaos` — a zero-dependency failpoint framework for fault
//! injection, in the spirit of the `fail` crate.
//!
//! Library code marks its real fault surfaces with
//! [`fail_point!`]`("name")` (or the error-returning form
//! `fail_point!("name", |e| Err(e.into()))`). With the `enabled` cargo
//! feature off — the default, and what release builds ship — both macro
//! arms expand to *nothing*: no branch, no registry, zero overhead. With
//! `--features chaos` (workspace crates forward it to `enabled` here), a
//! process-global registry decides at runtime whether each point fires.
//!
//! Points are configured programmatically ([`configure_str`], [`set`]) or
//! via the `AIRCHITECT_CHAOS` environment variable, read once at first
//! use. The grammar is `name=action[:probability][:count]`, `;`-separated:
//!
//! ```text
//! AIRCHITECT_CHAOS='serve.reload.read=err(other):1:1;serve.batch.dispatch=delay(20):0.1'
//! ```
//!
//! Actions:
//!
//! * `err(kind)` — inject an [`std::io::Error`] of the given kind
//!   (`interrupted`, `wouldblock`, `notfound`, `timedout`, `brokenpipe`,
//!   `connreset`, `other`); only points with a handler arm surface it.
//! * `delay(ms)` — sleep the calling thread (latency spike).
//! * `panic` — panic the calling thread (exercises panic isolation).
//! * `off` — remove the point.
//!
//! `probability` (default 1.0) gates each evaluation through a
//! deterministic xorshift PRNG (seedable via `AIRCHITECT_CHAOS_SEED`);
//! `count` (default unlimited) caps total firings — `:1` is a one-shot
//! trigger. Per-point fired counters ([`fired`]) let tests assert exactly
//! how many injections landed.
//!
//! Instrumented point names (see DESIGN.md §11 for per-point semantics):
//!
//! * persistence — `persist.read`, `persist.write`, `dse.shard`,
//!   `dse.shard.save`;
//! * single-process serving — `serve.listener.accept`, `serve.conn.read`,
//!   `serve.conn.write`, `serve.batch.dispatch`, `serve.infer`,
//!   `serve.reload.read`;
//! * cluster mode — `cluster.probe` (health probe fails as unreachable),
//!   `cluster.spawn` (replica spawn fails, driving restart backoff),
//!   `cluster.proxy.accept` (router accept loop), `cluster.proxy.read`
//!   (routed attempt fails before the replica, forcing failover),
//!   `cluster.proxy.write` (router drops the client connection instead
//!   of writing the response).

#![warn(missing_docs)]

/// Injects a failure at a named point — or nothing at all when the
/// `enabled` feature is off.
///
/// Two forms:
///
/// * `fail_point!("name")` — delay and panic actions take effect; an
///   injected error is counted but cannot be surfaced.
/// * `fail_point!("name", |e| EXPR)` — on an injected [`std::io::Error`]
///   the macro does `return EXPR`, so the closure maps the error into the
///   enclosing function's return type.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if let Some(_chaos_err) = $crate::hit($name) {
            // Error actions need the handler arm to surface; delay and
            // panic already took effect inside `hit`.
        }
    };
    ($name:expr, $handler:expr) => {
        if let Some(chaos_err) = $crate::hit($name) {
            return ($handler)(chaos_err);
        }
    };
}

/// Injects a failure at a named point — or nothing at all when the
/// `enabled` feature is off (this variant: both arms expand to nothing).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        // Evaluate (and discard) the name so call sites passing it via a
        // variable do not trip `unused_variables` in chaos-free builds.
        let _ = $name;
    };
    ($name:expr, $handler:expr) => {
        let _ = $name;
    };
}

/// Whether failpoints are compiled into this build.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What a firing point does to its caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Inject an `io::Error` of this kind (handler arm required to
        /// surface it).
        Err(std::io::ErrorKind),
        /// Sleep the calling thread for this many milliseconds.
        Delay(u64),
        /// Panic the calling thread.
        Panic,
    }

    /// Runtime configuration of one failpoint.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct PointSpec {
        /// Effect when the point fires.
        pub action: Action,
        /// Chance each evaluation fires, `0.0..=1.0`.
        pub probability: f64,
        /// Remaining firings; `None` is unlimited, `Some(1)` a one-shot.
        pub remaining: Option<u64>,
    }

    impl PointSpec {
        /// An always-on, unlimited spec for `action`.
        pub fn always(action: Action) -> Self {
            Self {
                action,
                probability: 1.0,
                remaining: None,
            }
        }
    }

    struct Registry {
        specs: HashMap<String, PointSpec>,
        fired: HashMap<String, u64>,
        rng: u64,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let seed = std::env::var("AIRCHITECT_CHAOS_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            let mut reg = Registry {
                specs: HashMap::new(),
                fired: HashMap::new(),
                rng: seed | 1,
            };
            if let Ok(cfg) = std::env::var("AIRCHITECT_CHAOS") {
                // A bad env spec must not take down the host process; it
                // simply configures nothing.
                let _ = apply_str(&mut reg.specs, &cfg);
            }
            Mutex::new(reg)
        })
    }

    fn parse_kind(kind: &str) -> Result<std::io::ErrorKind, String> {
        use std::io::ErrorKind as K;
        Ok(match kind {
            "interrupted" => K::Interrupted,
            "wouldblock" => K::WouldBlock,
            "notfound" => K::NotFound,
            "timedout" => K::TimedOut,
            "brokenpipe" => K::BrokenPipe,
            "connreset" => K::ConnectionReset,
            "other" => K::Other,
            _ => return Err(format!("unknown io error kind `{kind}`")),
        })
    }

    fn parse_action(text: &str) -> Result<Option<Action>, String> {
        if text == "panic" {
            return Ok(Some(Action::Panic));
        }
        if text == "off" {
            return Ok(None);
        }
        let (name, rest) = text
            .split_once('(')
            .ok_or_else(|| format!("malformed action `{text}`"))?;
        let arg = rest
            .strip_suffix(')')
            .ok_or_else(|| format!("unclosed action `{text}`"))?;
        match name {
            "err" => Ok(Some(Action::Err(parse_kind(arg)?))),
            "delay" => {
                let ms = arg
                    .parse::<u64>()
                    .map_err(|_| format!("bad delay `{arg}`"))?;
                Ok(Some(Action::Delay(ms)))
            }
            _ => Err(format!("unknown action `{name}`")),
        }
    }

    fn apply_str(specs: &mut HashMap<String, PointSpec>, cfg: &str) -> Result<(), String> {
        for entry in cfg.split(';').filter(|e| !e.trim().is_empty()) {
            let (name, value) = entry
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("missing `=` in `{entry}`"))?;
            let mut parts = value.split(':');
            let action_text = parts.next().expect("split yields at least one part");
            let probability = match parts.next() {
                None => 1.0,
                Some(p) => {
                    let p = p
                        .parse::<f64>()
                        .map_err(|_| format!("bad probability `{p}`"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability `{p}` outside 0..=1"));
                    }
                    p
                }
            };
            let remaining = match parts.next() {
                None => None,
                Some(c) => Some(
                    c.parse::<u64>()
                        .map_err(|_| format!("bad count `{c}`"))?,
                ),
            };
            if let Some(extra) = parts.next() {
                return Err(format!("trailing `:{extra}` in `{entry}`"));
            }
            match parse_action(action_text)? {
                Some(action) => {
                    specs.insert(
                        name.trim().to_string(),
                        PointSpec {
                            action,
                            probability,
                            remaining,
                        },
                    );
                }
                None => {
                    specs.remove(name.trim());
                }
            }
        }
        Ok(())
    }

    /// Merges `cfg` (the `AIRCHITECT_CHAOS` grammar) into the registry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry; earlier valid
    /// entries in the same string are already applied.
    pub fn configure_str(cfg: &str) -> Result<(), String> {
        let mut reg = registry().lock().expect("chaos registry poisoned");
        apply_str(&mut reg.specs, cfg)
    }

    /// Sets one point's spec, replacing any existing configuration.
    pub fn set(name: &str, spec: PointSpec) {
        registry()
            .lock()
            .expect("chaos registry poisoned")
            .specs
            .insert(name.to_string(), spec);
    }

    /// Removes one point (it stops firing; its counter survives).
    pub fn remove(name: &str) {
        registry()
            .lock()
            .expect("chaos registry poisoned")
            .specs
            .remove(name);
    }

    /// Removes every configured point, keeping the fired counters.
    pub fn clear() {
        registry()
            .lock()
            .expect("chaos registry poisoned")
            .specs
            .clear();
    }

    /// Removes every configured point *and* zeroes the fired counters.
    pub fn reset() {
        let mut reg = registry().lock().expect("chaos registry poisoned");
        reg.specs.clear();
        reg.fired.clear();
    }

    /// How many times `name` has fired since the last [`reset`].
    pub fn fired(name: &str) -> u64 {
        registry()
            .lock()
            .expect("chaos registry poisoned")
            .fired
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Total firings across all points since the last [`reset`].
    pub fn total_fired() -> u64 {
        registry()
            .lock()
            .expect("chaos registry poisoned")
            .fired
            .values()
            .sum()
    }

    /// xorshift64*: deterministic, no dependencies, good enough to gate
    /// probabilistic injections.
    fn next_f64(state: &mut u64) -> f64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Evaluates the point: decides whether it fires, applies delay/panic
    /// inline, and returns the injected error for `Err` actions.
    ///
    /// Used by the `fail_point!` expansion; call it directly only from
    /// harness code.
    #[doc(hidden)]
    pub fn hit(name: &str) -> Option<std::io::Error> {
        let action = {
            let mut reg = registry().lock().expect("chaos registry poisoned");
            let spec = match reg.specs.get(name) {
                Some(s) => *s,
                None => return None,
            };
            if spec.remaining == Some(0) {
                return None;
            }
            if spec.probability < 1.0 && next_f64(&mut reg.rng) >= spec.probability {
                return None;
            }
            if let Some(left) = spec.remaining {
                reg.specs
                    .get_mut(name)
                    .expect("checked above")
                    .remaining = Some(left - 1);
            }
            *reg.fired.entry(name.to_string()).or_insert(0) += 1;
            spec.action
        };
        // The lock is released: delays and panics must not serialize (or
        // poison) the whole registry.
        match action {
            Action::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                None
            }
            Action::Panic => panic!("chaos failpoint `{name}`"),
            Action::Err(kind) => Some(std::io::Error::new(
                kind,
                format!("chaos injected at `{name}`"),
            )),
        }
    }
}

#[cfg(feature = "enabled")]
pub use imp::{
    clear, configure_str, fired, hit, remove, reset, set, total_fired, Action, PointSpec,
};

#[cfg(not(feature = "enabled"))]
mod stubs {
    /// Stub: failpoints are compiled out of this build.
    ///
    /// # Errors
    ///
    /// Always errors, so harnesses that require injection fail loudly
    /// instead of silently testing nothing.
    pub fn configure_str(_cfg: &str) -> Result<(), String> {
        Err("chaos failpoints are not compiled in (rebuild with `--features chaos`)".into())
    }

    /// Stub: no points exist, so nothing has fired.
    pub fn fired(_name: &str) -> u64 {
        0
    }

    /// Stub: no points exist, so nothing has fired.
    pub fn total_fired() -> u64 {
        0
    }

    /// Stub: nothing to clear.
    pub fn clear() {}

    /// Stub: nothing to reset.
    pub fn reset() {}

    /// Stub: nothing to remove.
    pub fn remove(_name: &str) {}
}

#[cfg(not(feature = "enabled"))]
pub use stubs::{clear, configure_str, fired, remove, reset, total_fired};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    // Each test uses unique point names: the registry is process-global
    // and libtest runs tests concurrently.

    fn io_demo(point: &str) -> std::io::Result<u32> {
        fail_point!(point, Err);
        Ok(7)
    }

    #[test]
    fn unconfigured_points_never_fire() {
        assert_eq!(io_demo("t.none").unwrap(), 7);
        assert_eq!(fired("t.none"), 0);
    }

    #[test]
    fn error_injection_surfaces_through_the_handler() {
        set(
            "t.err",
            PointSpec::always(Action::Err(ErrorKind::Interrupted)),
        );
        let err = io_demo("t.err").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted);
        assert_eq!(fired("t.err"), 1);
        remove("t.err");
        assert_eq!(io_demo("t.err").unwrap(), 7);
    }

    #[test]
    fn one_shot_fires_exactly_once() {
        set(
            "t.oneshot",
            PointSpec {
                action: Action::Err(ErrorKind::Other),
                probability: 1.0,
                remaining: Some(1),
            },
        );
        assert!(io_demo("t.oneshot").is_err());
        assert_eq!(io_demo("t.oneshot").unwrap(), 7);
        assert_eq!(io_demo("t.oneshot").unwrap(), 7);
        assert_eq!(fired("t.oneshot"), 1);
        remove("t.oneshot");
    }

    #[test]
    fn probability_zero_never_fires() {
        set(
            "t.p0",
            PointSpec {
                action: Action::Err(ErrorKind::Other),
                probability: 0.0,
                remaining: None,
            },
        );
        for _ in 0..100 {
            assert!(io_demo("t.p0").is_ok());
        }
        assert_eq!(fired("t.p0"), 0);
        remove("t.p0");
    }

    #[test]
    fn fractional_probability_fires_sometimes() {
        set(
            "t.phalf",
            PointSpec {
                action: Action::Err(ErrorKind::Other),
                probability: 0.5,
                remaining: None,
            },
        );
        let errs = (0..200).filter(|_| io_demo("t.phalf").is_err()).count();
        assert!(
            (40..=160).contains(&errs),
            "p=0.5 fired {errs}/200 times — PRNG badly skewed"
        );
        remove("t.phalf");
    }

    #[test]
    fn delay_actions_sleep_the_caller() {
        set("t.delay", PointSpec::always(Action::Delay(30)));
        let t0 = std::time::Instant::now();
        fail_point!("t.delay");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        remove("t.delay");
    }

    #[test]
    fn panic_actions_panic_with_the_point_name() {
        set("t.panic", PointSpec::always(Action::Panic));
        let caught = std::panic::catch_unwind(|| fail_point!("t.panic"));
        remove("t.panic");
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("t.panic"), "{msg}");
    }

    #[test]
    fn config_string_round_trips() {
        configure_str("t.cfg.a=err(timedout):0.25:3; t.cfg.b=delay(5)").unwrap();
        configure_str("t.cfg.a=off").unwrap();
        assert!(io_demo("t.cfg.a").is_ok(), "`off` removes the point");
        fail_point!("t.cfg.b"); // fires (delay 5ms), must not error
        assert_eq!(fired("t.cfg.b"), 1);
        remove("t.cfg.b");

        assert!(configure_str("nonsense").is_err());
        assert!(configure_str("x=warp(9)").is_err());
        assert!(configure_str("x=err(other):1.5").is_err());
        assert!(configure_str("x=err(other):1:2:3").is_err());
        assert!(configure_str("x=err(gremlins)").is_err());
    }

    #[test]
    fn plain_form_counts_error_actions_without_surfacing() {
        set(
            "t.plain",
            PointSpec::always(Action::Err(ErrorKind::Other)),
        );
        fail_point!("t.plain"); // no handler: recorded, not returned
        assert_eq!(fired("t.plain"), 1);
        remove("t.plain");
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    #[test]
    fn disabled_build_is_inert() {
        assert!(!super::is_enabled());
        assert!(super::configure_str("x=panic").is_err());
        assert_eq!(super::fired("x"), 0);
        // The macro must expand to nothing (and not evaluate the handler).
        fn f() -> std::io::Result<()> {
            crate::fail_point!("x", |e| Err(e));
            Ok(())
        }
        assert!(f().is_ok());
    }
}
