//! End-to-end gradient check: backprop through the full network must match
//! finite differences of the loss.

use airchitect_nn::loss::softmax_cross_entropy;
use airchitect_nn::network::Sequential;
use airchitect_tensor::Matrix;

/// Loss of `net` on a fixed batch.
fn loss_of(net: &mut Sequential, x: &Matrix, labels: &[u32]) -> f32 {
    let logits = net.forward(x, false);
    softmax_cross_entropy(&logits, labels).0
}

fn grad_check(mut net: Sequential, x: Matrix, labels: Vec<u32>) {
    // Analytic gradients.
    let logits = net.forward(&x, true);
    let (_, grad) = softmax_cross_entropy(&logits, &labels);
    net.backward(&grad);
    let analytic: Vec<Vec<f32>> = net.params_mut().iter().map(|p| p.grad.clone()).collect();

    // Finite differences on a subsample of each parameter tensor. Individual
    // entries may cross a ReLU kink under perturbation (the FD estimate is
    // then wrong by construction), so the check is statistical: the vast
    // majority of entries must match tightly.
    let eps = 2e-3f32;
    let n_params = analytic.len();
    let mut checked = 0usize;
    let mut mismatched = 0usize;
    #[allow(clippy::needless_range_loop)]
    for pi in 0..n_params {
        let len = analytic[pi].len();
        let stride = (len / 25).max(1);
        for i in (0..len).step_by(stride) {
            let orig = net.params_mut()[pi].value[i];
            net.params_mut()[pi].value[i] = orig + eps;
            let lp = loss_of(&mut net, &x, &labels);
            net.params_mut()[pi].value[i] = orig - eps;
            let lm = loss_of(&mut net, &x, &labels);
            net.params_mut()[pi].value[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = analytic[pi][i];
            let denom = fd.abs().max(an.abs()).max(1e-2);
            checked += 1;
            if (fd - an).abs() / denom > 0.25 {
                mismatched += 1;
            }
        }
    }
    assert!(checked > 20, "gradient check sampled too few entries");
    let rate = mismatched as f64 / checked as f64;
    assert!(
        rate < 0.1,
        "{mismatched}/{checked} sampled gradients disagree with finite differences"
    );
}

#[test]
fn mlp_gradients_match_finite_differences() {
    let net = Sequential::mlp(3, &[6], 4, 11);
    let x = Matrix::from_rows(&[&[0.5, -1.2, 0.3], &[1.1, 0.2, -0.4], &[-0.3, 0.8, 1.5]]);
    grad_check(net, x, vec![0, 3, 1]);
}

#[test]
fn embedding_mlp_gradients_match_finite_differences() {
    let net = Sequential::embedding_mlp(3, 8, 4, 10, 5, 13);
    let x = Matrix::from_rows(&[&[0.0, 3.0, 7.0], &[2.0, 2.0, 1.0]]);
    grad_check(net, x, vec![4, 0]);
}
