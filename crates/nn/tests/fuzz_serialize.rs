//! Failure injection for the model codec: arbitrary or mutated bytes must
//! never panic the decoder, and surviving mutants must stay structurally
//! sound (predictable without panics).

use airchitect_nn::network::Sequential;
use airchitect_nn::serialize;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let _ = serialize::from_bytes(&bytes);
    }

    /// Mutating a valid model blob either fails cleanly or yields a network
    /// that still predicts without panicking (weight bit-flips are
    /// legitimately undetectable).
    #[test]
    fn mutated_models_fail_cleanly_or_stay_usable(
        flip_at in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let net = Sequential::embedding_mlp(3, 8, 4, 8, 5, 1);
        let mut bytes = serialize::to_bytes(&net).to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= xor;
        if let Ok(decoded) = serialize::from_bytes(&bytes) {
            if decoded.in_dim() == 3 {
                let label = decoded.predict_one(&[0.0, 3.0, 7.0]);
                prop_assert!((label as usize) < decoded.out_dim().max(1));
            }
        }
    }

    /// Truncations at every length fail cleanly.
    #[test]
    fn every_truncation_fails_cleanly(keep_frac in 0.0f64..1.0) {
        let net = Sequential::mlp(2, &[4], 3, 2);
        let bytes = serialize::to_bytes(&net);
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(serialize::from_bytes(&bytes[..keep]).is_err());
    }
}
