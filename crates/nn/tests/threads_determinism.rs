//! Training determinism across kernel thread counts.
//!
//! The compute engine partitions GEMMs over a fixed block grid, so the
//! reduction order — and therefore every float in the trained model — is
//! independent of `TrainConfig::threads`. These tests pin that guarantee
//! at the trainer level: same seed ⇒ byte-identical model for any thread
//! count, including through a checkpoint/resume cycle.

use airchitect_data::Dataset;
use airchitect_nn::network::Sequential;
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::{fit, fit_resumable, ResumePoint, TrainConfig};

/// Two well-separated blobs: trivially learnable, fast to train.
fn blobs(n: usize) -> Dataset {
    let mut ds = Dataset::new(2, 2).unwrap();
    for i in 0..n {
        let t = (i as f32 * 0.37).sin() * 0.1;
        if i % 2 == 0 {
            ds.push(&[1.0 + t, 1.0 - t], 0).unwrap();
        } else {
            ds.push(&[-1.0 - t, -1.0 + t], 1).unwrap();
        }
    }
    ds
}

fn config(threads: usize) -> TrainConfig {
    TrainConfig {
        epochs: 5,
        batch_size: 32,
        lr_decay: 0.9,
        threads,
        ..Default::default()
    }
}

#[test]
fn fit_is_byte_identical_across_thread_counts() {
    let ds = blobs(200);
    let mut reference = Sequential::mlp(2, &[8, 4], 2, 3);
    let history = fit(&mut reference, &ds, Some(&ds), &config(1)).unwrap();

    for threads in [2, 4] {
        let mut net = Sequential::mlp(2, &[8, 4], 2, 3);
        let h = fit(&mut net, &ds, Some(&ds), &config(threads)).unwrap();
        // Histories (losses, accuracies) and the full model — values,
        // gradients, and Adam moment buffers — must match bit for bit.
        assert_eq!(h, history, "history diverged at {threads} threads");
        assert_eq!(
            net.params(),
            reference.params(),
            "model diverged at {threads} threads"
        );
    }
}

#[test]
fn embedding_fit_is_byte_identical_across_thread_counts() {
    let mut ds = Dataset::new(1, 3).unwrap();
    for i in 0..120 {
        ds.push(&[(i % 3) as f32], (i % 3) as u32).unwrap();
    }
    let mut reference = Sequential::embedding_mlp(1, 4, 8, 16, 3, 5);
    fit(&mut reference, &ds, None, &config(1)).unwrap();

    for threads in [2, 4] {
        let mut net = Sequential::embedding_mlp(1, 4, 8, 16, 3, 5);
        fit(&mut net, &ds, None, &config(threads)).unwrap();
        assert_eq!(net.params(), reference.params());
    }
}

#[test]
fn resume_is_bit_identical_with_multiple_threads() {
    // The PR 1 guarantee — a resumed run finishes bit-identical to an
    // uninterrupted one — must hold when the kernels run multi-threaded,
    // and even when the interrupted and resumed halves use different
    // thread counts.
    let ds = blobs(200);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 32,
        lr_decay: 0.9,
        threads: 4,
        ..Default::default()
    };
    let mut full = Sequential::mlp(2, &[8], 2, 3);
    fit(&mut full, &ds, None, &cfg).unwrap();

    let mut snap: Option<(Sequential, Optimizer)> = None;
    let mut partial = Sequential::mlp(2, &[8], 2, 3);
    fit_resumable(
        &mut partial,
        &ds,
        None,
        &TrainConfig {
            epochs: 5,
            threads: 2,
            ..cfg
        },
        None,
        |c| {
            if c.epoch == 4 {
                snap = Some((c.network.clone(), *c.optimizer));
            }
            Ok(())
        },
    )
    .unwrap();

    let (mut resumed, optimizer) = snap.unwrap();
    let history = fit_resumable(
        &mut resumed,
        &ds,
        None,
        &cfg,
        Some(ResumePoint {
            next_epoch: 5,
            optimizer,
        }),
        |_| Ok(()),
    )
    .unwrap();
    assert_eq!(history.epochs.len(), 3);
    assert_eq!(resumed, full);
}

#[test]
fn tracing_does_not_perturb_thread_determinism() {
    // Telemetry must be an observer: with recording enabled, training at 1
    // and 4 threads still produces byte-identical models, and both match an
    // untraced run. (Other tests in this binary may also record while the
    // flag is on — harmless, since metrics are write-only counters — so no
    // exact counter values are asserted here.)
    let ds = blobs(200);
    let mut untraced = Sequential::mlp(2, &[8, 4], 2, 3);
    let untraced_history = fit(&mut untraced, &ds, Some(&ds), &config(1)).unwrap();

    airchitect_telemetry::enable();
    let mut traced_1 = Sequential::mlp(2, &[8, 4], 2, 3);
    let history_1 = fit(&mut traced_1, &ds, Some(&ds), &config(1)).unwrap();
    let mut traced_4 = Sequential::mlp(2, &[8, 4], 2, 3);
    let history_4 = fit(&mut traced_4, &ds, Some(&ds), &config(4)).unwrap();
    airchitect_telemetry::disable();

    assert_eq!(history_1, untraced_history, "tracing changed the history");
    assert_eq!(
        traced_1.params(),
        untraced.params(),
        "tracing changed the trained model"
    );
    assert_eq!(
        traced_1.params(),
        traced_4.params(),
        "tracing broke thread determinism"
    );
    assert_eq!(history_1, history_4);
    assert!(airchitect_telemetry::metrics::TRAIN_BATCHES.get() > 0);
    assert!(airchitect_telemetry::metrics::TRAIN_BATCH_US.snapshot().count > 0);
}

#[test]
fn zero_threads_is_a_config_error() {
    let ds = blobs(50);
    let mut net = Sequential::mlp(2, &[4], 2, 1);
    assert!(fit(&mut net, &ds, None, &config(0)).is_err());
}
