//! Proof that the training hot loop is allocation-free after warm-up.
//!
//! A counting wrapper around the system allocator tallies every `alloc`
//! and `realloc`. After a few warm-up batches have sized the workspace,
//! the persistent batch buffers, and the kernels' pack scratch, further
//! full-size batches must not touch the allocator at all.
//!
//! This file intentionally holds a single test: the counter is global, so
//! a concurrently running test would make it flaky.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use airchitect_data::Dataset;
use airchitect_nn::network::{Sequential, Workspace};
use airchitect_nn::quant::{QuantArena, QuantizedNetwork};
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::gather_into;
use airchitect_nn::{loss, train};
use airchitect_tensor::{ops, Matrix};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One training batch through the zero-allocation path, exactly as
/// `fit_resumable`'s hot loop performs it — including the telemetry
/// instrumentation, so this test also proves recording stays off the heap.
#[allow(clippy::too_many_arguments)]
fn train_batch(
    network: &mut Sequential,
    ds: &Dataset,
    indices: &[usize],
    ws: &mut Workspace,
    batch_x: &mut Matrix,
    labels: &mut Vec<u32>,
    loss_grad: &mut Matrix,
    preds: &mut Vec<u32>,
    optimizer: &mut Optimizer,
) -> f32 {
    let _batch_timer = airchitect_telemetry::metrics::TRAIN_BATCH_US.start_timer();
    airchitect_telemetry::metrics::TRAIN_BATCHES.inc();
    gather_into(ds, indices, batch_x, labels);
    let logits = network.forward_ws(batch_x, ws, true);
    let loss = loss::softmax_cross_entropy_into(logits, labels, loss_grad);
    ops::argmax_rows_into(logits, preds);
    network.backward_ws(loss_grad, ws);
    let ctx = optimizer.prepare();
    network.for_each_param(|p| ctx.apply(p));
    loss
}

#[test]
fn steady_state_training_batches_do_not_allocate() {
    let mut ds = Dataset::new(3, 4).unwrap();
    for i in 0..256 {
        let f = i as f32;
        ds.push(&[f % 7.0, (f * 0.3) % 5.0, f % 11.0], (i % 4) as u32)
            .unwrap();
    }
    let mut network = Sequential::mlp(3, &[16, 8], 4, 1);
    let mut optimizer = Optimizer::adam(1e-3);
    let mut ws = Workspace::with_threads(1);
    let mut batch_x = Matrix::zeros(1, 1);
    let mut labels: Vec<u32> = Vec::new();
    let mut loss_grad = Matrix::zeros(1, 1);
    let mut preds: Vec<u32> = Vec::new();

    let batch: Vec<usize> = (0..64).collect();

    // Warm-up: size every buffer (workspace activations/gradients, batch
    // buffers, kernel pack scratch).
    for _ in 0..3 {
        train_batch(
            &mut network,
            &ds,
            &batch,
            &mut ws,
            &mut batch_x,
            &mut labels,
            &mut loss_grad,
            &mut preds,
            &mut optimizer,
        );
    }

    // Telemetry is disabled by default: batches must not allocate AND the
    // instrumentation must be a complete no-op (no counter increments, no
    // histogram samples).
    assert!(!airchitect_telemetry::enabled());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut loss_sink = 0.0f32;
    for _ in 0..10 {
        loss_sink += train_batch(
            &mut network,
            &ds,
            &batch,
            &mut ws,
            &mut batch_x,
            &mut labels,
            &mut loss_grad,
            &mut preds,
            &mut optimizer,
        );
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(loss_sink.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state batches must perform zero heap allocations"
    );
    assert_eq!(
        airchitect_telemetry::metrics::TRAIN_BATCHES.get(),
        0,
        "disabled telemetry must not record counters"
    );
    assert_eq!(
        airchitect_telemetry::metrics::TRAIN_BATCH_US.snapshot().count,
        0,
        "disabled telemetry must not record histogram samples"
    );

    // Enabled telemetry (metrics only, no sink) records through atomics and
    // must keep the hot loop allocation-free.
    airchitect_telemetry::enable();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        loss_sink += train_batch(
            &mut network,
            &ds,
            &batch,
            &mut ws,
            &mut batch_x,
            &mut labels,
            &mut loss_grad,
            &mut preds,
            &mut optimizer,
        );
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    airchitect_telemetry::disable();
    assert!(loss_sink.is_finite());
    assert_eq!(
        after - before,
        0,
        "enabled metrics recording must stay allocation-free"
    );
    assert_eq!(airchitect_telemetry::metrics::TRAIN_BATCHES.get(), 10);
    assert_eq!(
        airchitect_telemetry::metrics::TRAIN_BATCH_US.snapshot().count,
        10
    );
    airchitect_telemetry::reset();

    // Inference through a warmed workspace is allocation-free too.
    let preds_a = train::predict_dataset(&mut network, &ds);
    gather_into(&ds, &batch, &mut batch_x, &mut labels);
    let mut infer_ws = Workspace::new();
    network.infer_ws(&batch_x, &mut infer_ws); // warm-up
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    ops::argmax_rows_into(network.infer_ws(&batch_x, &mut infer_ws), &mut preds);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "warmed inference must not allocate");
    assert_eq!(
        &preds_a[..64],
        &preds[..],
        "paths must agree on predictions"
    );

    // The int8 single-query path is allocation-free as well: once the
    // arena has been sized by a first query against this network's
    // shape, further queries — including memo misses, which write into
    // the preallocated memo storage, and every ranking accessor — must
    // not touch the allocator.
    let emb_net = Sequential::embedding_mlp(3, 8, 4, 16, 6, 17);
    let quant = QuantizedNetwork::from_network(&emb_net).unwrap();
    let mut arena = QuantArena::new();
    quant.infer(&[1, 2, 3], &mut arena); // warm-up sizes the arena
    let _ = arena.ranked();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut sink = 0u32;
    for i in 0..32u8 {
        quant.infer(&[i % 8, (i * 3) % 8, (i * 5) % 8], &mut arena);
        sink ^= arena.top1();
        sink ^= arena.top_k(4).len() as u32;
        sink ^= arena.ranked()[0];
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(sink != u32::MAX);
    assert_eq!(
        after - before,
        0,
        "warmed quantized queries must perform zero heap allocations"
    );
}
