//! Property-based tests for the `AIQN` quantized-network codec: for
//! arbitrary network shapes and seeds the serialization must be
//! deterministic, roundtrip byte-identically, and the loaded artifact
//! must infer bit-for-bit like the original.

use airchitect_nn::network::Sequential;
use airchitect_nn::quant::{QuantArena, QuantizedNetwork};
use proptest::prelude::*;

proptest! {
    /// `to_bytes ∘ from_bytes` is the identity on the byte level, and a
    /// reloaded artifact produces bit-identical logits for any query —
    /// including out-of-vocab bins, which clamp.
    #[test]
    fn roundtrip_is_byte_identical_and_infers_identically(
        (features, vocab, embed_dim, hidden, classes, seed, bins) in
            (1usize..5, 2usize..10, 1usize..6, 1usize..24, 2usize..12, any::<u64>())
                .prop_flat_map(|(f, v, e, h, c, s)| (
                    Just(f), Just(v), Just(e), Just(h), Just(c), Just(s),
                    proptest::collection::vec(any::<u8>(), f),
                ))
    ) {
        let net = Sequential::embedding_mlp(features, vocab, embed_dim, hidden, classes, seed);
        let quant = QuantizedNetwork::from_network(&net).unwrap();
        let bytes = quant.to_bytes();
        let loaded = QuantizedNetwork::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&bytes, &loaded.to_bytes());

        let mut a = QuantArena::new();
        let mut b = QuantArena::new();
        quant.infer(&bins, &mut a);
        loaded.infer(&bins, &mut b);
        prop_assert_eq!(a.logits(), b.logits());
        prop_assert_eq!(a.top1(), b.top1());
        prop_assert_eq!(a.ranked(), b.ranked());
    }

    /// Any truncation of a valid artifact is rejected with an error —
    /// never a panic, never a silent partial load.
    #[test]
    fn truncations_are_rejected(
        (features, vocab, embed_dim, hidden, classes, seed, frac) in
            (1usize..4, 2usize..8, 1usize..5, 1usize..16, 2usize..8, any::<u64>(), 0.0f64..1.0),
    ) {
        let net = Sequential::embedding_mlp(features, vocab, embed_dim, hidden, classes, seed);
        let bytes = QuantizedNetwork::from_network(&net).unwrap().to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(QuantizedNetwork::from_bytes(&bytes[..cut]).is_err(), "cut {}", cut);
    }
}
