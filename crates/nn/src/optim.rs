//! Parameter optimizers: SGD (with optional momentum) and Adam.

use serde::{Deserialize, Serialize};

use crate::Param;

/// An optimizer configuration plus its step counter.
///
/// Per-parameter state (momentum / Adam moments) lives inside each
/// [`Param`], so one optimizer value can drive any number of parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (Kingma & Ba, 2015) with bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical stabilizer.
        eps: f32,
        /// Step counter (starts at 0; incremented by [`Optimizer::step`]).
        t: u64,
    },
}

impl Optimizer {
    /// SGD with the given learning rate and no momentum.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr, momentum: 0.0 }
    }

    /// Adam with the canonical hyper-parameters (lr 1e-3, betas 0.9/0.999).
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Multiplies the learning rate by `factor` (learning-rate schedules).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scale_lr(&mut self, factor: f32) {
        assert!(factor > 0.0, "factor must be positive");
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr *= factor,
        }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr,
        }
    }

    /// Applies one update to every parameter using its accumulated gradient,
    /// then zeroes the gradients.
    pub fn step(&mut self, params: Vec<&mut Param>) {
        let ctx = self.prepare();
        for p in params {
            ctx.apply(p);
        }
    }

    /// Advances the step counter once and captures the coefficients for
    /// this step as a [`StepCtx`].
    ///
    /// Together with [`StepCtx::apply`] this is the allocation-free
    /// equivalent of [`Optimizer::step`]: the training loop calls
    /// `prepare()` once per batch and then applies the context to each
    /// parameter as it visits them, instead of collecting `Vec<&mut
    /// Param>`. The arithmetic is identical.
    pub fn prepare(&mut self) -> StepCtx {
        match self {
            Optimizer::Sgd { lr, momentum } => StepCtx::Sgd {
                lr: *lr,
                momentum: *momentum,
            },
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
            } => {
                *t += 1;
                StepCtx::Adam {
                    lr: *lr,
                    beta1: *beta1,
                    beta2: *beta2,
                    eps: *eps,
                    bc1: 1.0 - beta1.powi(*t as i32),
                    bc2: 1.0 - beta2.powi(*t as i32),
                }
            }
        }
    }
}

/// The per-step coefficients captured by [`Optimizer::prepare`], shared
/// by every parameter updated in that step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepCtx {
    /// SGD coefficients.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam coefficients with the step's bias corrections baked in.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical stabilizer.
        eps: f32,
        /// First-moment bias correction `1 − β₁ᵗ`.
        bc1: f32,
        /// Second-moment bias correction `1 − β₂ᵗ`.
        bc2: f32,
    },
}

impl StepCtx {
    /// Updates one parameter from its accumulated gradient, then zeroes
    /// the gradient. Bitwise-identical to the update inside
    /// [`Optimizer::step`].
    pub fn apply(&self, p: &mut Param) {
        match *self {
            StepCtx::Sgd { lr, momentum } => {
                if momentum == 0.0 {
                    for (v, &g) in p.value.iter_mut().zip(&p.grad) {
                        *v -= lr * g;
                    }
                } else {
                    for i in 0..p.value.len() {
                        p.m[i] = momentum * p.m[i] + p.grad[i];
                        p.value[i] -= lr * p.m[i];
                    }
                }
            }
            StepCtx::Adam {
                lr,
                beta1,
                beta2,
                eps,
                bc1,
                bc2,
            } => {
                for i in 0..p.value.len() {
                    let g = p.grad[i];
                    p.m[i] = beta1 * p.m[i] + (1.0 - beta1) * g;
                    p.v[i] = beta2 * p.v[i] + (1.0 - beta2) * g * g;
                    let mhat = p.m[i] / bc1;
                    let vhat = p.v[i] / bc2;
                    p.value[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 by feeding the analytic gradient.
    fn optimize_quadratic(mut opt: Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(vec![0.0]);
        for _ in 0..steps {
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            opt.step(vec![&mut p]);
        }
        p.value[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = optimize_quadratic(Optimizer::sgd(0.1), 100);
        assert!((x - 3.0).abs() < 1e-3, "sgd ended at {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let x = optimize_quadratic(
            Optimizer::Sgd {
                lr: 0.05,
                momentum: 0.9,
            },
            200,
        );
        assert!((x - 3.0).abs() < 1e-2, "momentum sgd ended at {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = optimize_quadratic(Optimizer::adam(0.1), 500);
        assert!((x - 3.0).abs() < 1e-2, "adam ended at {x}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::new(vec![1.0, 2.0]);
        p.grad = vec![0.5, -0.5];
        Optimizer::sgd(0.1).step(vec![&mut p]);
        assert_eq!(p.grad, vec![0.0, 0.0]);
    }

    #[test]
    fn scale_lr_applies_to_both_optimizers() {
        let mut sgd = Optimizer::sgd(0.1);
        sgd.scale_lr(0.5);
        assert!((sgd.lr() - 0.05).abs() < 1e-9);
        let mut adam = Optimizer::adam(1e-3);
        adam.scale_lr(0.1);
        assert!((adam.lr() - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn adam_increments_step_counter() {
        let mut opt = Optimizer::adam(0.001);
        let mut p = Param::new(vec![0.0]);
        p.grad[0] = 1.0;
        opt.step(vec![&mut p]);
        match opt {
            Optimizer::Adam { t, .. } => assert_eq!(t, 1),
            _ => unreachable!(),
        }
    }
}
