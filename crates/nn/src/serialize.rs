//! Binary save/load for trained networks.
//!
//! A small hand-rolled codec (magic `AINN`, version 1) keeps the dependency
//! set within the approved offline list — no serde data-format crate is
//! needed. Only values are stored; gradient and moment buffers are
//! re-zeroed on load (a loaded model is for inference or fresh fine-tuning).

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::layer::{Dense, Dropout, Embedding, Layer, Relu};
use crate::network::Sequential;
use crate::Param;

const MAGIC: &[u8; 4] = b"AINN";
const VERSION: u32 = 1;

const TAG_DENSE: u8 = 0;
const TAG_RELU: u8 = 1;
const TAG_EMBEDDING: u8 = 2;
const TAG_DROPOUT: u8 = 3;

/// Error produced by the model codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Malformed buffer.
    Corrupt(&'static str),
    /// Filesystem error, stringified.
    Io(String),
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::Corrupt(what) => write!(f, "corrupt model buffer: {what}"),
            ModelCodecError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ModelCodecError {}

impl From<std::io::Error> for ModelCodecError {
    fn from(e: std::io::Error) -> Self {
        ModelCodecError::Io(e.to_string())
    }
}

fn put_values(buf: &mut BytesMut, values: &[f32]) {
    buf.put_u64_le(values.len() as u64);
    for &v in values {
        buf.put_f32_le(v);
    }
}

fn get_values(buf: &mut &[u8]) -> Result<Vec<f32>, ModelCodecError> {
    if buf.remaining() < 8 {
        return Err(ModelCodecError::Corrupt("truncated length"));
    }
    let n = buf.get_u64_le();
    // Checked arithmetic: a corrupted length must not trigger a huge or
    // overflowing allocation.
    let need = n
        .checked_mul(4)
        .ok_or(ModelCodecError::Corrupt("length overflow"))?;
    if (buf.remaining() as u64) < need {
        return Err(ModelCodecError::Corrupt("truncated values"));
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// Serializes a network to bytes.
pub fn to_bytes(network: &Sequential) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(network.in_dim() as u32);
    buf.put_u32_le(network.out_dim() as u32);
    buf.put_u32_le(network.layers().len() as u32);
    for layer in network.layers() {
        match layer {
            Layer::Dense(d) => {
                buf.put_u8(TAG_DENSE);
                buf.put_u32_le(d.in_dim() as u32);
                buf.put_u32_le(d.out_dim() as u32);
                put_values(&mut buf, &d.weights().value);
                put_values(&mut buf, &d.bias().value);
            }
            Layer::Relu(_) => buf.put_u8(TAG_RELU),
            Layer::Dropout(d) => {
                buf.put_u8(TAG_DROPOUT);
                buf.put_f32_le(d.rate());
            }
            Layer::Embedding(e) => {
                buf.put_u8(TAG_EMBEDDING);
                buf.put_u32_le(e.num_features() as u32);
                buf.put_u32_le(e.vocab() as u32);
                buf.put_u32_le(e.embed_dim() as u32);
                put_values(&mut buf, &e.table().value);
            }
        }
    }
    buf.freeze()
}

/// Deserializes a network from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`ModelCodecError::Corrupt`] on malformed input.
pub fn from_bytes(mut buf: &[u8]) -> Result<Sequential, ModelCodecError> {
    if buf.remaining() < 20 {
        return Err(ModelCodecError::Corrupt("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ModelCodecError::Corrupt("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(ModelCodecError::Corrupt("unsupported version"));
    }
    let in_dim = buf.get_u32_le() as usize;
    let out_dim = buf.get_u32_le() as usize;
    let n_layers = buf.get_u32_le() as usize;
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        if buf.remaining() < 1 {
            return Err(ModelCodecError::Corrupt("truncated layer tag"));
        }
        match buf.get_u8() {
            TAG_DENSE => {
                if buf.remaining() < 8 {
                    return Err(ModelCodecError::Corrupt("truncated dense dims"));
                }
                let din = buf.get_u32_le() as usize;
                let dout = buf.get_u32_le() as usize;
                let w = get_values(&mut buf)?;
                let b = get_values(&mut buf)?;
                if w.len() != din * dout || b.len() != dout || din == 0 || dout == 0 {
                    return Err(ModelCodecError::Corrupt("dense size mismatch"));
                }
                layers.push(Layer::Dense(Dense::from_params(
                    din,
                    dout,
                    Param::new(w),
                    Param::new(b),
                )));
            }
            TAG_RELU => layers.push(Layer::Relu(Relu::new())),
            TAG_DROPOUT => {
                if buf.remaining() < 4 {
                    return Err(ModelCodecError::Corrupt("truncated dropout rate"));
                }
                let rate = buf.get_f32_le();
                if !(0.0..1.0).contains(&rate) {
                    return Err(ModelCodecError::Corrupt("dropout rate out of range"));
                }
                layers.push(Layer::Dropout(Dropout::new(rate, 0)));
            }
            TAG_EMBEDDING => {
                if buf.remaining() < 12 {
                    return Err(ModelCodecError::Corrupt("truncated embedding dims"));
                }
                let nf = buf.get_u32_le() as usize;
                let vocab = buf.get_u32_le() as usize;
                let dim = buf.get_u32_le() as usize;
                let table = get_values(&mut buf)?;
                if table.len() != nf * vocab * dim || nf == 0 || vocab == 0 || dim == 0 {
                    return Err(ModelCodecError::Corrupt("embedding size mismatch"));
                }
                layers.push(Layer::Embedding(Embedding::from_params(
                    nf,
                    vocab,
                    dim,
                    Param::new(table),
                )));
            }
            _ => return Err(ModelCodecError::Corrupt("unknown layer tag")),
        }
    }
    if buf.has_remaining() {
        return Err(ModelCodecError::Corrupt("trailing bytes"));
    }
    if layers.is_empty() {
        return Err(ModelCodecError::Corrupt("no layers"));
    }
    Ok(Sequential::from_layers(layers, in_dim, out_dim))
}

const STATE_MAGIC: &[u8; 4] = b"AIMS";
const STATE_VERSION: u32 = 1;

/// Serializes the per-parameter optimizer state (momentum / Adam moment
/// buffers) of `network` to bytes (magic `AIMS`).
///
/// [`to_bytes`] deliberately stores values only — inference artifacts stay
/// compact and a loaded model fine-tunes from fresh moments. Training
/// checkpoints pair the value blob with this state blob so a resumed run
/// continues bit-for-bit where it stopped.
pub fn state_to_bytes(network: &Sequential) -> Bytes {
    let params = network.params();
    let mut buf = BytesMut::new();
    buf.put_slice(STATE_MAGIC);
    buf.put_u32_le(STATE_VERSION);
    buf.put_u32_le(params.len() as u32);
    for p in params {
        let (m, v) = p.moments();
        put_values(&mut buf, m);
        put_values(&mut buf, v);
    }
    buf.freeze()
}

/// Restores optimizer state produced by [`state_to_bytes`] into `network`.
///
/// # Errors
///
/// Returns [`ModelCodecError::Corrupt`] on malformed input or when the
/// state does not match the network's parameter shapes.
pub fn apply_state(network: &mut Sequential, mut buf: &[u8]) -> Result<(), ModelCodecError> {
    if buf.remaining() < 12 {
        return Err(ModelCodecError::Corrupt("truncated state header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != STATE_MAGIC {
        return Err(ModelCodecError::Corrupt("bad state magic"));
    }
    if buf.get_u32_le() != STATE_VERSION {
        return Err(ModelCodecError::Corrupt("unsupported state version"));
    }
    let n = buf.get_u32_le() as usize;
    if n != network.params().len() {
        return Err(ModelCodecError::Corrupt("state parameter count mismatch"));
    }
    // Parse fully before touching the network, so a corrupt buffer cannot
    // leave it half-restored.
    let mut moments = Vec::with_capacity(n);
    for _ in 0..n {
        let m = get_values(&mut buf)?;
        let v = get_values(&mut buf)?;
        moments.push((m, v));
    }
    if buf.has_remaining() {
        return Err(ModelCodecError::Corrupt("trailing state bytes"));
    }
    for (p, (m, v)) in network.params().iter().zip(&moments) {
        if m.len() != p.len() || v.len() != p.len() {
            return Err(ModelCodecError::Corrupt("state moment size mismatch"));
        }
    }
    for (p, (m, v)) in network.params_mut().into_iter().zip(moments) {
        p.set_moments(m, v);
    }
    Ok(())
}

/// Saves a network to a file.
///
/// # Errors
///
/// Returns [`ModelCodecError::Io`] on filesystem errors.
pub fn save(network: &Sequential, path: impl AsRef<Path>) -> Result<(), ModelCodecError> {
    let mut f = File::create(path)?;
    f.write_all(&to_bytes(network))?;
    Ok(())
}

/// Loads a network from a file written by [`save`].
///
/// # Errors
///
/// Returns [`ModelCodecError`] on filesystem or parse errors.
pub fn load(path: impl AsRef<Path>) -> Result<Sequential, ModelCodecError> {
    let mut f = File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect_tensor::Matrix;

    #[test]
    fn roundtrip_mlp() {
        let mut net = Sequential::mlp(3, &[8], 4, 42);
        let bytes = to_bytes(&net);
        let mut back = from_bytes(&bytes).unwrap();
        let x = Matrix::from_rows(&[&[0.1, -0.5, 2.0]]);
        assert_eq!(net.forward(&x, false), back.forward(&x, false));
    }

    #[test]
    fn roundtrip_embedding_mlp() {
        let mut net = Sequential::embedding_mlp(4, 16, 8, 32, 10, 7);
        let mut back = from_bytes(&to_bytes(&net)).unwrap();
        let x = Matrix::from_rows(&[&[0.0, 3.0, 15.0, 7.0]]);
        assert_eq!(net.forward(&x, false), back.forward(&x, false));
    }

    #[test]
    fn rejects_corruption() {
        let net = Sequential::mlp(2, &[4], 2, 1);
        let mut bytes = to_bytes(&net).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes),
            Err(ModelCodecError::Corrupt("bad magic"))
        ));
        let bytes = to_bytes(&net);
        assert!(from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let net = Sequential::mlp(2, &[4], 2, 1);
        let mut bytes = to_bytes(&net).to_vec();
        bytes.push(0);
        assert!(matches!(
            from_bytes(&bytes),
            Err(ModelCodecError::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn state_roundtrip_restores_moments() {
        use crate::optim::Optimizer;
        // Take some optimizer steps so the moment buffers are non-trivial.
        let mut net = Sequential::mlp(2, &[4], 2, 3);
        let mut opt = Optimizer::adam(1e-2);
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        for _ in 0..3 {
            let y = net.forward(&x, true);
            net.backward(&y);
            opt.step(net.params_mut());
        }
        let values = to_bytes(&net);
        let state = state_to_bytes(&net);
        let mut back = from_bytes(&values).unwrap();
        assert_ne!(back, net, "values blob alone drops the moments");
        apply_state(&mut back, &state).unwrap();
        assert_eq!(
            back, net,
            "values + state must reproduce the network exactly"
        );
    }

    #[test]
    fn state_rejects_mismatch_and_corruption() {
        let net = Sequential::mlp(2, &[4], 2, 3);
        let state = state_to_bytes(&net);
        // Wrong network shape.
        let mut other = Sequential::mlp(2, &[5], 2, 3);
        assert!(apply_state(&mut other, &state).is_err());
        // Truncation and bad magic.
        let mut same = Sequential::mlp(2, &[4], 2, 3);
        assert!(apply_state(&mut same, &state[..state.len() - 3]).is_err());
        let mut bad = state.to_vec();
        bad[0] = b'X';
        assert!(apply_state(&mut same, &bad).is_err());
        assert!(apply_state(&mut same, &[]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("airchitect-nn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ainn");
        let mut net = Sequential::mlp(2, &[4], 3, 5);
        save(&net, &path).unwrap();
        let mut back = load(&path).unwrap();
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        assert_eq!(net.forward(&x, false), back.forward(&x, false));
        std::fs::remove_file(&path).ok();
    }
}
