//! Network layers: dense, ReLU, and the per-feature embedding front-end.

use airchitect_tensor::{gemm, init, ops, Matrix};
use serde::{Deserialize, Serialize};

use crate::Param;

/// Copies `src` into an optional cache slot, reusing the slot's existing
/// allocation; only the very first call allocates.
fn cache_assign(slot: &mut Option<Matrix>, src: &Matrix) {
    match slot {
        Some(m) => m.copy_from(src),
        None => *slot = Some(src.clone()),
    }
}

/// A fully-connected layer: `y = x · W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Param,
    b: Param,
    #[serde(skip)]
    cache_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense dims must be positive");
        Self {
            in_dim,
            out_dim,
            w: Param::new(
                init::xavier_uniform(in_dim, out_dim, seed)
                    .as_slice()
                    .to_vec(),
            ),
            b: Param::new(vec![0.0; out_dim]),
            cache_input: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass; caches the input when `training` for backprop.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut y = Matrix::zeros(x.rows(), self.out_dim);
        self.forward_into(x, &mut y, training, gemm::num_threads());
        y
    }

    /// [`Dense::forward`] into a caller-owned buffer; allocation-free
    /// after warm-up (the training cache reuses its buffer too).
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix, training: bool, threads: usize) {
        if training {
            cache_assign(&mut self.cache_input, x);
        }
        self.infer_into(x, out, threads);
    }

    /// Inference-only forward pass (no cache, no mutation).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(x.rows(), self.out_dim);
        self.infer_into(x, &mut y, gemm::num_threads());
        y
    }

    /// [`Dense::infer`] into a caller-owned buffer.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix, threads: usize) {
        debug_assert_eq!(x.cols(), self.in_dim, "dense input width mismatch");
        out.resize(x.rows(), self.out_dim);
        gemm::gemm_nn(
            x.rows(),
            self.in_dim,
            self.out_dim,
            x.as_slice(),
            &self.w.value,
            out.as_mut_slice(),
            false,
            threads,
        );
        out.add_row_broadcast(&self.b.value);
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dX`.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        assert!(
            self.cache_input.is_some(),
            "backward without training forward"
        );
        let mut dx = Matrix::zeros(grad.rows(), self.in_dim);
        self.backward_into(grad, &mut dx, true, gemm::num_threads());
        self.cache_input = None;
        dx
    }

    /// [`Dense::backward`] into a caller-owned `dX` buffer.
    ///
    /// `dW` is accumulated straight into the parameter gradient (no
    /// temporary), `dX` is skipped entirely when `need_dx` is false
    /// (first trainable layer), and — unlike [`Dense::backward`] — the
    /// input cache is retained for reuse by the next forward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward_into(&mut self, grad: &Matrix, dx: &mut Matrix, need_dx: bool, threads: usize) {
        let x = self
            .cache_input
            .as_ref()
            .expect("backward without training forward");
        debug_assert_eq!(grad.cols(), self.out_dim, "dense grad width mismatch");
        debug_assert_eq!(grad.rows(), x.rows(), "dense grad batch mismatch");
        gemm::gemm_tn(
            self.in_dim,
            x.rows(),
            self.out_dim,
            x.as_slice(),
            grad.as_slice(),
            &mut self.w.grad,
            true,
            threads,
        );
        for r in 0..grad.rows() {
            for (g, &d) in self.b.grad.iter_mut().zip(grad.row(r)) {
                *g += d;
            }
        }
        if need_dx {
            dx.resize(grad.rows(), self.in_dim);
            gemm::gemm_nt(
                grad.rows(),
                self.out_dim,
                self.in_dim,
                grad.as_slice(),
                &self.w.value,
                dx.as_mut_slice(),
                false,
                threads,
            );
        }
    }

    /// The layer's parameters (weights, then bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// The weight parameter (`in_dim x out_dim`, row-major).
    pub fn weights(&self) -> &Param {
        &self.w
    }

    /// The bias parameter (`out_dim`).
    pub fn bias(&self) -> &Param {
        &self.b
    }

    /// Rebuilds a dense layer from explicit parameters (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if parameter sizes mismatch the dimensions.
    pub fn from_params(in_dim: usize, out_dim: usize, w: Param, b: Param) -> Self {
        assert_eq!(w.len(), in_dim * out_dim, "weight size mismatch");
        assert_eq!(b.len(), out_dim, "bias size mismatch");
        Self {
            in_dim,
            out_dim,
            w,
            b,
            cache_input: None,
        }
    }
}

/// An elementwise ReLU activation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    cache_pre: Option<Matrix>,
}

impl Relu {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the pre-activation when `training`.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        if training {
            cache_assign(&mut self.cache_pre, x);
        }
        self.infer(x)
    }

    /// [`Relu::forward`] into a caller-owned buffer; allocation-free
    /// after warm-up.
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix, training: bool) {
        if training {
            cache_assign(&mut self.cache_pre, x);
        }
        ops::relu_into(x, out);
    }

    /// Inference-only forward pass (no cache, no mutation).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        ops::relu(x)
    }

    /// Backward pass: masks the gradient by the activation pattern.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        assert!(
            self.cache_pre.is_some(),
            "backward without training forward"
        );
        let mut dx = Matrix::zeros(grad.rows(), grad.cols());
        self.backward_into(grad, &mut dx);
        self.cache_pre = None;
        dx
    }

    /// [`Relu::backward`] into a caller-owned buffer, retaining the
    /// cache for the next forward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward_into(&mut self, grad: &Matrix, dx: &mut Matrix) {
        let pre = self
            .cache_pre
            .as_ref()
            .expect("backward without training forward");
        ops::relu_backward_into(grad, pre, dx);
    }
}

/// The AIrchitect embedding front-end (paper Fig. 2): each input feature is
/// an integer bin index with its own embedding table; the looked-up vectors
/// are concatenated.
///
/// Input: a `batch x num_features` matrix whose entries are bin indices
/// (stored as `f32`, produced by `airchitect_data::quantize::Log2Binner`).
/// Output: `batch x (num_features · embed_dim)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    num_features: usize,
    vocab: usize,
    embed_dim: usize,
    /// One table per feature, stored contiguously:
    /// `table[f][bin][d] = value[(f · vocab + bin) · embed_dim + d]`.
    table: Param,
    #[serde(skip)]
    cache_bins: Vec<usize>,
    #[serde(skip)]
    cache_batch: usize,
}

impl Embedding {
    /// Creates the embedding front-end.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(num_features: usize, vocab: usize, embed_dim: usize, seed: u64) -> Self {
        assert!(
            num_features > 0 && vocab > 0 && embed_dim > 0,
            "embedding dims must be positive"
        );
        let init = init::uniform(num_features * vocab, embed_dim, -0.05, 0.05, seed);
        Self {
            num_features,
            vocab,
            embed_dim,
            table: Param::new(init.as_slice().to_vec()),
            cache_bins: Vec::new(),
            cache_batch: 0,
        }
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Vocabulary size per feature.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width per feature.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Output width: `num_features · embed_dim`.
    pub fn out_dim(&self) -> usize {
        self.num_features * self.embed_dim
    }

    /// Forward pass: table lookups plus concatenation.
    ///
    /// Out-of-range bins are clamped to the last vocabulary entry.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.out_dim());
        self.forward_into(x, &mut out, training);
        out
    }

    /// [`Embedding::forward`] into a caller-owned buffer; the bin cache
    /// is recycled too, so steady state allocates nothing.
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix, training: bool) {
        if !training {
            self.infer_into(x, out);
            return;
        }
        debug_assert_eq!(x.cols(), self.num_features, "embedding width mismatch");
        let batch = x.rows();
        out.resize(batch, self.num_features * self.embed_dim);
        self.cache_bins.clear();
        for r in 0..batch {
            let row = x.row(r);
            let out_row = out.row_mut(r);
            for (f, &raw) in row.iter().enumerate() {
                let bin = (raw.max(0.0) as usize).min(self.vocab - 1);
                self.cache_bins.push(bin);
                let src = (f * self.vocab + bin) * self.embed_dim;
                out_row[f * self.embed_dim..(f + 1) * self.embed_dim]
                    .copy_from_slice(&self.table.value[src..src + self.embed_dim]);
            }
        }
        self.cache_batch = batch;
    }

    /// Inference-only forward pass (no cache, no mutation).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.out_dim());
        self.infer_into(x, &mut out);
        out
    }

    /// [`Embedding::infer`] into a caller-owned buffer.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(x.cols(), self.num_features, "embedding width mismatch");
        let batch = x.rows();
        out.resize(batch, self.out_dim());
        for r in 0..batch {
            let row = x.row(r);
            let out_row = out.row_mut(r);
            for (f, &raw) in row.iter().enumerate() {
                let bin = (raw.max(0.0) as usize).min(self.vocab - 1);
                let src = (f * self.vocab + bin) * self.embed_dim;
                out_row[f * self.embed_dim..(f + 1) * self.embed_dim]
                    .copy_from_slice(&self.table.value[src..src + self.embed_dim]);
            }
        }
    }

    /// Backward pass: scatters the gradient into the looked-up rows. Returns
    /// a zero matrix (the embedding is always the first layer).
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        self.backward_scatter(grad);
        let batch = self.cache_batch;
        self.cache_bins.clear();
        Matrix::zeros(batch, self.num_features)
    }

    /// [`Embedding::backward`] without materializing the (always zero)
    /// input gradient; retains the bin cache for the next forward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward_scatter(&mut self, grad: &Matrix) {
        assert!(
            !self.cache_bins.is_empty(),
            "backward without training forward"
        );
        let batch = self.cache_batch;
        for r in 0..batch {
            let grow = grad.row(r);
            for f in 0..self.num_features {
                let bin = self.cache_bins[r * self.num_features + f];
                let dst = (f * self.vocab + bin) * self.embed_dim;
                for (g, &d) in self.table.grad[dst..dst + self.embed_dim]
                    .iter_mut()
                    .zip(&grow[f * self.embed_dim..(f + 1) * self.embed_dim])
                {
                    *g += d;
                }
            }
        }
    }

    /// The layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    /// The embedding table parameter.
    pub fn table(&self) -> &Param {
        &self.table
    }

    /// Rebuilds an embedding layer from an explicit table (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if the table size mismatches the dimensions.
    pub fn from_params(num_features: usize, vocab: usize, embed_dim: usize, table: Param) -> Self {
        assert_eq!(
            table.len(),
            num_features * vocab * embed_dim,
            "table size mismatch"
        );
        Self {
            num_features,
            vocab,
            embed_dim,
            table,
            cache_bins: Vec::new(),
            cache_batch: 0,
        }
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1/(1-rate)`; inference is
/// the identity.
///
/// The paper observes its CS2 model "starting to overfit" after ~22 epochs;
/// dropout is the standard Keras-era regularizer for that, included here for
/// the regularization ablations.
///
/// Masks are drawn from an internal counter-seeded RNG, so training runs
/// remain bit-reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dropout {
    rate: f32,
    seed: u64,
    #[serde(skip)]
    step: u64,
    #[serde(skip)]
    cache_mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Self {
            rate,
            seed,
            step: 0,
            cache_mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Forward pass; samples and caches a fresh mask when `training`.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        self.forward_into(x, &mut out, training);
        out
    }

    /// [`Dropout::forward`] into a caller-owned buffer; the mask cache is
    /// recycled, so steady state allocates nothing.
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix, training: bool) {
        if !training || self.rate == 0.0 {
            out.copy_from(x);
            return;
        }
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.step.wrapping_mul(0x9E37_79B9));
        self.step += 1;
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask = self
            .cache_mask
            .get_or_insert_with(|| Matrix::zeros(x.rows(), x.cols()));
        mask.resize(x.rows(), x.cols());
        for v in mask.as_mut_slice() {
            *v = if rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            };
        }
        out.resize(x.rows(), x.cols());
        for ((o, &v), &m) in out
            .as_mut_slice()
            .iter_mut()
            .zip(x.as_slice())
            .zip(mask.as_slice())
        {
            *o = v * m;
        }
    }

    /// Inference-only forward pass: the identity.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.clone()
    }

    /// Backward pass: re-applies the cached mask.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        assert!(
            self.cache_mask.is_some(),
            "backward without training forward"
        );
        let mut dx = Matrix::zeros(grad.rows(), grad.cols());
        self.backward_into(grad, &mut dx);
        self.cache_mask = None;
        dx
    }

    /// [`Dropout::backward`] into a caller-owned buffer, retaining the
    /// cached mask allocation for the next forward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward_into(&mut self, grad: &Matrix, dx: &mut Matrix) {
        let mask = self
            .cache_mask
            .as_ref()
            .expect("backward without training forward");
        dx.resize(grad.rows(), grad.cols());
        for ((o, &g), &m) in dx
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(mask.as_slice())
        {
            *o = g * m;
        }
    }
}

/// Any layer of a [`crate::network::Sequential`] network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(Dense),
    /// ReLU activation.
    Relu(Relu),
    /// Per-feature embedding front-end.
    Embedding(Embedding),
    /// Inverted dropout regularizer.
    Dropout(Dropout),
}

impl Layer {
    /// Dispatches the forward pass.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        match self {
            Layer::Dense(l) => l.forward(x, training),
            Layer::Relu(l) => l.forward(x, training),
            Layer::Embedding(l) => l.forward(x, training),
            Layer::Dropout(l) => l.forward(x, training),
        }
    }

    /// Dispatches the buffer-reusing forward pass. Allocation-free after
    /// warm-up: output, caches, and scratch all recycle their buffers.
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix, training: bool, threads: usize) {
        match self {
            Layer::Dense(l) => l.forward_into(x, out, training, threads),
            Layer::Relu(l) => l.forward_into(x, out, training),
            Layer::Embedding(l) => l.forward_into(x, out, training),
            Layer::Dropout(l) => l.forward_into(x, out, training),
        }
    }

    /// Dispatches the inference-only forward pass.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        match self {
            Layer::Dense(l) => l.infer(x),
            Layer::Relu(l) => l.infer(x),
            Layer::Embedding(l) => l.infer(x),
            Layer::Dropout(l) => l.infer(x),
        }
    }

    /// Dispatches the buffer-reusing inference-only forward pass.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix, threads: usize) {
        match self {
            Layer::Dense(l) => l.infer_into(x, out, threads),
            Layer::Relu(_) => ops::relu_into(x, out),
            Layer::Embedding(l) => l.infer_into(x, out),
            Layer::Dropout(_) => out.copy_from(x),
        }
    }

    /// Dispatches the backward pass.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        match self {
            Layer::Dense(l) => l.backward(grad),
            Layer::Relu(l) => l.backward(grad),
            Layer::Embedding(l) => l.backward(grad),
            Layer::Dropout(l) => l.backward(grad),
        }
    }

    /// Dispatches the buffer-reusing backward pass.
    ///
    /// Parameter gradients always accumulate; `dx` is only written when
    /// `need_dx` (the first trainable layer can skip it). Unlike
    /// [`Layer::backward`], layer caches survive the call so their
    /// buffers can be recycled by the next forward pass.
    pub fn backward_into(&mut self, grad: &Matrix, dx: &mut Matrix, need_dx: bool, threads: usize) {
        match self {
            Layer::Dense(l) => l.backward_into(grad, dx, need_dx, threads),
            Layer::Relu(l) => l.backward_into(grad, dx),
            Layer::Embedding(l) => {
                l.backward_scatter(grad);
                if need_dx {
                    dx.resize(grad.rows(), l.num_features());
                    dx.fill(0.0);
                }
            }
            Layer::Dropout(l) => l.backward_into(grad, dx),
        }
    }

    /// Visits every trainable parameter without allocating.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Layer::Dense(l) => {
                f(&mut l.w);
                f(&mut l.b);
            }
            Layer::Relu(_) | Layer::Dropout(_) => {}
            Layer::Embedding(l) => f(&mut l.table),
        }
    }

    /// The layer's trainable parameters (possibly empty).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Layer::Dense(l) => l.params_mut(),
            Layer::Relu(_) | Layer::Dropout(_) => Vec::new(),
            Layer::Embedding(l) => l.params_mut(),
        }
    }

    /// The layer's trainable parameters, read-only (possibly empty).
    pub fn params(&self) -> Vec<&Param> {
        match self {
            Layer::Dense(l) => vec![l.weights(), l.bias()],
            Layer::Relu(_) | Layer::Dropout(_) => Vec::new(),
            Layer::Embedding(l) => vec![l.table()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut d = Dense::new(3, 2, 1);
        // Zero the weights so output equals the bias.
        for v in &mut d.w.value {
            *v = 0.0;
        }
        d.b.value = vec![0.5, -0.5];
        let x = Matrix::zeros(4, 3);
        let y = d.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert_eq!(y.row(0), &[0.5, -0.5]);
    }

    #[test]
    fn dense_backward_accumulates_grads() {
        let mut d = Dense::new(2, 2, 1);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let _ = d.forward(&x, true);
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        let dx = d.backward(&g);
        assert_eq!((dx.rows(), dx.cols()), (1, 2));
        // dW = xᵀ·g = [[1,1],[2,2]].
        assert_eq!(d.w.grad, vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(d.b.grad, vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "backward without training forward")]
    fn dense_backward_requires_training_forward() {
        let mut d = Dense::new(2, 2, 1);
        let x = Matrix::zeros(1, 2);
        let _ = d.forward(&x, false);
        let _ = d.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn relu_roundtrip() {
        let mut r = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let y = r.forward(&x, true);
        assert_eq!(y.row(0), &[0.0, 2.0]);
        let dx = r.backward(&Matrix::from_rows(&[&[5.0, 5.0]]));
        assert_eq!(dx.row(0), &[0.0, 5.0]);
    }

    #[test]
    fn embedding_lookup_concatenates() {
        let mut e = Embedding::new(2, 4, 3, 1);
        let x = Matrix::from_rows(&[&[0.0, 3.0]]);
        let y = e.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (1, 6));
        // First half = table[feature 0][bin 0], second = table[feature 1][bin 3].
        assert_eq!(&y.row(0)[..3], &e.table.value[0..3]);
        let src = (4 + 3) * 3;
        assert_eq!(&y.row(0)[3..], &e.table.value[src..src + 3]);
    }

    #[test]
    fn embedding_clamps_out_of_range_bins() {
        let mut e = Embedding::new(1, 4, 2, 1);
        let hi = e.forward(&Matrix::from_rows(&[&[99.0]]), false);
        let last = e.forward(&Matrix::from_rows(&[&[3.0]]), false);
        assert_eq!(hi, last);
        let neg = e.forward(&Matrix::from_rows(&[&[-7.0]]), false);
        let first = e.forward(&Matrix::from_rows(&[&[0.0]]), false);
        assert_eq!(neg, first);
    }

    #[test]
    fn embedding_backward_scatters_into_used_rows_only() {
        let mut e = Embedding::new(1, 4, 2, 1);
        let x = Matrix::from_rows(&[&[2.0]]);
        let _ = e.forward(&x, true);
        let g = Matrix::from_rows(&[&[1.0, -1.0]]);
        let _ = e.backward(&g);
        // Only bin 2's two entries receive gradient.
        let expect_zero: Vec<usize> = (0..8).filter(|i| !(4..6).contains(i)).collect();
        for i in expect_zero {
            assert_eq!(e.table.grad[i], 0.0, "grad leaked into entry {i}");
        }
        assert_eq!(&e.table.grad[4..6], &[1.0, -1.0]);
    }

    #[test]
    fn dropout_identity_at_inference() {
        let mut d = Dropout::new(0.5, 1);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.infer(&x), x);
    }

    #[test]
    fn dropout_masks_and_scales_in_training() {
        let mut d = Dropout::new(0.5, 7);
        let x = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let kept: Vec<f32> = y.as_slice().iter().cloned().filter(|&v| v != 0.0).collect();
        // Roughly half dropped, survivors scaled by 1/keep = 2.
        assert!((350..=650).contains(&zeros), "dropped {zeros}/1000");
        assert!(kept.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Matrix::from_vec(1, 100, vec![1.0; 100]);
        let y = d.forward(&x, true);
        let g = Matrix::from_vec(1, 100, vec![1.0; 100]);
        let dx = d.backward(&g);
        for (fw, bw) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(fw, bw, "gradient mask must match forward mask");
        }
    }

    #[test]
    fn dropout_masks_differ_across_steps_but_replay_per_seed() {
        let x = Matrix::from_vec(1, 200, vec![1.0; 200]);
        let mut a = Dropout::new(0.3, 9);
        let first = a.forward(&x, true);
        let second = a.forward(&x, true);
        assert_ne!(first, second, "each step samples a fresh mask");
        let mut b = Dropout::new(0.3, 9);
        assert_eq!(b.forward(&x, true), first, "same seed replays the run");
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1)")]
    fn dropout_rejects_rate_one() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn layer_enum_dispatch() {
        let mut l = Layer::Dense(Dense::new(2, 3, 5));
        let y = l.forward(&Matrix::zeros(1, 2), false);
        assert_eq!(y.cols(), 3);
        assert_eq!(l.params_mut().len(), 2);
        assert!(Layer::Relu(Relu::new()).params_mut().is_empty());
    }
}
