//! Seeded minibatch trainer.
//!
//! Mirrors the paper's training setup: categorical cross-entropy loss with
//! accuracy as the tracked metric, returning per-epoch train/validation
//! accuracy curves (paper Fig. 10a-c).

use airchitect_data::Dataset;
use airchitect_telemetry as telemetry;
use airchitect_tensor::{ops, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::loss::softmax_cross_entropy_into;
use crate::metrics;
use crate::network::{Sequential, Workspace};
use crate::optim::Optimizer;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimizer (the paper uses Keras defaults; Adam here).
    pub optimizer: Optimizer,
    /// Shuffling seed.
    pub seed: u64,
    /// Multiplicative learning-rate decay applied after each epoch
    /// (`1.0` disables it; e.g. `0.9` is a gentle step schedule).
    pub lr_decay: f32,
    /// Kernel threads for the forward/backward products. The compute
    /// engine's partition is fixed, so this never changes the trained
    /// model — any value produces byte-identical results; it only
    /// changes wall-clock time. Must be at least 1.
    pub threads: usize,
}

impl Default for TrainConfig {
    /// 15 epochs (the paper's CS1 budget), batch 256, Adam(1e-3), no decay,
    /// single-threaded kernels.
    fn default() -> Self {
        Self {
            epochs: 15,
            batch_size: 256,
            optimizer: Optimizer::adam(1e-3),
            seed: 0,
            lr_decay: 1.0,
            threads: 1,
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Training accuracy measured over the epoch's batches (online).
    pub train_accuracy: f64,
    /// Validation accuracy after the epoch, if a validation set was given.
    pub val_accuracy: Option<f64>,
}

/// The accuracy/loss curves of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// One entry per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl History {
    /// Training accuracy of the last epoch.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    pub fn final_train_accuracy(&self) -> f64 {
        self.epochs
            .last()
            .expect("history is non-empty")
            .train_accuracy
    }

    /// Validation accuracy of the last epoch, if tracked.
    pub fn final_val_accuracy(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.val_accuracy)
    }

    /// Best validation accuracy across epochs, if tracked.
    pub fn best_val_accuracy(&self) -> Option<f64> {
        self.epochs
            .iter()
            .filter_map(|e| e.val_accuracy)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Error returned when training is misconfigured or goes numerically wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The training set is empty.
    EmptyDataset,
    /// The dataset width does not match the network input.
    DimMismatch {
        /// Width the network expects.
        expected: usize,
        /// Width the dataset provides.
        got: usize,
    },
    /// Zero epochs or zero batch size.
    BadConfig,
    /// Training diverged: the loss went NaN/Inf or the gradient norm
    /// exploded. The model is left in its (useless) post-divergence state;
    /// restart from a checkpoint with a gentler configuration.
    Diverged {
        /// Epoch (0-based) in which divergence was detected.
        epoch: usize,
        /// Batch index within that epoch.
        batch: usize,
    },
    /// A resume point is inconsistent with the configuration (e.g. more
    /// epochs completed than the schedule has).
    BadResume(&'static str),
    /// The per-epoch checkpoint observer failed (e.g. disk full while
    /// writing a snapshot).
    Checkpoint(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "training set is empty"),
            TrainError::DimMismatch { expected, got } => {
                write!(f, "network expects {expected} features, dataset has {got}")
            }
            TrainError::BadConfig => write!(f, "epochs and batch size must be positive"),
            TrainError::Diverged { epoch, batch } => {
                write!(f, "training diverged at epoch {epoch}, batch {batch} (NaN/Inf loss or exploding gradients)")
            }
            TrainError::BadResume(what) => write!(f, "cannot resume: {what}"),
            TrainError::Checkpoint(msg) => write!(f, "checkpoint observer failed: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Gradient-norm ceiling for the divergence guard: generous enough for any
/// healthy run of the paper's models, tripped quickly by a runaway one.
const GRAD_NORM_LIMIT: f32 = 1e6;

/// Where a resumed run picks up: the first epoch still to execute and the
/// optimizer exactly as it was after the last completed epoch (learning-rate
/// decay already applied — the trainer does not reapply it while catching
/// up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResumePoint {
    /// The first epoch to run (= number of epochs already completed).
    pub next_epoch: usize,
    /// Optimizer state after the last completed epoch.
    pub optimizer: Optimizer,
}

/// Everything a checkpoint observer needs to snapshot one completed epoch.
#[derive(Debug)]
pub struct EpochCheckpoint<'a> {
    /// The epoch just completed (0-based).
    pub epoch: usize,
    /// Network after the epoch's updates.
    pub network: &'a Sequential,
    /// Optimizer after the epoch (learning-rate decay applied).
    pub optimizer: &'a Optimizer,
    /// The epoch's statistics.
    pub stats: &'a EpochStats,
}

/// Builds the feature matrix and label list for a batch of row indices,
/// reusing the caller's buffers.
///
/// `x` is resized to `indices.len() × feature_dim` (reusing its capacity)
/// and `labels` is cleared and refilled, so a persistent pair of buffers
/// makes batch assembly allocation-free after the first full-size batch.
pub fn gather_into(dataset: &Dataset, indices: &[usize], x: &mut Matrix, labels: &mut Vec<u32>) {
    let dim = dataset.feature_dim();
    x.resize(indices.len(), dim);
    labels.clear();
    for (r, &i) in indices.iter().enumerate() {
        x.row_mut(r).copy_from_slice(dataset.row(i));
        labels.push(dataset.label(i));
    }
}

/// Trains `network` on `train`, optionally tracking validation accuracy.
///
/// # Errors
///
/// Returns [`TrainError`] for empty datasets, width mismatches, a zero
/// epoch/batch configuration, or numerical divergence.
pub fn fit(
    network: &mut Sequential,
    train: &Dataset,
    validation: Option<&Dataset>,
    config: &TrainConfig,
) -> Result<History, TrainError> {
    fit_resumable(network, train, validation, config, None, |_| Ok(()))
}

/// Trains `network` on `train`, optionally resuming from a checkpoint and
/// invoking `observer` after every completed epoch.
///
/// When `resume` is given, the trainer fast-forwards its shuffle stream to
/// `next_epoch` (replaying the completed epochs' permutations against the
/// seeded RNG) and continues with the restored optimizer, so an interrupted
/// run that restarts from a snapshot of `(network, optimizer, next_epoch)`
/// produces bit-identical results to an uninterrupted one. Only the
/// remaining epochs appear in the returned [`History`].
///
/// Note: the guarantee covers the dropout-free architectures the pipelines
/// use; [`Sequential::embedding_mlp_dropout`]'s per-call mask counter is
/// not part of the snapshot.
///
/// The observer typically writes a checkpoint; an `Err(msg)` from it
/// surfaces as [`TrainError::Checkpoint`] and aborts training.
///
/// # Errors
///
/// Returns [`TrainError`] for invalid inputs/config, an inconsistent
/// resume point, divergence (NaN/Inf loss or exploding gradients), or an
/// observer failure.
pub fn fit_resumable<F>(
    network: &mut Sequential,
    train: &Dataset,
    validation: Option<&Dataset>,
    config: &TrainConfig,
    resume: Option<ResumePoint>,
    mut observer: F,
) -> Result<History, TrainError>
where
    F: FnMut(&EpochCheckpoint<'_>) -> Result<(), String>,
{
    if train.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    if train.feature_dim() != network.in_dim() {
        return Err(TrainError::DimMismatch {
            expected: network.in_dim(),
            got: train.feature_dim(),
        });
    }
    if config.epochs == 0 || config.batch_size == 0 || config.threads == 0 {
        return Err(TrainError::BadConfig);
    }
    if !(config.lr_decay > 0.0 && config.lr_decay <= 1.0) {
        return Err(TrainError::BadConfig);
    }
    let (start, mut optimizer) = match resume {
        Some(r) => {
            if r.next_epoch > config.epochs {
                return Err(TrainError::BadResume(
                    "checkpoint has more epochs than the schedule",
                ));
            }
            (r.next_epoch, r.optimizer)
        }
        None => (0, config.optimizer),
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut indices: Vec<usize> = (0..train.len()).collect();
    let mut history = History::default();

    // Fast-forward the shuffle stream over the epochs a resumed run has
    // already completed.
    for _ in 0..start {
        indices.shuffle(&mut rng);
    }

    // Persistent buffers for the hot loop: after the first full-size batch
    // every iteration reuses these and the workspace, so a steady-state
    // batch performs zero heap allocations.
    let mut ws = Workspace::with_threads(config.threads);
    let mut batch_x = Matrix::zeros(1, 1);
    let mut labels: Vec<u32> = Vec::new();
    let mut loss_grad = Matrix::zeros(1, 1);
    let mut preds: Vec<u32> = Vec::new();

    for epoch in start..config.epochs {
        // Coarse telemetry: one span per epoch (closing after the observer,
        // so checkpoint writes nest inside it). The per-batch loop below
        // records only into atomic metrics — no locks, no allocations.
        let mut epoch_span = telemetry::span::Span::enter("train.epoch");
        indices.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        let mut batches = 0usize;
        for (batch, chunk) in indices.chunks(config.batch_size).enumerate() {
            let _batch_timer = telemetry::metrics::TRAIN_BATCH_US.start_timer();
            telemetry::metrics::TRAIN_BATCHES.inc();
            gather_into(train, chunk, &mut batch_x, &mut labels);
            let logits = network.forward_ws(&batch_x, &mut ws, true);
            let loss = softmax_cross_entropy_into(logits, &labels, &mut loss_grad);
            if !loss.is_finite() {
                return Err(TrainError::Diverged { epoch, batch });
            }
            ops::argmax_rows_into(logits, &mut preds);
            correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
            network.backward_ws(&loss_grad, &mut ws);
            let mut grad_sq = 0.0f32;
            network.for_each_param(|p| {
                grad_sq += p.grad.iter().map(|g| g * g).sum::<f32>();
            });
            if !grad_sq.is_finite() || grad_sq.sqrt() > GRAD_NORM_LIMIT {
                return Err(TrainError::Diverged { epoch, batch });
            }
            let ctx = optimizer.prepare();
            network.for_each_param(|p| ctx.apply(p));
            loss_sum += loss as f64;
            batches += 1;
        }
        let val_accuracy = validation.map(|v| evaluate(network, v));
        history.epochs.push(EpochStats {
            epoch,
            train_loss: loss_sum / batches as f64,
            train_accuracy: correct as f64 / train.len() as f64,
            val_accuracy,
        });
        let stats = history.epochs.last().expect("just pushed");
        telemetry::metrics::TRAIN_EPOCHS.inc();
        telemetry::metrics::TRAIN_LOSS.set(stats.train_loss);
        telemetry::metrics::TRAIN_ACCURACY.set(stats.train_accuracy);
        epoch_span.field_u64("epoch", epoch as u64);
        epoch_span.field_u64("batches", batches as u64);
        epoch_span.field_f64("loss", stats.train_loss);
        epoch_span.field_f64("accuracy", stats.train_accuracy);
        if let Some(v) = val_accuracy {
            epoch_span.field_f64("val_accuracy", v);
        }
        optimizer.scale_lr(config.lr_decay);
        observer(&EpochCheckpoint {
            epoch,
            network,
            optimizer: &optimizer,
            stats: history.epochs.last().expect("just pushed"),
        })
        .map_err(TrainError::Checkpoint)?;
    }
    Ok(history)
}

/// Classification accuracy of `network` on `dataset` (batched inference).
///
/// # Panics
///
/// Panics if `dataset` is empty or its width mismatches the network.
pub fn evaluate(network: &mut Sequential, dataset: &Dataset) -> f64 {
    let predictions = predict_dataset(network, dataset);
    metrics::accuracy(&predictions, dataset.labels())
}

/// Predicted labels for every row of `dataset`.
///
/// # Panics
///
/// Panics if the dataset width mismatches the network input.
pub fn predict_dataset(network: &mut Sequential, dataset: &Dataset) -> Vec<u32> {
    predict_dataset_infer(network, dataset)
}

/// [`predict_dataset`] over a shared network reference.
///
/// Runs batched inference through a local [`Workspace`] (kernel threads
/// from the process-wide setting), so callers that hold a model inside a
/// larger structure don't need `&mut` access — or a clone — to predict.
///
/// # Panics
///
/// Panics if the dataset width mismatches the network input.
pub fn predict_dataset_infer(network: &Sequential, dataset: &Dataset) -> Vec<u32> {
    assert_eq!(
        dataset.feature_dim(),
        network.in_dim(),
        "dataset width mismatches network input"
    );
    let mut ws = Workspace::new();
    let mut x = Matrix::zeros(1, 1);
    let mut labels: Vec<u32> = Vec::new();
    let mut preds: Vec<u32> = Vec::new();
    let mut out = Vec::with_capacity(dataset.len());
    let indices: Vec<usize> = (0..dataset.len()).collect();
    for chunk in indices.chunks(1024) {
        gather_into(dataset, chunk, &mut x, &mut labels);
        let logits = network.infer_ws(&x, &mut ws);
        ops::argmax_rows_into(logits, &mut preds);
        out.extend_from_slice(&preds);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs: trivially learnable.
    fn blobs(n: usize) -> Dataset {
        let mut ds = Dataset::new(2, 2).unwrap();
        for i in 0..n {
            let t = (i as f32 * 0.37).sin() * 0.1;
            if i % 2 == 0 {
                ds.push(&[1.0 + t, 1.0 - t], 0).unwrap();
            } else {
                ds.push(&[-1.0 - t, -1.0 + t], 1).unwrap();
            }
        }
        ds
    }

    #[test]
    fn fit_learns_separable_blobs() {
        let ds = blobs(200);
        let mut net = Sequential::mlp(2, &[8], 2, 3);
        let h = fit(
            &mut net,
            &ds,
            Some(&ds),
            &TrainConfig {
                epochs: 20,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(h.final_train_accuracy() > 0.95);
        assert!(h.final_val_accuracy().unwrap() > 0.95);
        assert_eq!(h.epochs.len(), 20);
    }

    #[test]
    fn loss_decreases_during_training() {
        let ds = blobs(200);
        let mut net = Sequential::mlp(2, &[8], 2, 3);
        let h = fit(
            &mut net,
            &ds,
            None,
            &TrainConfig {
                epochs: 10,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(h.epochs.last().unwrap().train_loss < h.epochs[0].train_loss);
    }

    #[test]
    fn fit_is_deterministic() {
        let ds = blobs(100);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            ..Default::default()
        };
        let mut a = Sequential::mlp(2, &[4], 2, 7);
        let mut b = Sequential::mlp(2, &[4], 2, 7);
        let ha = fit(&mut a, &ds, None, &cfg).unwrap();
        let hb = fit(&mut b, &ds, None, &cfg).unwrap();
        assert_eq!(ha, hb);
        assert_eq!(predict_dataset(&mut a, &ds), predict_dataset(&mut b, &ds));
    }

    #[test]
    fn fit_validates_inputs() {
        let ds = blobs(10);
        let empty = Dataset::new(2, 2).unwrap();
        let mut net = Sequential::mlp(2, &[4], 2, 1);
        assert_eq!(
            fit(&mut net, &empty, None, &TrainConfig::default()),
            Err(TrainError::EmptyDataset)
        );
        let mut wrong = Sequential::mlp(3, &[4], 2, 1);
        assert!(matches!(
            fit(&mut wrong, &ds, None, &TrainConfig::default()),
            Err(TrainError::DimMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert_eq!(
            fit(
                &mut net,
                &ds,
                None,
                &TrainConfig {
                    epochs: 0,
                    ..Default::default()
                }
            ),
            Err(TrainError::BadConfig)
        );
    }

    #[test]
    fn lr_decay_is_applied_and_validated() {
        let ds = blobs(100);
        let mut net = Sequential::mlp(2, &[4], 2, 1);
        // Invalid decay is rejected.
        assert_eq!(
            fit(
                &mut net,
                &ds,
                None,
                &TrainConfig {
                    lr_decay: 0.0,
                    ..Default::default()
                }
            ),
            Err(TrainError::BadConfig)
        );
        // Aggressive decay effectively freezes training after a few epochs:
        // late-epoch losses change far less than with a constant rate.
        let cfg = |decay: f32| TrainConfig {
            epochs: 12,
            batch_size: 32,
            lr_decay: decay,
            ..Default::default()
        };
        let mut frozen = Sequential::mlp(2, &[4], 2, 9);
        let hist_frozen = fit(&mut frozen, &ds, None, &cfg(0.1)).unwrap();
        let mut steady = Sequential::mlp(2, &[4], 2, 9);
        let hist_steady = fit(&mut steady, &ds, None, &cfg(1.0)).unwrap();
        let late_delta = |h: &History| (h.epochs[11].train_loss - h.epochs[6].train_loss).abs();
        assert!(
            late_delta(&hist_frozen) < late_delta(&hist_steady) + 1e-9,
            "decayed run should change less late in training"
        );
    }

    #[test]
    fn embedding_network_trains_on_binned_features() {
        // Labels depend on the bin of the single feature.
        let mut ds = Dataset::new(1, 3).unwrap();
        for i in 0..300 {
            let bin = i % 3;
            ds.push(&[bin as f32], bin as u32).unwrap();
        }
        let mut net = Sequential::embedding_mlp(1, 4, 8, 16, 3, 5);
        let h = fit(
            &mut net,
            &ds,
            None,
            &TrainConfig {
                epochs: 30,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            h.final_train_accuracy() > 0.99,
            "embedding net should nail a lookup task, got {}",
            h.final_train_accuracy()
        );
    }

    #[test]
    fn resume_is_bit_identical_to_uninterrupted() {
        let ds = blobs(200);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr_decay: 0.9,
            ..Default::default()
        };
        // Uninterrupted reference run.
        let mut full = Sequential::mlp(2, &[8], 2, 3);
        fit(&mut full, &ds, None, &cfg).unwrap();
        // "Killed" run: stop after 5 epochs, snapshotting network +
        // optimizer from the observer (what a checkpoint stores).
        let mut snap: Option<(Sequential, Optimizer)> = None;
        let mut partial = Sequential::mlp(2, &[8], 2, 3);
        fit_resumable(
            &mut partial,
            &ds,
            None,
            &TrainConfig { epochs: 5, ..cfg },
            None,
            |c| {
                if c.epoch == 4 {
                    snap = Some((c.network.clone(), *c.optimizer));
                }
                Ok(())
            },
        )
        .unwrap();
        let (mut resumed, optimizer) = snap.unwrap();
        let history = fit_resumable(
            &mut resumed,
            &ds,
            None,
            &cfg,
            Some(ResumePoint {
                next_epoch: 5,
                optimizer,
            }),
            |_| Ok(()),
        )
        .unwrap();
        // Only the remaining epochs are reported…
        assert_eq!(history.epochs.len(), 3);
        assert_eq!(history.epochs[0].epoch, 5);
        // …and the final network (values AND moment buffers) is identical
        // to the uninterrupted run's.
        assert_eq!(resumed, full);
    }

    #[test]
    fn divergence_is_a_typed_error() {
        let ds = blobs(100);
        let mut net = Sequential::mlp(2, &[8], 2, 3);
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 16,
            optimizer: Optimizer::sgd(1e30),
            ..Default::default()
        };
        assert!(matches!(
            fit(&mut net, &ds, None, &cfg),
            Err(TrainError::Diverged { .. })
        ));
    }

    #[test]
    fn bad_resume_and_observer_failure_are_typed() {
        let ds = blobs(50);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            ..Default::default()
        };
        let mut net = Sequential::mlp(2, &[4], 2, 1);
        assert_eq!(
            fit_resumable(
                &mut net,
                &ds,
                None,
                &cfg,
                Some(ResumePoint {
                    next_epoch: 3,
                    optimizer: cfg.optimizer,
                }),
                |_| Ok(()),
            ),
            Err(TrainError::BadResume(
                "checkpoint has more epochs than the schedule"
            ))
        );
        assert_eq!(
            fit_resumable(&mut net, &ds, None, &cfg, None, |_| Err("disk full".into())),
            Err(TrainError::Checkpoint("disk full".to_string()))
        );
    }

    #[test]
    fn history_best_val_accuracy() {
        let h = History {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 1.0,
                    train_accuracy: 0.5,
                    val_accuracy: Some(0.6),
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.5,
                    train_accuracy: 0.7,
                    val_accuracy: Some(0.55),
                },
            ],
        };
        assert_eq!(h.best_val_accuracy(), Some(0.6));
        assert_eq!(h.final_val_accuracy(), Some(0.55));
    }
}
