//! Seeded minibatch trainer.
//!
//! Mirrors the paper's training setup: categorical cross-entropy loss with
//! accuracy as the tracked metric, returning per-epoch train/validation
//! accuracy curves (paper Fig. 10a-c).

use airchitect_data::Dataset;
use airchitect_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::loss::softmax_cross_entropy;
use crate::metrics;
use crate::network::Sequential;
use crate::optim::Optimizer;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimizer (the paper uses Keras defaults; Adam here).
    pub optimizer: Optimizer,
    /// Shuffling seed.
    pub seed: u64,
    /// Multiplicative learning-rate decay applied after each epoch
    /// (`1.0` disables it; e.g. `0.9` is a gentle step schedule).
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    /// 15 epochs (the paper's CS1 budget), batch 256, Adam(1e-3), no decay.
    fn default() -> Self {
        Self {
            epochs: 15,
            batch_size: 256,
            optimizer: Optimizer::adam(1e-3),
            seed: 0,
            lr_decay: 1.0,
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Training accuracy measured over the epoch's batches (online).
    pub train_accuracy: f64,
    /// Validation accuracy after the epoch, if a validation set was given.
    pub val_accuracy: Option<f64>,
}

/// The accuracy/loss curves of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// One entry per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl History {
    /// Training accuracy of the last epoch.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    pub fn final_train_accuracy(&self) -> f64 {
        self.epochs.last().expect("history is non-empty").train_accuracy
    }

    /// Validation accuracy of the last epoch, if tracked.
    pub fn final_val_accuracy(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.val_accuracy)
    }

    /// Best validation accuracy across epochs, if tracked.
    pub fn best_val_accuracy(&self) -> Option<f64> {
        self.epochs
            .iter()
            .filter_map(|e| e.val_accuracy)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Error returned when training is misconfigured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The training set is empty.
    EmptyDataset,
    /// The dataset width does not match the network input.
    DimMismatch {
        /// Width the network expects.
        expected: usize,
        /// Width the dataset provides.
        got: usize,
    },
    /// Zero epochs or zero batch size.
    BadConfig,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "training set is empty"),
            TrainError::DimMismatch { expected, got } => {
                write!(f, "network expects {expected} features, dataset has {got}")
            }
            TrainError::BadConfig => write!(f, "epochs and batch size must be positive"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Builds the feature matrix and label slice for a batch of row indices.
fn gather(dataset: &Dataset, indices: &[usize]) -> (Matrix, Vec<u32>) {
    let dim = dataset.feature_dim();
    let mut data = Vec::with_capacity(indices.len() * dim);
    let mut labels = Vec::with_capacity(indices.len());
    for &i in indices {
        data.extend_from_slice(dataset.row(i));
        labels.push(dataset.label(i));
    }
    (Matrix::from_vec(indices.len(), dim, data), labels)
}

/// Trains `network` on `train`, optionally tracking validation accuracy.
///
/// # Errors
///
/// Returns [`TrainError`] for empty datasets, width mismatches, or a zero
/// epoch/batch configuration.
pub fn fit(
    network: &mut Sequential,
    train: &Dataset,
    validation: Option<&Dataset>,
    config: &TrainConfig,
) -> Result<History, TrainError> {
    if train.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    if train.feature_dim() != network.in_dim() {
        return Err(TrainError::DimMismatch {
            expected: network.in_dim(),
            got: train.feature_dim(),
        });
    }
    if config.epochs == 0 || config.batch_size == 0 {
        return Err(TrainError::BadConfig);
    }
    if !(config.lr_decay > 0.0 && config.lr_decay <= 1.0) {
        return Err(TrainError::BadConfig);
    }

    let mut optimizer = config.optimizer;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut indices: Vec<usize> = (0..train.len()).collect();
    let mut history = History::default();

    for epoch in 0..config.epochs {
        indices.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        let mut batches = 0usize;
        for chunk in indices.chunks(config.batch_size) {
            let (x, labels) = gather(train, chunk);
            let logits = network.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            correct += airchitect_tensor::ops::argmax_rows(&logits)
                .iter()
                .zip(&labels)
                .filter(|(p, l)| p == l)
                .count();
            network.backward(&grad);
            optimizer.step(network.params_mut());
            loss_sum += loss as f64;
            batches += 1;
        }
        let val_accuracy = validation.map(|v| evaluate(network, v));
        history.epochs.push(EpochStats {
            epoch,
            train_loss: loss_sum / batches as f64,
            train_accuracy: correct as f64 / train.len() as f64,
            val_accuracy,
        });
        optimizer.scale_lr(config.lr_decay);
    }
    Ok(history)
}

/// Classification accuracy of `network` on `dataset` (batched inference).
///
/// # Panics
///
/// Panics if `dataset` is empty or its width mismatches the network.
pub fn evaluate(network: &mut Sequential, dataset: &Dataset) -> f64 {
    let predictions = predict_dataset(network, dataset);
    metrics::accuracy(&predictions, dataset.labels())
}

/// Predicted labels for every row of `dataset`.
///
/// # Panics
///
/// Panics if the dataset width mismatches the network input.
pub fn predict_dataset(network: &mut Sequential, dataset: &Dataset) -> Vec<u32> {
    assert_eq!(
        dataset.feature_dim(),
        network.in_dim(),
        "dataset width mismatches network input"
    );
    let mut out = Vec::with_capacity(dataset.len());
    let indices: Vec<usize> = (0..dataset.len()).collect();
    for chunk in indices.chunks(1024) {
        let (x, _) = gather(dataset, chunk);
        out.extend(network.predict(&x));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs: trivially learnable.
    fn blobs(n: usize) -> Dataset {
        let mut ds = Dataset::new(2, 2).unwrap();
        for i in 0..n {
            let t = (i as f32 * 0.37).sin() * 0.1;
            if i % 2 == 0 {
                ds.push(&[1.0 + t, 1.0 - t], 0).unwrap();
            } else {
                ds.push(&[-1.0 - t, -1.0 + t], 1).unwrap();
            }
        }
        ds
    }

    #[test]
    fn fit_learns_separable_blobs() {
        let ds = blobs(200);
        let mut net = Sequential::mlp(2, &[8], 2, 3);
        let h = fit(
            &mut net,
            &ds,
            Some(&ds),
            &TrainConfig {
                epochs: 20,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(h.final_train_accuracy() > 0.95);
        assert!(h.final_val_accuracy().unwrap() > 0.95);
        assert_eq!(h.epochs.len(), 20);
    }

    #[test]
    fn loss_decreases_during_training() {
        let ds = blobs(200);
        let mut net = Sequential::mlp(2, &[8], 2, 3);
        let h = fit(
            &mut net,
            &ds,
            None,
            &TrainConfig {
                epochs: 10,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(h.epochs.last().unwrap().train_loss < h.epochs[0].train_loss);
    }

    #[test]
    fn fit_is_deterministic() {
        let ds = blobs(100);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            ..Default::default()
        };
        let mut a = Sequential::mlp(2, &[4], 2, 7);
        let mut b = Sequential::mlp(2, &[4], 2, 7);
        let ha = fit(&mut a, &ds, None, &cfg).unwrap();
        let hb = fit(&mut b, &ds, None, &cfg).unwrap();
        assert_eq!(ha, hb);
        assert_eq!(predict_dataset(&mut a, &ds), predict_dataset(&mut b, &ds));
    }

    #[test]
    fn fit_validates_inputs() {
        let ds = blobs(10);
        let empty = Dataset::new(2, 2).unwrap();
        let mut net = Sequential::mlp(2, &[4], 2, 1);
        assert_eq!(
            fit(&mut net, &empty, None, &TrainConfig::default()),
            Err(TrainError::EmptyDataset)
        );
        let mut wrong = Sequential::mlp(3, &[4], 2, 1);
        assert!(matches!(
            fit(&mut wrong, &ds, None, &TrainConfig::default()),
            Err(TrainError::DimMismatch { expected: 3, got: 2 })
        ));
        assert_eq!(
            fit(
                &mut net,
                &ds,
                None,
                &TrainConfig {
                    epochs: 0,
                    ..Default::default()
                }
            ),
            Err(TrainError::BadConfig)
        );
    }

    #[test]
    fn lr_decay_is_applied_and_validated() {
        let ds = blobs(100);
        let mut net = Sequential::mlp(2, &[4], 2, 1);
        // Invalid decay is rejected.
        assert_eq!(
            fit(
                &mut net,
                &ds,
                None,
                &TrainConfig {
                    lr_decay: 0.0,
                    ..Default::default()
                }
            ),
            Err(TrainError::BadConfig)
        );
        // Aggressive decay effectively freezes training after a few epochs:
        // late-epoch losses change far less than with a constant rate.
        let cfg = |decay: f32| TrainConfig {
            epochs: 12,
            batch_size: 32,
            lr_decay: decay,
            ..Default::default()
        };
        let mut frozen = Sequential::mlp(2, &[4], 2, 9);
        let hist_frozen = fit(&mut frozen, &ds, None, &cfg(0.1)).unwrap();
        let mut steady = Sequential::mlp(2, &[4], 2, 9);
        let hist_steady = fit(&mut steady, &ds, None, &cfg(1.0)).unwrap();
        let late_delta = |h: &History| {
            (h.epochs[11].train_loss - h.epochs[6].train_loss).abs()
        };
        assert!(
            late_delta(&hist_frozen) < late_delta(&hist_steady) + 1e-9,
            "decayed run should change less late in training"
        );
    }

    #[test]
    fn embedding_network_trains_on_binned_features() {
        // Labels depend on the bin of the single feature.
        let mut ds = Dataset::new(1, 3).unwrap();
        for i in 0..300 {
            let bin = i % 3;
            ds.push(&[bin as f32], bin as u32).unwrap();
        }
        let mut net = Sequential::embedding_mlp(1, 4, 8, 16, 3, 5);
        let h = fit(
            &mut net,
            &ds,
            None,
            &TrainConfig {
                epochs: 30,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            h.final_train_accuracy() > 0.99,
            "embedding net should nail a lookup task, got {}",
            h.final_train_accuracy()
        );
    }

    #[test]
    fn history_best_val_accuracy() {
        let h = History {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 1.0,
                    train_accuracy: 0.5,
                    val_accuracy: Some(0.6),
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.5,
                    train_accuracy: 0.7,
                    val_accuracy: Some(0.55),
                },
            ],
        };
        assert_eq!(h.best_val_accuracy(), Some(0.6));
        assert_eq!(h.final_val_accuracy(), Some(0.55));
    }
}
