//! Fused softmax + categorical cross-entropy (the paper's loss function).

use airchitect_tensor::Matrix;

/// Computes mean categorical cross-entropy over a batch and the gradient of
/// the loss w.r.t. the logits.
///
/// The gradient of softmax-CE w.r.t. the logits has the famously simple form
/// `(softmax(logits) − onehot(labels)) / batch`, which is why the two are
/// fused.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
///
/// # Example
///
/// ```
/// use airchitect_nn::loss::softmax_cross_entropy;
/// use airchitect_tensor::Matrix;
///
/// // Confident and correct: low loss.
/// let good = Matrix::from_rows(&[&[10.0, -10.0]]);
/// let (l_good, _) = softmax_cross_entropy(&good, &[0]);
/// // Confident and wrong: high loss.
/// let bad = Matrix::from_rows(&[&[-10.0, 10.0]]);
/// let (l_bad, _) = softmax_cross_entropy(&bad, &[0]);
/// assert!(l_good < 0.01 && l_bad > 5.0);
/// ```
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32]) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] writing the gradient into a caller-owned
/// buffer and returning the mean loss.
///
/// Fully fused: each row makes one max sweep, one exponentiation sweep
/// straight into `grad`, and one normalization sweep — the probability
/// matrix of the two-step formulation is never materialized, and after
/// warm-up the call performs zero heap allocations.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy_into(logits: &Matrix, labels: &[u32], grad: &mut Matrix) -> f32 {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per logits row required"
    );
    let batch = logits.rows();
    let classes = logits.cols();
    grad.resize(batch, classes);
    let inv_batch = 1.0 / batch as f32;
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let label = label as usize;
        assert!(label < classes, "label out of range");
        let lrow = logits.row(r);
        let grow = grad.row_mut(r);
        let max = lrow.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (g, &v) in grow.iter_mut().zip(lrow) {
            let e = (v - max).exp();
            *g = e;
            sum += e;
        }
        let p = (grow[label] / sum).max(1e-12);
        loss -= (p as f64).ln();
        // grad = (softmax − onehot) / batch, folded into one sweep.
        let scale = inv_batch / sum;
        for g in grow.iter_mut() {
            *g *= scale;
        }
        grow[label] -= inv_batch;
    }
    (loss / batch as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::zeros(3, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 1.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let sum: f32 = grad.row(r).iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.1]]);
        let labels = [1u32];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut plus = logits.clone();
            plus.set(0, j, plus.get(0, j) + eps);
            let mut minus = logits.clone();
            minus.set(0, j, minus.get(0, j) - eps);
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.get(0, j)).abs() < 1e-3,
                "logit {j}: fd {fd} vs analytic {}",
                grad.get(0, j)
            );
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_label() {
        let logits = Matrix::zeros(1, 2);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}
