//! From-scratch neural-network stack for the AIrchitect reproduction.
//!
//! The paper implements its models "in TensorFlow's Keras"; this crate is the
//! Rust substrate that replaces it. It provides exactly the pieces the paper
//! needs — nothing more:
//!
//! * [`layer`] — [`layer::Dense`], [`layer::Relu`], and the per-feature
//!   [`layer::Embedding`] front-end that defines AIrchitect (paper Fig. 2),
//! * [`network`] — a [`network::Sequential`] container with forward/backward,
//! * [`loss`] — fused softmax + categorical cross-entropy,
//! * [`optim`] — SGD and Adam,
//! * [`train`] — seeded minibatch trainer returning per-epoch accuracy
//!   curves (paper Fig. 10a-c),
//! * [`metrics`] — accuracy and the geometric mean used for the
//!   misprediction-penalty analysis (paper Fig. 10g-h),
//! * [`quant`] — offline int8 compilation of a trained network into the
//!   fused single-query hot path ([`quant::QuantizedNetwork`]),
//! * [`serialize`] — binary save/load of trained networks.
//!
//! # Example: learn XOR
//!
//! ```
//! use airchitect_data::Dataset;
//! use airchitect_nn::network::Sequential;
//! use airchitect_nn::train::{fit, TrainConfig};
//!
//! let mut ds = Dataset::new(2, 2)?;
//! for _ in 0..50 {
//!     ds.push(&[0.0, 0.0], 0)?;
//!     ds.push(&[0.0, 1.0], 1)?;
//!     ds.push(&[1.0, 0.0], 1)?;
//!     ds.push(&[1.0, 1.0], 0)?;
//! }
//! let mut net = Sequential::mlp(2, &[16], 2, 7);
//! let history = fit(&mut net, &ds, None, &TrainConfig { epochs: 200, ..Default::default() })?;
//! assert!(history.final_train_accuracy() > 0.9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod layer;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod quant;
pub mod serialize;
pub mod train;

/// A trainable parameter tensor: values, accumulated gradients, and the
/// Adam moment buffers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Param {
    /// Parameter values (layout owned by the layer).
    pub value: Vec<f32>,
    /// Gradient accumulator, same layout as `value`.
    pub grad: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Param {
    /// Wraps initial values into a parameter with zeroed gradients/moments.
    pub fn new(value: Vec<f32>) -> Self {
        let n = value.len();
        Self {
            value,
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad {
            *g = 0.0;
        }
    }

    /// The optimizer moment buffers `(m, v)` — SGD momentum lives in `m`,
    /// Adam uses both. Exposed for training checkpoints.
    pub fn moments(&self) -> (&[f32], &[f32]) {
        (&self.m, &self.v)
    }

    /// Replaces the optimizer moment buffers (restoring a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if either buffer's length differs from the parameter's.
    pub fn set_moments(&mut self, m: Vec<f32>, v: Vec<f32>) {
        assert_eq!(m.len(), self.value.len(), "moment m length mismatch");
        assert_eq!(v.len(), self.value.len(), "moment v length mismatch");
        self.m = m;
        self.v = v;
    }
}
