//! Int8-quantized single-query inference: a compiled, batch-free hot path.
//!
//! [`QuantizedNetwork::from_network`] compiles a trained f32
//! [`Sequential`] offline into an int8 artifact:
//!
//! * **Weights** are quantized per output channel with a symmetric
//!   scheme (`scale = max|w_row| / 127`, zero-point 0) and stored
//!   **transposed** (`out_dim × in_dim`), so a 1-row inference is
//!   contiguous int8 dot products on [`airchitect_tensor::qgemm`].
//!   Per-row scales cost one extra f32 multiply per output element and
//!   buy most of the accuracy gap back from per-tensor quantization.
//! * **The embedding table** is statically quantized per feature, and the
//!   per-feature scales are **folded into the first dense layer's f32
//!   weights before those are quantized** — each feature keeps the full
//!   int8 resolution and the fused pass still runs with a single unit
//!   input scale. The embedding-lookup → concat step emits an int8-valued
//!   row directly and the first dense layer runs in pure int8.
//!   (Activation rows are stored pre-widened to `i16` — the layout
//!   [`airchitect_tensor::qgemm`] wants — but every value stays in the
//!   `i8` range.)
//! * **Hidden activations** are requantized dynamically per query
//!   (`scale = max|h| / 127` after the fused ReLU), which keeps accuracy
//!   without any calibration pass.
//! * **ReLU is fused** into the producing dense layer; `Dropout` is the
//!   identity at inference and is dropped at compile time.
//! * **Top-K f32 rescore**: the artifact keeps the final classifier's
//!   f32 weights alongside the int8 copy. The int8 pass screens the
//!   label space; the best [`RESCORE_K`] candidate logits are then
//!   recomputed exactly from the f32 hidden activations (a few thousand
//!   flops), eliminating last-layer quantization noise precisely where
//!   argmax flips happen. Wide classifiers keep f32-level top-1 accuracy
//!   at int8 speed.
//!
//! A query executes as **one fused pass** over a caller-owned
//! [`QuantArena`] — preallocated buffers plus a direct-mapped
//! embedding-concat memo keyed on the packed input bin tuple
//! ([`airchitect_data::quantize::pack_bins`]). After the arena has warmed
//! up, a query performs **zero heap allocations** (proven by the
//! counting-allocator test in `tests/zero_alloc.rs`).
//!
//! Memo entries are stamped with the owning network's process-unique id,
//! so swapping in a new `QuantizedNetwork` (a serve hot-reload) makes
//! every cached row miss without the arena ever being told — invalidation
//! is free and race-proof.

use std::sync::atomic::{AtomicU64, Ordering};

use airchitect_data::quantize::{pack_bins, MAX_PACKED_BINS};
use airchitect_telemetry::metrics;
use airchitect_tensor::qgemm;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::layer::Layer;
use crate::network::Sequential;
use crate::serialize::ModelCodecError;

const MAGIC: &[u8; 4] = b"AIQN";
const VERSION: u32 = 1;

/// Direct-mapped embedding-concat memo slots per arena.
const MEMO_SLOTS: usize = 512;

/// How many of the int8 pass's best candidates get their logits
/// recomputed in f32. Disagreements between the quantized and f32 argmax
/// are near-tie flips, and the true top-1 is essentially always inside
/// the quantized top-8.
const RESCORE_K: usize = 8;

/// Why a trained network could not be compiled to the int8 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantError {
    /// The layer stack has a shape the fused kernel does not support.
    Unsupported(&'static str),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Unsupported(why) => write!(f, "cannot quantize network: {why}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Statically-quantized embedding table (one scale per feature; the
/// scales live in [`QuantizedNetwork::emb_scales`] and are folded into
/// the first dense layer at compile time).
#[derive(Debug, Clone, PartialEq, Eq)]
struct QuantEmbedding {
    num_features: usize,
    vocab: usize,
    embed_dim: usize,
    table: Vec<i8>,
}

/// One dense layer: transposed int8 weights, per-output-row f32 scales,
/// f32 bias, and an optional fused ReLU.
#[derive(Debug, Clone, PartialEq)]
struct QuantDense {
    in_dim: usize,
    out_dim: usize,
    /// One symmetric scale per output row (`len == out_dim`).
    scales: Vec<f32>,
    relu: bool,
    /// `out_dim × in_dim` row-major (transposed vs the f32 layer).
    w: Vec<i8>,
    bias: Vec<f32>,
}

/// A compiled int8 inference artifact built offline from a trained f32
/// [`Sequential`] — see the module docs for the scheme.
///
/// Cloning preserves the id: clones hold bit-identical weights, so memo
/// rows written by one are valid for the other.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    /// Process-unique identity used to stamp (and thereby invalidate)
    /// memo entries. Never serialized: a reloaded artifact is a new
    /// identity by design.
    id: u64,
    /// Per-feature embedding scales. Inference never reads these — they
    /// are pre-folded into the first dense layer's quantized weights —
    /// but they document the scheme and keep the codec self-describing.
    emb_scales: Vec<f32>,
    embedding: QuantEmbedding,
    layers: Vec<QuantDense>,
    /// The final layer's f32 weights, transposed (`out_dim × in_dim`),
    /// for the top-K rescore. Empty when the network has a single dense
    /// layer (no f32 hidden vector exists to rescore from).
    last_w_f32: Vec<f32>,
    max_dim: usize,
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Symmetric int8 quantization: `scale = max|v| / 127`, values clamped to
/// `[-127, 127]` (the full `-128` is left unused to keep the scheme
/// symmetric).
fn quantize_symmetric(values: &[f32]) -> (Vec<i8>, f32) {
    let max = values.iter().fold(0f32, |m, v| m.max(v.abs()));
    let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
    let inv = 1.0 / scale;
    let q = values
        .iter()
        .map(|v| (v * inv).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

impl QuantizedNetwork {
    /// Compiles a trained f32 network into the int8 representation.
    ///
    /// Supported stacks: an [`Embedding`](crate::layer::Embedding) first,
    /// then any sequence of `Dense` / `Relu` / `Dropout` where every
    /// `Relu` directly follows a `Dense`. This covers both
    /// [`Sequential::embedding_mlp`] and
    /// [`Sequential::embedding_mlp_dropout`].
    ///
    /// # Errors
    ///
    /// [`QuantError::Unsupported`] when the stack deviates from that
    /// shape.
    pub fn from_network(net: &Sequential) -> Result<Self, QuantError> {
        let mut iter = net.layers().iter();
        let (embedding, emb_scales) = match iter.next() {
            Some(Layer::Embedding(e)) => {
                let (nf, vocab, ed) = (e.num_features(), e.vocab(), e.embed_dim());
                let block = vocab * ed;
                let mut table = vec![0i8; e.table().value.len()];
                let mut scales = vec![0f32; nf];
                for f in 0..nf {
                    let (qb, s) = quantize_symmetric(&e.table().value[f * block..][..block]);
                    table[f * block..][..block].copy_from_slice(&qb);
                    scales[f] = s;
                }
                (
                    QuantEmbedding {
                        num_features: nf,
                        vocab,
                        embed_dim: ed,
                        table,
                    },
                    scales,
                )
            }
            _ => {
                return Err(QuantError::Unsupported(
                    "network must start with an embedding layer",
                ))
            }
        };
        let mut layers: Vec<QuantDense> = Vec::new();
        let mut last_transposed: Vec<f32> = Vec::new();
        for layer in iter {
            match layer {
                Layer::Dense(d) => {
                    let (in_dim, out_dim) = (d.in_dim(), d.out_dim());
                    let wv = &d.weights().value; // in_dim × out_dim
                    let mut transposed = vec![0f32; wv.len()];
                    for k in 0..in_dim {
                        // The first dense layer absorbs the per-feature
                        // embedding scales: its input is the raw int8
                        // embedding row, so the dequantization factor
                        // folds into the weight column ahead of weight
                        // quantization.
                        let fold = if layers.is_empty() {
                            emb_scales[k / embedding.embed_dim]
                        } else {
                            1.0
                        };
                        for o in 0..out_dim {
                            transposed[o * in_dim + k] = wv[k * out_dim + o] * fold;
                        }
                    }
                    let mut w = vec![0i8; transposed.len()];
                    let mut scales = vec![0f32; out_dim];
                    for o in 0..out_dim {
                        let (qr, s) = quantize_symmetric(&transposed[o * in_dim..][..in_dim]);
                        w[o * in_dim..][..in_dim].copy_from_slice(&qr);
                        scales[o] = s;
                    }
                    last_transposed = transposed;
                    layers.push(QuantDense {
                        in_dim,
                        out_dim,
                        scales,
                        relu: false,
                        w,
                        bias: d.bias().value.clone(),
                    });
                }
                Layer::Relu(_) => match layers.last_mut() {
                    Some(last) if !last.relu => last.relu = true,
                    _ => {
                        return Err(QuantError::Unsupported(
                            "ReLU must directly follow a dense layer",
                        ))
                    }
                },
                Layer::Dropout(_) => {} // identity at inference
                Layer::Embedding(_) => {
                    return Err(QuantError::Unsupported(
                        "embedding is only supported as the first layer",
                    ))
                }
            }
        }
        if layers.is_empty() {
            return Err(QuantError::Unsupported("need at least one dense layer"));
        }
        let mut prev = embedding.num_features * embedding.embed_dim;
        for layer in &layers {
            if layer.in_dim != prev {
                return Err(QuantError::Unsupported("layer dimensions do not chain"));
            }
            prev = layer.out_dim;
        }
        let max_dim = layers.iter().map(|l| l.out_dim).max().unwrap_or(0);
        // Rescoring needs the f32 hidden vector feeding the final layer;
        // a single-layer network has none (its input is the int8
        // embedding row), so it runs pure int8.
        let last_w_f32 = if layers.len() >= 2 {
            last_transposed
        } else {
            Vec::new()
        };
        Ok(Self {
            id: next_id(),
            emb_scales,
            embedding,
            layers,
            last_w_f32,
            max_dim,
        })
    }

    /// Number of input features (= length of the bin tuple a query takes).
    pub fn num_features(&self) -> usize {
        self.embedding.num_features
    }

    /// Embedding vocabulary size (bin indices are clamped below it).
    pub fn vocab(&self) -> usize {
        self.embedding.vocab
    }

    /// Number of output classes (logit count).
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim)
    }

    fn row_len(&self) -> usize {
        self.embedding.num_features * self.embedding.embed_dim
    }

    fn gather(&self, bins: &[u8], out: &mut [i16]) {
        let ed = self.embedding.embed_dim;
        for (feature, &bin) in bins.iter().enumerate() {
            let bin = usize::from(bin).min(self.embedding.vocab - 1);
            let src = &self.embedding.table[(feature * self.embedding.vocab + bin) * ed..][..ed];
            for (dst, &v) in out[feature * ed..][..ed].iter_mut().zip(src) {
                *dst = i16::from(v);
            }
        }
    }

    /// Runs one fused single-query pass: embedding-lookup → concat → int8
    /// MLP. The logits land in the arena ([`QuantArena::logits`],
    /// [`QuantArena::top1`], [`QuantArena::ranked`]).
    ///
    /// `bins` is the quantized input tuple, one bin index per feature
    /// (indices ≥ vocab are clamped, matching the f32 embedding layer).
    /// Allocation-free once the arena has seen this network's shape.
    ///
    /// # Panics
    ///
    /// Panics if `bins.len() != self.num_features()`.
    pub fn infer(&self, bins: &[u8], arena: &mut QuantArena) {
        assert_eq!(
            bins.len(),
            self.embedding.num_features,
            "bin tuple width must match the embedding's feature count"
        );
        arena.ensure(self);
        let row_len = self.row_len();
        // Locate (or build) the i8 embedding-concat row. The memo is the
        // row storage itself, so a hit skips both the gather and any copy.
        let memo_off = if self.embedding.num_features <= MAX_PACKED_BINS {
            let key = pack_bins(bins);
            let slot = memo_slot(key);
            let off = slot * arena.memo_row_len;
            if arena.memo_ids[slot] == self.id && arena.memo_keys[slot] == key {
                metrics::QUANT_MEMO_HITS.inc();
            } else {
                metrics::QUANT_MEMO_MISSES.inc();
                self.gather(bins, &mut arena.memo_rows[off..off + row_len]);
                arena.memo_ids[slot] = self.id;
                arena.memo_keys[slot] = key;
            }
            Some(off)
        } else {
            self.gather(bins, &mut arena.concat[..row_len]);
            None
        };
        let QuantArena {
            acc,
            act_q,
            act_u8,
            f,
            hidden,
            memo_rows,
            concat,
            logits_len,
            topk_cache,
            topk_len,
            ..
        } = arena;
        let row: &[i16] = match memo_off {
            Some(off) => &memo_rows[off..off + row_len],
            None => &concat[..row_len],
        };
        let mut prev_relu = false;
        for (li, layer) in self.layers.iter().enumerate() {
            let in_scale = if li == 0 {
                // Unit scale: the per-feature embedding scales were
                // folded into this layer's weights at compile time.
                qgemm::gemv_i8(row, &layer.w, &mut acc[..layer.out_dim]);
                1.0
            } else {
                let n = layer.in_dim;
                // The rescore pass needs the f32 activations feeding the
                // final layer; `f` is about to be overwritten by its
                // logits, so stash them.
                if li + 1 == self.layers.len() && !self.last_w_f32.is_empty() {
                    hidden[..n].copy_from_slice(&f[..n]);
                }
                // Dynamic requantization of the previous activations.
                // Eight max accumulators break the serial FP dependency
                // chain so the scan vectorizes.
                let mut maxs = [0f32; 8];
                let mut it = f[..n].chunks_exact(8);
                for c in it.by_ref() {
                    for j in 0..8 {
                        maxs[j] = maxs[j].max(c[j].abs());
                    }
                }
                let mut maxabs = maxs.iter().fold(0f32, |m, &v| m.max(v));
                for v in it.remainder() {
                    maxabs = maxabs.max(v.abs());
                }
                let s = if maxabs > 0.0 { maxabs / 127.0 } else { 1.0 };
                let inv = 1.0 / s;
                // Ties-to-even below: unlike `round`, it lowers to a
                // single vectorizable rounding instruction, and the
                // half-ulp difference on exact .5 ties is noise at int8
                // precision.
                if prev_relu {
                    // Post-ReLU activations are non-negative, unlocking
                    // the wider unsigned kernel.
                    for (q, &v) in act_u8[..n].iter_mut().zip(&f[..n]) {
                        *q = (v * inv).round_ties_even() as u8;
                    }
                    qgemm::gemv_u8_i8(&act_u8[..n], &layer.w, &mut acc[..layer.out_dim]);
                } else {
                    for (q, &v) in act_q[..n].iter_mut().zip(&f[..n]) {
                        *q = (v * inv).round_ties_even() as i16;
                    }
                    qgemm::gemv_i8(&act_q[..n], &layer.w, &mut acc[..layer.out_dim]);
                }
                s
            };
            prev_relu = layer.relu;
            for (dst, ((&a, &b), &s)) in f[..layer.out_dim].iter_mut().zip(
                acc[..layer.out_dim]
                    .iter()
                    .zip(&layer.bias)
                    .zip(&layer.scales),
            ) {
                let v = a as f32 * (in_scale * s) + b;
                *dst = if layer.relu { v.max(0.0) } else { v };
            }
        }
        // Top-K f32 rescore: the int8 pass screened the label space;
        // recompute the best candidates' logits exactly from the stashed
        // f32 hidden vector, so near-tie argmax flips vanish.
        *topk_len = 0;
        if !self.last_w_f32.is_empty() {
            let last = self.layers.last().expect("validated non-empty");
            let n = last.in_dim;
            // Track one extra candidate: every logit outside the rescored
            // set keeps its quantized value, so the (K+1)-th best bounds
            // them all and tells us how much of the rescored ordering is
            // globally valid (servable from the cache without a rescan).
            let mut top = [0u32; RESCORE_K + 1];
            let k = top_k_into(&f[..last.out_dim], &mut top);
            let rescore_n = k.min(RESCORE_K);
            let bound = if k > RESCORE_K {
                f[top[RESCORE_K] as usize]
            } else {
                f32::NEG_INFINITY
            };
            for &o in &top[..rescore_n] {
                let o = o as usize;
                let v = dot_f32(&hidden[..n], &self.last_w_f32[o * n..][..n]) + last.bias[o];
                f[o] = if last.relu { v.max(0.0) } else { v };
            }
            let cand = &mut top[..rescore_n];
            cand.sort_unstable_by(|&a, &b| {
                f[b as usize].total_cmp(&f[a as usize]).then(a.cmp(&b))
            });
            // Cache the prefix that provably outranks every non-rescored
            // logit; `top1`/`top_k` serve from it scan-free.
            let mut valid = 0;
            while valid < rescore_n && f[cand[valid] as usize] > bound {
                valid += 1;
            }
            topk_cache[..valid].copy_from_slice(&cand[..valid]);
            *topk_len = valid;
        }
        *logits_len = self.out_dim();
    }

    /// Serializes to the `AIQN` codec. Deterministic: the same network
    /// always produces the same bytes, and
    /// `to_bytes(from_bytes(b)) == b`.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.embedding.num_features as u64);
        buf.put_u64_le(self.embedding.vocab as u64);
        buf.put_u64_le(self.embedding.embed_dim as u64);
        buf.put_u64_le(self.emb_scales.len() as u64);
        for &s in &self.emb_scales {
            buf.put_f32_le(s);
        }
        buf.put_u64_le(self.embedding.table.len() as u64);
        for &v in &self.embedding.table {
            buf.put_u8(v as u8);
        }
        buf.put_u64_le(self.layers.len() as u64);
        for layer in &self.layers {
            buf.put_u64_le(layer.in_dim as u64);
            buf.put_u64_le(layer.out_dim as u64);
            buf.put_u64_le(layer.scales.len() as u64);
            for &s in &layer.scales {
                buf.put_f32_le(s);
            }
            buf.put_u8(u8::from(layer.relu));
            buf.put_u64_le(layer.w.len() as u64);
            for &v in &layer.w {
                buf.put_u8(v as u8);
            }
            buf.put_u64_le(layer.bias.len() as u64);
            for &v in &layer.bias {
                buf.put_f32_le(v);
            }
        }
        buf.put_u64_le(self.last_w_f32.len() as u64);
        for &v in &self.last_w_f32 {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Deserializes an `AIQN` artifact, validating every length and the
    /// layer dimension chain before accepting it.
    ///
    /// # Errors
    ///
    /// [`ModelCodecError::Corrupt`] on any structural violation,
    /// including trailing bytes.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, ModelCodecError> {
        let buf = &mut buf;
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(ModelCodecError::Corrupt("bad magic (want AIQN)"));
        }
        buf.advance(4);
        if get_u32(buf)? != VERSION {
            return Err(ModelCodecError::Corrupt("unsupported AIQN version"));
        }
        let num_features = get_dim(buf)?;
        let vocab = get_dim(buf)?;
        let embed_dim = get_dim(buf)?;
        let emb_scales = get_f32_values(buf)?;
        if emb_scales.len() != num_features {
            return Err(ModelCodecError::Corrupt("embedding scale count mismatch"));
        }
        let table = get_i8_values(buf)?;
        let expect = num_features
            .checked_mul(vocab)
            .and_then(|n| n.checked_mul(embed_dim))
            .ok_or(ModelCodecError::Corrupt("embedding size overflows"))?;
        if table.len() != expect {
            return Err(ModelCodecError::Corrupt("embedding table size mismatch"));
        }
        let n_layers = get_u64(buf)?;
        if n_layers == 0 || n_layers > 64 {
            return Err(ModelCodecError::Corrupt("implausible layer count"));
        }
        let mut layers = Vec::with_capacity(n_layers as usize);
        let mut prev = num_features * embed_dim;
        for _ in 0..n_layers {
            let in_dim = get_dim(buf)?;
            let out_dim = get_dim(buf)?;
            let scales = get_f32_values(buf)?;
            if scales.len() != out_dim {
                return Err(ModelCodecError::Corrupt("scale count mismatch"));
            }
            let relu = match get_u8(buf)? {
                0 => false,
                1 => true,
                _ => return Err(ModelCodecError::Corrupt("bad relu flag")),
            };
            let w = get_i8_values(buf)?;
            let expect = in_dim
                .checked_mul(out_dim)
                .ok_or(ModelCodecError::Corrupt("weight size overflows"))?;
            if w.len() != expect {
                return Err(ModelCodecError::Corrupt("weight buffer size mismatch"));
            }
            let bias = get_f32_values(buf)?;
            if bias.len() != out_dim {
                return Err(ModelCodecError::Corrupt("bias size mismatch"));
            }
            if in_dim != prev {
                return Err(ModelCodecError::Corrupt("layer dimensions do not chain"));
            }
            prev = out_dim;
            layers.push(QuantDense {
                in_dim,
                out_dim,
                scales,
                relu,
                w,
                bias,
            });
        }
        let last_w_f32 = get_f32_values(buf)?;
        let last = layers.last().expect("layer count validated above");
        if !last_w_f32.is_empty() && last_w_f32.len() != last.in_dim * last.out_dim {
            return Err(ModelCodecError::Corrupt("rescore weight size mismatch"));
        }
        if buf.has_remaining() {
            return Err(ModelCodecError::Corrupt("trailing bytes after network"));
        }
        let max_dim = layers.iter().map(|l| l.out_dim).max().unwrap_or(0);
        Ok(Self {
            id: next_id(),
            emb_scales,
            embedding: QuantEmbedding {
                num_features,
                vocab,
                embed_dim,
                table,
            },
            layers,
            last_w_f32,
            max_dim,
        })
    }
}

/// Dot product with eight independent accumulators: the reassociation
/// breaks the serial FP dependency chain so LLVM vectorizes it, which
/// keeps the per-candidate rescore cost far below a microsecond.
#[inline]
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let mut accs = [0f32; 8];
    let mut ai = a.chunks_exact(8);
    let mut bi = b.chunks_exact(8);
    for (ca, cb) in ai.by_ref().zip(bi.by_ref()) {
        for j in 0..8 {
            accs[j] += ca[j] * cb[j];
        }
    }
    let mut dot: f32 = accs.iter().sum();
    for (&x, &y) in ai.remainder().iter().zip(bi.remainder()) {
        dot += x * y;
    }
    dot
}

/// Fills `top` with the indices of the `top.len()` highest values in
/// `v`, best first (ties resolve to the lowest index, matching
/// [`QuantArena::top_k`]); returns how many slots were written.
fn top_k_into(v: &[f32], top: &mut [u32]) -> usize {
    let cap = top.len();
    let mut len = 0usize;
    for (i, x) in v.iter().enumerate() {
        if len == cap {
            if x.total_cmp(&v[top[len - 1] as usize]) != std::cmp::Ordering::Greater {
                continue;
            }
            len -= 1;
        }
        let mut pos = len;
        while pos > 0 && v[top[pos - 1] as usize].total_cmp(x).is_lt() {
            top[pos] = top[pos - 1];
            pos -= 1;
        }
        top[pos] = i as u32;
        len += 1;
    }
    len
}

#[inline]
fn memo_slot(key: u128) -> usize {
    // splitmix64 over the folded key: cheap, and good enough dispersion
    // for a direct-mapped cache.
    let mut x = (key as u64) ^ ((key >> 64) as u64);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) as usize) % MEMO_SLOTS
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, ModelCodecError> {
    if buf.is_empty() {
        return Err(ModelCodecError::Corrupt("truncated byte"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, ModelCodecError> {
    if buf.len() < 4 {
        return Err(ModelCodecError::Corrupt("truncated u32"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, ModelCodecError> {
    if buf.len() < 8 {
        return Err(ModelCodecError::Corrupt("truncated u64"));
    }
    Ok(buf.get_u64_le())
}

fn get_dim(buf: &mut &[u8]) -> Result<usize, ModelCodecError> {
    let v = get_u64(buf)?;
    let dim: usize = v
        .try_into()
        .map_err(|_| ModelCodecError::Corrupt("dimension overflows usize"))?;
    if dim == 0 {
        return Err(ModelCodecError::Corrupt("zero dimension"));
    }
    Ok(dim)
}

fn get_i8_values(buf: &mut &[u8]) -> Result<Vec<i8>, ModelCodecError> {
    let n: usize = get_u64(buf)?
        .try_into()
        .map_err(|_| ModelCodecError::Corrupt("value count overflows usize"))?;
    if buf.len() < n {
        return Err(ModelCodecError::Corrupt("truncated i8 values"));
    }
    let out = buf[..n].iter().map(|&b| b as i8).collect();
    buf.advance(n);
    Ok(out)
}

fn get_f32_values(buf: &mut &[u8]) -> Result<Vec<f32>, ModelCodecError> {
    let n: usize = get_u64(buf)?
        .try_into()
        .map_err(|_| ModelCodecError::Corrupt("value count overflows usize"))?;
    let bytes = n
        .checked_mul(4)
        .ok_or(ModelCodecError::Corrupt("f32 values overflow"))?;
    if buf.len() < bytes {
        return Err(ModelCodecError::Corrupt("truncated f32 values"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

/// Per-worker scratch state for the fused pass: preallocated compute
/// buffers plus the direct-mapped embedding-concat memo.
///
/// Create one per thread (or borrow one from a thread-local) and reuse it
/// across queries; after the first query against a given network shape,
/// subsequent queries allocate nothing. One arena may serve several
/// networks — memo entries are stamped with the owning network's id, so
/// models never read each other's rows.
#[derive(Debug)]
pub struct QuantArena {
    acc: Vec<i32>,
    /// Requantized activations: int8-valued, pre-widened to `i16` (the
    /// layout [`qgemm::gemv_i8`] wants).
    act_q: Vec<i16>,
    /// Requantized post-ReLU activations (`0..=127`) for the unsigned
    /// kernel [`qgemm::gemv_u8_i8`].
    act_u8: Vec<u8>,
    f: Vec<f32>,
    /// Stash of the f32 activations feeding the final layer, kept alive
    /// for the top-K rescore after `f` is overwritten with logits.
    hidden: Vec<f32>,
    /// Rescore byproduct: the best labels of the most recent query, best
    /// first, valid for the first `topk_len` entries. Lets `top1` and
    /// small `top_k` calls skip their full-logit scan.
    topk_cache: [u32; RESCORE_K],
    topk_len: usize,
    logits_len: usize,
    ranked: Vec<u32>,
    /// Fallback concat staging for networks too wide for the packed key.
    concat: Vec<i16>,
    memo_keys: Vec<u128>,
    /// Owning network id per slot; 0 = empty.
    memo_ids: Vec<u64>,
    memo_rows: Vec<i16>,
    memo_row_len: usize,
}

impl QuantArena {
    /// Creates an empty arena; buffers are sized lazily by the first
    /// [`QuantizedNetwork::infer`] call (the "warmup" allocation).
    pub fn new() -> Self {
        Self {
            acc: Vec::new(),
            act_q: Vec::new(),
            act_u8: Vec::new(),
            f: Vec::new(),
            hidden: Vec::new(),
            topk_cache: [0; RESCORE_K],
            topk_len: 0,
            logits_len: 0,
            ranked: Vec::new(),
            concat: Vec::new(),
            memo_keys: vec![0; MEMO_SLOTS],
            memo_ids: vec![0; MEMO_SLOTS],
            memo_rows: Vec::new(),
            memo_row_len: 0,
        }
    }

    fn ensure(&mut self, net: &QuantizedNetwork) {
        let dim = net.max_dim;
        if self.acc.len() < dim {
            self.acc.resize(dim, 0);
            self.act_q.resize(dim, 0);
            self.act_u8.resize(dim, 0);
            self.f.resize(dim, 0.0);
            self.hidden.resize(dim, 0.0);
        }
        if self.ranked.capacity() < dim {
            self.ranked.reserve(dim - self.ranked.len());
        }
        let row_len = net.row_len();
        if self.concat.len() < row_len {
            self.concat.resize(row_len, 0);
        }
        if self.memo_row_len < row_len {
            // Slot offsets change with the row stride: drop every entry.
            self.memo_row_len = row_len;
            self.memo_rows.clear();
            self.memo_rows.resize(MEMO_SLOTS * row_len, 0);
            self.memo_ids.fill(0);
        }
    }

    /// The logits of the most recent [`QuantizedNetwork::infer`] call.
    ///
    /// # Panics
    ///
    /// Panics if no query has run yet.
    pub fn logits(&self) -> &[f32] {
        assert!(self.logits_len > 0, "no query has run in this arena");
        &self.f[..self.logits_len]
    }

    /// Argmax label of the most recent query. Ties resolve to the lowest
    /// index, matching the f32 path's stable ranking.
    ///
    /// # Panics
    ///
    /// Panics if no query has run yet.
    pub fn top1(&self) -> u32 {
        let logits = self.logits();
        if self.topk_len > 0 {
            return self.topk_cache[0];
        }
        let mut best = 0usize;
        for (i, v) in logits.iter().enumerate().skip(1) {
            if v.total_cmp(&logits[best]) == std::cmp::Ordering::Greater {
                best = i;
            }
        }
        best as u32
    }

    /// The `k` highest-logit labels of the most recent query, best first,
    /// via one linear scan with a bounded insertion buffer — much cheaper
    /// than the full sort behind [`QuantArena::ranked`] when the caller
    /// only walks a few candidates (the feasibility check in the fast
    /// recommend paths almost always succeeds within the first handful).
    /// Ties resolve to the lowest index, exactly like `ranked`, so the
    /// result is always a prefix of it. Clobbers the same scratch buffer
    /// as `ranked`; allocation-free after warmup.
    ///
    /// # Panics
    ///
    /// Panics if no query has run yet.
    pub fn top_k(&mut self, k: usize) -> &[u32] {
        assert!(self.logits_len > 0, "no query has run in this arena");
        self.ranked.clear();
        if k == 0 {
            return &self.ranked;
        }
        if k <= self.topk_len {
            self.ranked.extend_from_slice(&self.topk_cache[..k]);
            return &self.ranked;
        }
        let logits = &self.f[..self.logits_len];
        for (i, v) in logits.iter().enumerate() {
            if self.ranked.len() == k {
                let tail = logits[self.ranked[k - 1] as usize];
                if v.total_cmp(&tail) != std::cmp::Ordering::Greater {
                    continue;
                }
                self.ranked.pop();
            }
            // Insert keeping descending order; stopping at equal values
            // leaves earlier (lower) indices first, matching `ranked`.
            let mut pos = self.ranked.len();
            while pos > 0 && logits[self.ranked[pos - 1] as usize].total_cmp(v).is_lt() {
                pos -= 1;
            }
            self.ranked.insert(pos, i as u32);
        }
        &self.ranked
    }

    /// All labels of the most recent query, best first. Ties resolve to
    /// the lowest index (same order a stable descending sort of the f32
    /// path produces). Allocation-free after warmup.
    ///
    /// # Panics
    ///
    /// Panics if no query has run yet.
    pub fn ranked(&mut self) -> &[u32] {
        assert!(self.logits_len > 0, "no query has run in this arena");
        let n = self.logits_len;
        self.ranked.clear();
        self.ranked.extend(0..n as u32);
        let logits = &self.f;
        self.ranked.sort_unstable_by(|&a, &b| {
            logits[b as usize]
                .total_cmp(&logits[a as usize])
                .then(a.cmp(&b))
        });
        &self.ranked[..n]
    }
}

impl Default for QuantArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airchitect_tensor::Matrix;

    fn logits_f32(net: &Sequential, bins: &[u8]) -> Vec<f32> {
        let row: Vec<f32> = bins.iter().map(|&b| f32::from(b)).collect();
        let x = Matrix::from_vec(1, row.len(), row);
        net.infer(&x).row(0).to_vec()
    }

    #[test]
    fn quantized_logits_track_the_f32_network() {
        let net = Sequential::embedding_mlp(4, 16, 8, 32, 10, 42);
        let quant = QuantizedNetwork::from_network(&net).unwrap();
        let mut arena = QuantArena::new();
        for seed in 0u8..20 {
            let bins = [seed % 16, (seed * 3) % 16, (seed * 7) % 16, (seed * 11) % 16];
            quant.infer(&bins, &mut arena);
            let expect = logits_f32(&net, &bins);
            let maxabs = expect.iter().fold(0f32, |m, v| m.max(v.abs()));
            let tol = 0.1 * maxabs.max(1.0);
            for (q, e) in arena.logits().iter().zip(&expect) {
                assert!(
                    (q - e).abs() <= tol,
                    "logit drift {q} vs {e} (tol {tol}, seed {seed})"
                );
            }
        }
    }

    #[test]
    fn dropout_variant_quantizes_to_the_same_artifact() {
        // Dropout is identity at inference; with matching seeds the dense
        // parameters are identical, so the compiled artifacts match too.
        let plain = Sequential::embedding_mlp(3, 8, 4, 16, 5, 7);
        let dropped = Sequential::embedding_mlp_dropout(3, 8, 4, 16, 5, 0.4, 7);
        let a = QuantizedNetwork::from_network(&plain).unwrap();
        let b = QuantizedNetwork::from_network(&dropped).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn unsupported_stacks_are_rejected() {
        let mlp = Sequential::mlp(4, &[8], 3, 1);
        assert_eq!(
            QuantizedNetwork::from_network(&mlp).unwrap_err(),
            QuantError::Unsupported("network must start with an embedding layer")
        );
    }

    #[test]
    fn memo_entries_are_stamped_per_network() {
        let net_a = Sequential::embedding_mlp(2, 8, 4, 8, 6, 1);
        let net_b = Sequential::embedding_mlp(2, 8, 4, 8, 6, 2);
        let qa = QuantizedNetwork::from_network(&net_a).unwrap();
        let qb = QuantizedNetwork::from_network(&net_b).unwrap();
        let mut arena = QuantArena::new();
        let bins = [3u8, 5];
        qa.infer(&bins, &mut arena);
        let first: Vec<f32> = arena.logits().to_vec();
        // Same bins on a different network: the memo slot must not leak
        // network A's embedding row into network B's pass.
        qb.infer(&bins, &mut arena);
        let other: Vec<f32> = arena.logits().to_vec();
        assert_ne!(first, other, "two differently-seeded nets must disagree");
        // Back to A: the (possibly evicted, then rebuilt) row reproduces
        // the original logits bit for bit.
        qa.infer(&bins, &mut arena);
        assert_eq!(first, arena.logits());
        // And a hot repeat is stable too.
        qa.infer(&bins, &mut arena);
        assert_eq!(first, arena.logits());
    }

    #[test]
    fn out_of_vocab_bins_clamp_like_the_f32_embedding() {
        let net = Sequential::embedding_mlp(2, 8, 4, 8, 5, 3);
        let quant = QuantizedNetwork::from_network(&net).unwrap();
        let mut arena = QuantArena::new();
        quant.infer(&[200, 7], &mut arena);
        let clamped: Vec<f32> = arena.logits().to_vec();
        quant.infer(&[7, 7], &mut arena);
        assert_eq!(clamped, arena.logits(), "bin 200 must clamp to vocab-1 (7)");
    }

    #[test]
    fn ranked_is_a_permutation_with_top1_first() {
        let net = Sequential::embedding_mlp(3, 8, 4, 16, 9, 11);
        let quant = QuantizedNetwork::from_network(&net).unwrap();
        let mut arena = QuantArena::new();
        quant.infer(&[1, 2, 3], &mut arena);
        let top = arena.top1();
        let ranked = arena.ranked().to_vec();
        assert_eq!(ranked.len(), 9);
        assert_eq!(ranked[0], top);
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn top_k_is_a_prefix_of_ranked() {
        let net = Sequential::embedding_mlp(3, 8, 4, 16, 9, 11);
        let quant = QuantizedNetwork::from_network(&net).unwrap();
        let mut arena = QuantArena::new();
        quant.infer(&[1, 2, 3], &mut arena);
        let full = arena.ranked().to_vec();
        for k in [0usize, 1, 3, 8, 9, 20] {
            let top = arena.top_k(k).to_vec();
            assert_eq!(top, full[..k.min(full.len())], "k={k}");
        }
    }

    #[test]
    fn roundtrip_is_byte_identical_and_behavior_preserving() {
        let net = Sequential::embedding_mlp(4, 16, 8, 32, 10, 99);
        let quant = QuantizedNetwork::from_network(&net).unwrap();
        let bytes = quant.to_bytes();
        let loaded = QuantizedNetwork::from_bytes(&bytes).unwrap();
        assert_eq!(bytes, loaded.to_bytes(), "codec must be deterministic");
        let mut a = QuantArena::new();
        let mut b = QuantArena::new();
        for bins in [[0u8, 1, 2, 3], [15, 15, 15, 15], [7, 0, 9, 2]] {
            quant.infer(&bins, &mut a);
            loaded.infer(&bins, &mut b);
            assert_eq!(a.logits(), b.logits(), "loaded artifact must infer identically");
        }
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        let net = Sequential::embedding_mlp(2, 4, 2, 4, 3, 5);
        let bytes = QuantizedNetwork::from_network(&net).unwrap().to_bytes();
        // Truncations at every boundary must error, never panic.
        for cut in [0, 3, 4, 8, 20, bytes.len() - 1] {
            assert!(QuantizedNetwork::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected.
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(QuantizedNetwork::from_bytes(&extended).is_err());
        // A wrong magic is rejected.
        let mut wrong = bytes.to_vec();
        wrong[0] = b'X';
        assert!(QuantizedNetwork::from_bytes(&wrong).is_err());
    }
}
